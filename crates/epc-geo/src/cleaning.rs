//! The multi-step geospatial cleaning algorithm of §2.1.1.
//!
//! For each EPC address:
//!
//! 1. the (normalized) street is compared with every street of the
//!    referenced street map via Levenshtein similarity;
//! 2. when the best similarity reaches the user-defined threshold φ, the
//!    referenced entry replaces the noisy fields — street name, ZIP code,
//!    latitude and longitude are repaired from the reference;
//! 3. otherwise a geocoding request is sent to the (quota-limited)
//!    [`crate::geocode::Geocoder`] fallback;
//! 4. addresses neither matched nor geocoded remain unresolved (and are
//!    typically excluded from map views downstream).

use crate::address::{is_plausible_zip, normalize_house_number, Address};
use crate::geocode::{GeocodeFailure, Geocoder};
use crate::point::GeoPoint;
use crate::streetmap::StreetMap;
use std::collections::BTreeMap;

/// One address to clean, identified by the caller's row id.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressQuery {
    /// Caller-side identifier (e.g. dataset row index).
    pub id: usize,
    /// The (possibly noisy) address.
    pub address: Address,
    /// The (possibly wrong or missing) geolocation.
    pub point: Option<GeoPoint>,
}

/// How an address was resolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CleaningOutcome {
    /// Matched against the referenced street map with this similarity.
    ResolvedByReference {
        /// Levenshtein similarity of the accepted match (≥ φ).
        similarity: f64,
    },
    /// Resolved through the geocoding fallback.
    ResolvedByGeocoder,
    /// The geocoder failed transiently even after retries; the record was
    /// *degraded* to its district's centroid instead of being dropped.
    Degraded,
    /// Could not be resolved; original fields kept.
    Unresolved,
}

/// Bit-flags of the fields the cleaning step repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorrectedFields {
    /// The street string was replaced.
    pub street: bool,
    /// The house number was replaced/normalized.
    pub house_number: bool,
    /// The ZIP code was filled in or fixed.
    pub zip: bool,
    /// Latitude/longitude were filled in or fixed.
    pub coords: bool,
}

impl CorrectedFields {
    /// Number of repaired fields.
    pub fn count(&self) -> usize {
        usize::from(self.street)
            + usize::from(self.house_number)
            + usize::from(self.zip)
            + usize::from(self.coords)
    }
}

/// A cleaned address: repaired fields plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanedAddress {
    /// The caller's id, copied from the query.
    pub id: usize,
    /// Resolution outcome.
    pub outcome: CleaningOutcome,
    /// The repaired (or original, when unresolved) address.
    pub address: Address,
    /// The repaired (or original) geolocation.
    pub point: Option<GeoPoint>,
    /// District of the matched entry, when known.
    pub district: Option<String>,
    /// Neighbourhood of the matched entry, when known.
    pub neighbourhood: Option<String>,
    /// Which fields were changed.
    pub corrected: CorrectedFields,
}

/// Configuration of the cleaning step.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningConfig {
    /// The similarity threshold φ of §2.1.1 (matches with similarity ≥ φ
    /// are accepted).
    pub phi: f64,
    /// Coordinates farther than this many meters from the referenced entry
    /// are considered wrong and replaced.
    pub max_coord_error_m: f64,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        CleaningConfig {
            phi: 0.85,
            max_coord_error_m: 250.0,
        }
    }
}

/// Aggregate statistics of one cleaning run.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct CleaningReport {
    /// Total addresses processed.
    pub total: usize,
    /// Resolved against the referenced street map.
    pub by_reference: usize,
    /// Of which: matched with similarity 1 after normalization.
    pub exact_matches: usize,
    /// Resolved through the geocoder fallback.
    pub by_geocoder: usize,
    /// Degraded to a district-centroid location after retries were
    /// exhausted.
    pub degraded: usize,
    /// Left unresolved.
    pub unresolved: usize,
    /// Geocoding requests actually issued.
    pub geocoder_requests: usize,
    /// Geocoder retry attempts performed (transient-failure recovery).
    pub geocoder_retries: usize,
    /// Count of repaired ZIP codes.
    pub zips_fixed: usize,
    /// Count of repaired coordinate pairs.
    pub coords_fixed: usize,
    /// Count of repaired street strings.
    pub streets_fixed: usize,
}

impl CleaningReport {
    /// Adds `other`'s counts field-wise. Every field is a per-record
    /// tally, so the report of a concatenated input equals the merged
    /// reports of its chunks — the property incremental ingest builds on.
    pub fn merge(&mut self, other: &CleaningReport) {
        self.total += other.total;
        self.by_reference += other.by_reference;
        self.exact_matches += other.exact_matches;
        self.by_geocoder += other.by_geocoder;
        self.degraded += other.degraded;
        self.unresolved += other.unresolved;
        self.geocoder_requests += other.geocoder_requests;
        self.geocoder_retries += other.geocoder_retries;
        self.zips_fixed += other.zips_fixed;
        self.coords_fixed += other.coords_fixed;
        self.streets_fixed += other.streets_fixed;
    }
}

/// Last-resort coordinates for records whose geocoding keeps failing
/// transiently: the centroid of the district the record claims to belong
/// to.
///
/// `hints[i]` is the district hint for `queries[i]` (usually read straight
/// from the dataset's district column before cleaning). When the geocoder
/// exhausts its retry budget on a transient failure and a hint with a known
/// centroid exists, the record is kept with
/// [`CleaningOutcome::Degraded`] provenance instead of being dropped.
#[derive(Debug, Clone, Default)]
pub struct DegradedFallback {
    /// District name → district centroid.
    pub centroids: BTreeMap<String, GeoPoint>,
    /// Per-query district hint, parallel to the `queries` slice.
    pub hints: Vec<Option<String>>,
}

impl DegradedFallback {
    /// The centroid for `queries[idx]`, when both the hint and its centroid
    /// are known.
    fn lookup(&self, idx: usize) -> Option<(&str, GeoPoint)> {
        let hint = self.hints.get(idx)?.as_deref()?;
        let centroid = *self.centroids.get(hint)?;
        Some((hint, centroid))
    }
}

/// Runs the §2.1.1 cleaning algorithm over `queries`.
///
/// `geocoder` is consulted only for addresses the reference map cannot
/// resolve (pass a [`crate::geocode::QuotaGeocoder`] to model the free-tier
/// limit; pass `None` to disable the fallback entirely — the ablation of
/// the benchmark suite).
pub fn clean_addresses(
    queries: &[AddressQuery],
    reference: &StreetMap,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
) -> (Vec<CleanedAddress>, CleaningReport) {
    clean_addresses_with_runtime(
        queries,
        reference,
        geocoder,
        config,
        &epc_runtime::RuntimeConfig::sequential(),
    )
}

/// [`clean_addresses`] with an explicit execution runtime.
///
/// The per-record Levenshtein matching against the reference map (steps
/// 1–2) is pure and runs data-parallel under `runtime`; the geocoder
/// fallback (step 3) is inherently stateful — the quota counter must be
/// consumed in input order — so it runs as a sequential second pass over
/// the addresses the reference could not resolve. The combined result is
/// bitwise identical to the sequential algorithm for any thread budget.
pub fn clean_addresses_with_runtime(
    queries: &[AddressQuery],
    reference: &StreetMap,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
    runtime: &epc_runtime::RuntimeConfig,
) -> (Vec<CleanedAddress>, CleaningReport) {
    clean_addresses_degradable(queries, reference, geocoder, config, runtime, None)
}

/// [`clean_addresses_with_runtime`] plus a district-centroid fallback for
/// transient geocoder failures.
///
/// With `fallback = None` (or a geocoder that never fails transiently) this
/// is bitwise identical to [`clean_addresses_with_runtime`]: permanent
/// misses still come back [`CleaningOutcome::Unresolved`]. Transient
/// failures ([`GeocodeFailure::Transient`], surfaced after the geocoder's
/// own retry budget is spent) degrade to the district centroid when the
/// fallback knows one, and are left unresolved otherwise.
pub fn clean_addresses_degradable(
    queries: &[AddressQuery],
    reference: &StreetMap,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
    runtime: &epc_runtime::RuntimeConfig,
    fallback: Option<&DegradedFallback>,
) -> (Vec<CleanedAddress>, CleaningReport) {
    // Pass 1 (parallel, pure): reference-map matching, one Levenshtein
    // scan per *row*.
    let by_reference = epc_runtime::par_map(runtime, queries, |q| {
        clean_by_reference(q, reference, config)
    });
    resolve_remainder(queries, by_reference, geocoder, config, fallback)
}

/// Street-string deduplication accounting of the columnar cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreetDedupStats {
    /// Addresses processed.
    pub total: usize,
    /// Distinct street strings — the number of Levenshtein reference scans
    /// actually performed (the row path performs `total`).
    pub distinct_streets: usize,
}

/// Dictionary-deduplicated variant of [`clean_addresses_degradable`]: the
/// columnar engine's cleaning pass.
///
/// Levenshtein matching depends only on the street *string* and φ, so the
/// reference scan runs once per **distinct** street (collected through an
/// [`epc_columnar::SortedDict`], making the memo input-order invariant)
/// instead of once per row. Real EPC street columns are heavily repetitive
/// — the paper's collections hold tens of thousands of certificates over a
/// few thousand streets — so this removes most of the cleaning cost. The
/// per-row repair and the sequential geocoder fallback are unchanged, and
/// the output is bitwise identical to the row path for any thread budget
/// (gated by `tests/columnar.rs`).
pub fn clean_addresses_columnar(
    queries: &[AddressQuery],
    reference: &StreetMap,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
    runtime: &epc_runtime::RuntimeConfig,
    fallback: Option<&DegradedFallback>,
) -> (Vec<CleanedAddress>, CleaningReport, StreetDedupStats) {
    // Dictionary over the distinct street strings of the batch.
    let dict =
        epc_columnar::SortedDict::from_labels(queries.iter().map(|q| q.address.street.as_str()));
    let stats = StreetDedupStats {
        total: queries.len(),
        distinct_streets: dict.len(),
    };

    // Pass 1a (parallel, pure): one reference scan per distinct street.
    let hits = epc_runtime::par_map(runtime, dict.labels(), |street| {
        reference.best_match(street, config.phi)
    });

    // Pass 1b (parallel, pure): per-row repair from the memoized match.
    let by_reference = epc_runtime::par_map(runtime, queries, |q| {
        let hit = dict
            .id_of(&q.address.street)
            // lint:allow(D7): id < dict.len() by SortedDict construction and hits has exactly one entry per dictionary label (par_map over dict.labels())
            .and_then(|id| hits[id as usize].as_ref());
        clean_with_hit(q, hit, reference, config)
    });

    let (out, report) = resolve_remainder(queries, by_reference, geocoder, config, fallback);
    (out, report, stats)
}

/// Pass 2 (sequential, input order): geocoder fallback for the addresses
/// the reference could not resolve, plus report tallying. Shared verbatim
/// by the row and columnar paths so their outputs can only differ if
/// pass 1 differs.
fn resolve_remainder(
    queries: &[AddressQuery],
    by_reference: Vec<Option<CleanedAddress>>,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
    fallback: Option<&DegradedFallback>,
) -> (Vec<CleanedAddress>, CleaningReport) {
    let mut report = CleaningReport {
        total: queries.len(),
        ..CleaningReport::default()
    };
    let requests_before = geocoder.map(|g| g.requests_made()).unwrap_or(0);
    let retries_before = geocoder.map(|g| g.retries_made()).unwrap_or(0);
    let mut out = Vec::with_capacity(queries.len());
    for (idx, (q, referenced)) in queries.iter().zip(by_reference).enumerate() {
        let cleaned = match referenced {
            Some(c) => c,
            None => clean_by_geocoder(q, idx, geocoder, config, fallback),
        };
        match cleaned.outcome {
            CleaningOutcome::ResolvedByReference { similarity } => {
                report.by_reference += 1;
                if similarity >= 1.0 {
                    report.exact_matches += 1;
                }
            }
            CleaningOutcome::ResolvedByGeocoder => report.by_geocoder += 1,
            CleaningOutcome::Degraded => report.degraded += 1,
            CleaningOutcome::Unresolved => report.unresolved += 1,
        }
        if cleaned.corrected.zip {
            report.zips_fixed += 1;
        }
        if cleaned.corrected.coords {
            report.coords_fixed += 1;
        }
        if cleaned.corrected.street {
            report.streets_fixed += 1;
        }
        out.push(cleaned);
    }
    report.geocoder_requests = geocoder
        .map(|g| g.requests_made() - requests_before)
        .unwrap_or(0);
    report.geocoder_retries = geocoder
        .map(|g| g.retries_made() - retries_before)
        .unwrap_or(0);
    (out, report)
}

/// Steps 1–2: referenced street map with threshold φ. Pure — safe to run
/// data-parallel.
fn clean_by_reference(
    q: &AddressQuery,
    reference: &StreetMap,
    config: &CleaningConfig,
) -> Option<CleanedAddress> {
    let hit = reference.best_match(&q.address.street, config.phi);
    clean_with_hit(q, hit.as_ref(), reference, config)
}

/// Step 2 alone: repairs `q` from an already-computed street match (the
/// columnar path memoizes the match per distinct street string).
fn clean_with_hit(
    q: &AddressQuery,
    hit: Option<&crate::streetmap::StreetMatch>,
    reference: &StreetMap,
    config: &CleaningConfig,
) -> Option<CleanedAddress> {
    let hit = hit?;
    let entry = reference.lookup(&hit.street_key, q.address.house_number.as_deref())?;
    Some(repair_from(
        q,
        CleaningOutcome::ResolvedByReference {
            similarity: hit.similarity,
        },
        &entry.street,
        &entry.house_number,
        &entry.zip,
        entry.point,
        Some(entry.district.clone()),
        Some(entry.neighbourhood.clone()),
        config,
    ))
}

/// Steps 3–4: quota-limited geocoder fallback, else degraded/unresolved.
/// Stateful — must run sequentially in input order.
fn clean_by_geocoder(
    q: &AddressQuery,
    idx: usize,
    geocoder: Option<&dyn Geocoder>,
    config: &CleaningConfig,
    fallback: Option<&DegradedFallback>,
) -> CleanedAddress {
    if let Some(g) = geocoder {
        match g.try_geocode(&q.address) {
            Ok(res) => {
                return repair_from(
                    q,
                    CleaningOutcome::ResolvedByGeocoder,
                    &res.street,
                    &res.house_number,
                    &res.zip,
                    res.point,
                    res.district,
                    res.neighbourhood,
                    config,
                );
            }
            Err(failure) if failure.is_transient() => {
                if let Some((district, centroid)) = fallback.and_then(|f| f.lookup(idx)) {
                    return CleanedAddress {
                        id: q.id,
                        outcome: CleaningOutcome::Degraded,
                        address: q.address.clone(),
                        point: Some(centroid),
                        district: Some(district.to_owned()),
                        neighbourhood: None,
                        corrected: CorrectedFields {
                            coords: true,
                            ..CorrectedFields::default()
                        },
                    };
                }
            }
            Err(GeocodeFailure::NotFound | GeocodeFailure::Transient(_)) => {}
        }
    }
    CleanedAddress {
        id: q.id,
        outcome: CleaningOutcome::Unresolved,
        address: q.address.clone(),
        point: q.point,
        district: None,
        neighbourhood: None,
        corrected: CorrectedFields::default(),
    }
}

#[allow(clippy::too_many_arguments)]
fn repair_from(
    q: &AddressQuery,
    outcome: CleaningOutcome,
    street: &str,
    house_number: &str,
    zip: &str,
    point: GeoPoint,
    district: Option<String>,
    neighbourhood: Option<String>,
    config: &CleaningConfig,
) -> CleanedAddress {
    let mut corrected = CorrectedFields::default();

    if q.address.street != street {
        corrected.street = true;
    }
    let repaired_hn = match q.address.house_number.as_deref() {
        Some(hn) if normalize_house_number(hn) == normalize_house_number(house_number) => {
            // Keep the canonical form but don't count a pure-format change
            // as a correction.
            house_number.to_owned()
        }
        Some(_) | None => {
            corrected.house_number = true;
            house_number.to_owned()
        }
    };
    let zip_ok = q
        .address
        .zip
        .as_deref()
        .map(|z| is_plausible_zip(z) && z == zip)
        .unwrap_or(false);
    if !zip_ok {
        corrected.zip = true;
    }
    let final_point = match q.point {
        Some(p) if p.is_valid() && p.haversine_m(&point) <= config.max_coord_error_m => p,
        _ => {
            corrected.coords = true;
            point
        }
    };

    CleanedAddress {
        id: q.id,
        outcome,
        address: Address {
            street: street.to_owned(),
            house_number: Some(repaired_hn),
            zip: Some(zip.to_owned()),
        },
        point: Some(final_point),
        district,
        neighbourhood,
        corrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geocode::{QuotaGeocoder, SimulatedGeocoder};
    use crate::streetmap::StreetEntry;

    fn entry(street: &str, hn: &str, zip: &str, lat: f64, lon: f64) -> StreetEntry {
        StreetEntry {
            street: street.to_owned(),
            house_number: hn.to_owned(),
            zip: zip.to_owned(),
            point: GeoPoint::new(lat, lon),
            district: "Centro".into(),
            neighbourhood: "Quadrilatero".into(),
        }
    }

    fn reference() -> StreetMap {
        StreetMap::from_entries(vec![
            entry("Via Roma", "10", "10121", 45.0700, 7.6800),
            entry("Via Roma", "12", "10121", 45.0702, 7.6803),
            entry("Corso Francia", "5", "10143", 45.0780, 7.6400),
        ])
    }

    fn cfg() -> CleaningConfig {
        CleaningConfig::default()
    }

    #[test]
    fn clean_address_passes_through_unchanged() {
        let q = AddressQuery {
            id: 0,
            address: Address::new("Via Roma", Some("10"), Some("10121")),
            point: Some(GeoPoint::new(45.0700, 7.6800)),
        };
        let (res, report) = clean_addresses(&[q], &reference(), None, &cfg());
        let c = &res[0];
        assert!(matches!(
            c.outcome,
            CleaningOutcome::ResolvedByReference { similarity } if similarity == 1.0
        ));
        assert_eq!(
            c.corrected.count(),
            0,
            "nothing should change: {:?}",
            c.corrected
        );
        assert_eq!(report.exact_matches, 1);
        assert_eq!(report.by_reference, 1);
    }

    #[test]
    fn typo_street_is_repaired() {
        let q = AddressQuery {
            id: 3,
            address: Address::new("via rma", Some("10"), None),
            point: None,
        };
        let (res, report) = clean_addresses(&[q], &reference(), None, &cfg());
        let c = &res[0];
        assert_eq!(c.address.street, "Via Roma");
        assert_eq!(c.address.zip.as_deref(), Some("10121"));
        assert!(c.corrected.street && c.corrected.zip && c.corrected.coords);
        assert_eq!(c.point.unwrap(), GeoPoint::new(45.0700, 7.6800));
        assert_eq!(c.district.as_deref(), Some("Centro"));
        assert_eq!(report.streets_fixed, 1);
        assert_eq!(report.zips_fixed, 1);
        assert_eq!(report.coords_fixed, 1);
    }

    #[test]
    fn wrong_coordinates_are_replaced() {
        let q = AddressQuery {
            id: 1,
            address: Address::new("Via Roma", Some("12"), Some("10121")),
            // ~11 km off: clearly wrong.
            point: Some(GeoPoint::new(45.17, 7.68)),
        };
        let (res, _) = clean_addresses(&[q], &reference(), None, &cfg());
        let c = &res[0];
        assert!(c.corrected.coords);
        assert_eq!(c.point.unwrap(), GeoPoint::new(45.0702, 7.6803));
    }

    #[test]
    fn nearby_coordinates_are_kept() {
        let original = GeoPoint::new(45.07005, 7.68005); // a few meters off
        let q = AddressQuery {
            id: 1,
            address: Address::new("Via Roma", Some("10"), Some("10121")),
            point: Some(original),
        };
        let (res, _) = clean_addresses(&[q], &reference(), None, &cfg());
        assert!(!res[0].corrected.coords);
        assert_eq!(res[0].point.unwrap(), original);
    }

    #[test]
    fn below_phi_goes_to_geocoder() {
        // Ground truth contains a street missing from the local reference.
        let mut truth = reference();
        truth.insert(entry("Via Garibaldi", "7", "10122", 45.0730, 7.6820));
        let geocoder = QuotaGeocoder::new(SimulatedGeocoder::new(truth, 0.6, 0.0), 10);
        let q = AddressQuery {
            id: 9,
            address: Address::new("via garibaldi", Some("7"), None),
            point: None,
        };
        let (res, report) = clean_addresses(&[q], &reference(), Some(&geocoder), &cfg());
        assert!(matches!(
            res[0].outcome,
            CleaningOutcome::ResolvedByGeocoder
        ));
        assert_eq!(res[0].address.zip.as_deref(), Some("10122"));
        assert_eq!(report.by_geocoder, 1);
        assert_eq!(report.geocoder_requests, 1);
    }

    #[test]
    fn unresolved_keeps_original() {
        let q = AddressQuery {
            id: 7,
            address: Address::new("xyzxyzxyz", None, Some("99999")),
            point: None,
        };
        let (res, report) = clean_addresses(std::slice::from_ref(&q), &reference(), None, &cfg());
        assert!(matches!(res[0].outcome, CleaningOutcome::Unresolved));
        assert_eq!(res[0].address, q.address);
        assert_eq!(res[0].point, None);
        assert_eq!(report.unresolved, 1);
    }

    #[test]
    fn quota_limits_geocoder_usage() {
        let truth = {
            let mut t = reference();
            t.insert(entry("Via Garibaldi", "7", "10122", 45.0730, 7.6820));
            t
        };
        let geocoder = QuotaGeocoder::new(SimulatedGeocoder::new(truth, 0.6, 0.0), 1);
        let queries: Vec<AddressQuery> = (0..3)
            .map(|i| AddressQuery {
                id: i,
                address: Address::new("via garibaldi", Some("7"), None),
                point: None,
            })
            .collect();
        let (res, report) = clean_addresses(&queries, &reference(), Some(&geocoder), &cfg());
        assert_eq!(report.by_geocoder, 1);
        assert_eq!(report.unresolved, 2);
        assert_eq!(report.geocoder_requests, 1, "refused calls don't count");
        assert!(matches!(
            res[0].outcome,
            CleaningOutcome::ResolvedByGeocoder
        ));
        assert!(matches!(res[2].outcome, CleaningOutcome::Unresolved));
    }

    #[test]
    fn phi_controls_acceptance() {
        let q = AddressQuery {
            id: 0,
            address: Address::new("via rqmq", Some("10"), None), // 2 edits from "via roma"
            point: None,
        };
        let strict = CleaningConfig { phi: 0.95, ..cfg() };
        let (res, _) = clean_addresses(std::slice::from_ref(&q), &reference(), None, &strict);
        assert!(matches!(res[0].outcome, CleaningOutcome::Unresolved));

        let lenient = CleaningConfig { phi: 0.7, ..cfg() };
        let (res, _) = clean_addresses(&[q], &reference(), None, &lenient);
        assert!(matches!(
            res[0].outcome,
            CleaningOutcome::ResolvedByReference { .. }
        ));
    }

    #[test]
    fn missing_zip_is_filled_in() {
        let q = AddressQuery {
            id: 0,
            address: Address::new("Via Roma", Some("10"), None),
            point: Some(GeoPoint::new(45.0700, 7.6800)),
        };
        let (res, _) = clean_addresses(&[q], &reference(), None, &cfg());
        assert_eq!(res[0].address.zip.as_deref(), Some("10121"));
        assert!(res[0].corrected.zip);
        assert!(!res[0].corrected.coords);
    }

    #[test]
    fn parallel_cleaning_matches_sequential_bitwise() {
        let truth = {
            let mut t = reference();
            t.insert(entry("Via Garibaldi", "7", "10122", 45.0730, 7.6820));
            t
        };
        // A mix of exact, noisy, geocoder-only, and hopeless addresses —
        // enough of them to cross par_map's per-thread minimum.
        let streets = ["Via Roma", "via rma", "via garibaldi", "zzzzzz"];
        let queries: Vec<AddressQuery> = (0..128)
            .map(|i| AddressQuery {
                id: i,
                address: Address::new(streets[i % streets.len()], Some("10"), None),
                point: None,
            })
            .collect();
        // Quota smaller than the geocoder-needing queries, so consumption
        // order is observable in the outcomes.
        let seq_geo = QuotaGeocoder::new(SimulatedGeocoder::new(truth.clone(), 0.6, 0.0), 9);
        let (seq, seq_report) = clean_addresses(&queries, &reference(), Some(&seq_geo), &cfg());
        for threads in [2usize, 8] {
            let par_geo = QuotaGeocoder::new(SimulatedGeocoder::new(truth.clone(), 0.6, 0.0), 9);
            let (par, par_report) = clean_addresses_with_runtime(
                &queries,
                &reference(),
                Some(&par_geo),
                &cfg(),
                &epc_runtime::RuntimeConfig::new(threads),
            );
            assert_eq!(par, seq, "threads = {threads}");
            assert_eq!(par_report, seq_report, "threads = {threads}");
        }
    }

    #[test]
    fn columnar_dedup_cleaning_matches_row_path_bitwise() {
        let truth = {
            let mut t = reference();
            t.insert(entry("Via Garibaldi", "7", "10122", 45.0730, 7.6820));
            t
        };
        // Heavy street repetition (the shape dedup exploits), a quota
        // small enough that geocoder consumption order is observable, and
        // enough rows to cross par_map's per-thread minimum.
        let streets = ["Via Roma", "via rma", "via garibaldi", "zzzzzz", "VIA ROMA"];
        let queries: Vec<AddressQuery> = (0..160)
            .map(|i| AddressQuery {
                id: i,
                address: Address::new(streets[i % streets.len()], Some("10"), None),
                point: None,
            })
            .collect();
        let row_geo = QuotaGeocoder::new(SimulatedGeocoder::new(truth.clone(), 0.6, 0.0), 9);
        let (row, row_report) = clean_addresses_degradable(
            &queries,
            &reference(),
            Some(&row_geo),
            &cfg(),
            &epc_runtime::RuntimeConfig::sequential(),
            None,
        );
        for threads in [1usize, 2, 8] {
            let col_geo = QuotaGeocoder::new(SimulatedGeocoder::new(truth.clone(), 0.6, 0.0), 9);
            let (col, col_report, stats) = clean_addresses_columnar(
                &queries,
                &reference(),
                Some(&col_geo),
                &cfg(),
                &epc_runtime::RuntimeConfig::new(threads),
                None,
            );
            assert_eq!(col, row, "threads = {threads}");
            assert_eq!(col_report, row_report, "threads = {threads}");
            assert_eq!(stats.total, 160);
            assert_eq!(stats.distinct_streets, streets.len());
        }
    }

    #[test]
    fn report_totals_are_consistent() {
        let queries = vec![
            AddressQuery {
                id: 0,
                address: Address::new("Via Roma", Some("10"), Some("10121")),
                point: Some(GeoPoint::new(45.0700, 7.6800)),
            },
            AddressQuery {
                id: 1,
                address: Address::new("zzzzzz", None, None),
                point: None,
            },
        ];
        let (_, r) = clean_addresses(&queries, &reference(), None, &cfg());
        assert_eq!(r.total, 2);
        assert_eq!(
            r.by_reference + r.by_geocoder + r.degraded + r.unresolved,
            r.total
        );
    }

    /// A geocoder whose every lookup fails with a quota-style transient
    /// error — models an upstream service outage.
    struct AlwaysTransient;

    impl Geocoder for AlwaysTransient {
        fn geocode(&self, _query: &Address) -> Option<crate::geocode::GeocodeResult> {
            None
        }
        fn try_geocode(
            &self,
            _query: &Address,
        ) -> Result<crate::geocode::GeocodeResult, GeocodeFailure> {
            Err(GeocodeFailure::Transient(
                crate::geocode::TransientKind::Quota,
            ))
        }
        fn requests_made(&self) -> usize {
            0
        }
    }

    fn degraded_fallback() -> DegradedFallback {
        let mut centroids = BTreeMap::new();
        centroids.insert("Centro".to_owned(), GeoPoint::new(45.071, 7.682));
        DegradedFallback {
            centroids,
            hints: vec![Some("Centro".to_owned())],
        }
    }

    #[test]
    fn transient_failure_degrades_to_district_centroid() {
        let q = AddressQuery {
            id: 4,
            address: Address::new("via sconosciuta", Some("3"), None),
            point: None,
        };
        let fallback = degraded_fallback();
        let (res, report) = clean_addresses_degradable(
            std::slice::from_ref(&q),
            &reference(),
            Some(&AlwaysTransient),
            &cfg(),
            &epc_runtime::RuntimeConfig::sequential(),
            Some(&fallback),
        );
        assert!(matches!(res[0].outcome, CleaningOutcome::Degraded));
        assert_eq!(res[0].point, Some(GeoPoint::new(45.071, 7.682)));
        assert_eq!(res[0].district.as_deref(), Some("Centro"));
        assert_eq!(res[0].address, q.address, "original address is kept");
        assert!(res[0].corrected.coords);
        assert_eq!(report.degraded, 1);
        assert_eq!(report.unresolved, 0);
        assert_eq!(report.coords_fixed, 1);
    }

    #[test]
    fn transient_failure_without_fallback_stays_unresolved() {
        let q = AddressQuery {
            id: 4,
            address: Address::new("via sconosciuta", Some("3"), None),
            point: None,
        };
        // No fallback at all, and a fallback whose hint has no centroid:
        // both leave the record unresolved instead of degrading it.
        let no_centroid = DegradedFallback {
            centroids: BTreeMap::new(),
            hints: vec![Some("Centro".to_owned())],
        };
        for fallback in [None, Some(&no_centroid)] {
            let (res, report) = clean_addresses_degradable(
                std::slice::from_ref(&q),
                &reference(),
                Some(&AlwaysTransient),
                &cfg(),
                &epc_runtime::RuntimeConfig::sequential(),
                fallback,
            );
            assert!(matches!(res[0].outcome, CleaningOutcome::Unresolved));
            assert_eq!(report.degraded, 0);
            assert_eq!(report.unresolved, 1);
        }
    }

    #[test]
    fn retry_counts_surface_in_the_report() {
        use crate::geocode::RetryGeocoder;
        let truth = {
            let mut t = reference();
            t.insert(entry("Via Garibaldi", "7", "10122", 45.0730, 7.6820));
            t
        };
        // RetryGeocoder over a permanently-missing street performs no
        // retries (NotFound is permanent); the report records zero.
        let retry = RetryGeocoder::new(
            SimulatedGeocoder::new(truth, 0.6, 0.0),
            3,
            crate::geocode::Backoff::default(),
        );
        let q = AddressQuery {
            id: 0,
            address: Address::new("zzzzzz", None, None),
            point: None,
        };
        let (_, report) = clean_addresses(&[q], &reference(), Some(&retry), &cfg());
        assert_eq!(report.geocoder_retries, 0);
        assert_eq!(report.unresolved, 1);
    }
}
