//! # epc-geo
//!
//! Geospatial substrate for the INDICE reproduction:
//!
//! * [`point`] / [`bbox`] — WGS84 points, haversine distances, bounding boxes;
//! * [`mod@levenshtein`] — the edit distance and the normalized similarity in
//!   `[0, 1]` the paper uses to match noisy addresses (§2.1.1);
//! * [`address`] — address normalization (abbreviation expansion, casing,
//!   punctuation) so `"C.so Vittorio Emanuele II"` and
//!   `"corso vittorio emanuele ii"` compare equal;
//! * [`streetmap`] — the *referenced street map* (street names, house
//!   numbers, ZIP codes, geolocation) the cleaning algorithm matches
//!   against;
//! * [`geocode`] — the geocoding fallback: a [`geocode::Geocoder`] trait
//!   with a request quota (the paper uses Google's free tier only when the
//!   reference map cannot resolve an address) and a deterministic simulator;
//! * [`cleaning`] — the multi-step address-cleaning algorithm of §2.1.1;
//! * [`quadtree`] — a point quadtree used by marker clustering and spatial
//!   selections;
//! * [`region`] — district/neighbourhood polygons with point-in-polygon
//!   assignment, backing the spatial-granularity drill-down.

pub mod address;
pub mod bbox;
pub mod cleaning;
pub mod geocode;
pub mod levenshtein;
pub mod point;
pub mod quadtree;
pub mod region;
pub mod streetmap;

pub use address::Address;
pub use bbox::BoundingBox;
pub use cleaning::{
    clean_addresses, clean_addresses_columnar, AddressQuery, CleanedAddress, CleaningConfig,
    CleaningOutcome, CleaningReport, DegradedFallback, StreetDedupStats,
};
pub use geocode::{
    Backoff, GeocodeFailure, GeocodeResult, Geocoder, QuotaGeocoder, RetryGeocoder,
    SimulatedGeocoder, TransientKind,
};
pub use levenshtein::{levenshtein, similarity};
pub use point::GeoPoint;
pub use quadtree::QuadTree;
pub use region::{Polygon, Region, RegionHierarchy};
pub use streetmap::{StreetEntry, StreetMap};
