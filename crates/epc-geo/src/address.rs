//! Address model and normalization.
//!
//! "The address attribute is usually collected as a free text field, it
//! often contains numerous typos and input errors" (§2.1.1). Before
//! Levenshtein matching, both the noisy addresses and the referenced street
//! map are normalized: lowercase, punctuation removal, whitespace collapse,
//! and expansion of the Italian odonym abbreviations that dominate the
//! Piedmont collection (`c.so` → `corso`, `v.` → `via`, …).

use serde::{Deserialize, Serialize};

/// A structured address as it appears in an EPC (possibly incomplete).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Address {
    /// Street (odonym), free text.
    pub street: String,
    /// House/civic number, free text (may include suffixes like `12/B`).
    pub house_number: Option<String>,
    /// ZIP code, if present.
    pub zip: Option<String>,
}

impl Address {
    /// Creates an address with all three components.
    pub fn new(street: &str, house_number: Option<&str>, zip: Option<&str>) -> Self {
        Address {
            street: street.to_owned(),
            house_number: house_number.map(str::to_owned),
            zip: zip.map(str::to_owned),
        }
    }

    /// The normalized street string used for matching.
    pub fn normalized_street(&self) -> String {
        normalize_street(&self.street)
    }
}

/// Italian odonym abbreviations → canonical expansion.
///
/// Matching is done on whole normalized tokens.
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("c.so", "corso"),
    ("cso", "corso"),
    ("c.sо", "corso"), // common OCR confusion (cyrillic о)
    ("v.", "via"),
    ("v.le", "viale"),
    ("vle", "viale"),
    ("p.za", "piazza"),
    ("p.zza", "piazza"),
    ("pza", "piazza"),
    ("pzza", "piazza"),
    ("l.go", "largo"),
    ("lgo", "largo"),
    ("str.", "strada"),
    ("s.da", "strada"),
    ("b.go", "borgo"),
    ("fraz.", "frazione"),
    ("loc.", "localita"),
];

/// Normalizes a street string for comparison: lowercase, accents folded,
/// punctuation (except `.` inside abbreviations, handled first) removed,
/// abbreviations expanded, whitespace collapsed.
pub fn normalize_street(raw: &str) -> String {
    // Lowercase + fold the accented vowels common in Italian street names.
    let lower: String = raw
        .chars()
        .flat_map(|c| c.to_lowercase())
        .map(fold_accent)
        .collect();

    // Token-wise abbreviation expansion (tokens split on whitespace).
    let mut tokens: Vec<String> = Vec::new();
    for tok in lower.split_whitespace() {
        let expanded = ABBREVIATIONS
            .iter()
            .find(|(abbr, _)| *abbr == tok)
            .map(|(_, full)| (*full).to_owned());
        match expanded {
            Some(full) => tokens.push(full),
            None => {
                // Strip residual punctuation from the token.
                let clean: String = tok.chars().filter(|c| c.is_alphanumeric()).collect();
                if !clean.is_empty() {
                    tokens.push(clean);
                }
            }
        }
    }
    tokens.join(" ")
}

fn fold_accent(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ä' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'ö' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        _ => c,
    }
}

/// Normalizes a house number: trims, uppercases suffix letters, removes
/// internal spaces (`"12 /B"` → `"12/B"`).
pub fn normalize_house_number(raw: &str) -> String {
    raw.chars()
        .filter(|c| !c.is_whitespace())
        .flat_map(|c| c.to_uppercase())
        .collect()
}

/// `true` when the string looks like a plausible 5-digit Italian ZIP code.
pub fn is_plausible_zip(zip: &str) -> bool {
    zip.len() == 5 && zip.chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_and_collapse() {
        assert_eq!(normalize_street("  VIA   ROMA "), "via roma");
    }

    #[test]
    fn abbreviations_expand() {
        assert_eq!(
            normalize_street("C.so Vittorio Emanuele II"),
            "corso vittorio emanuele ii"
        );
        assert_eq!(normalize_street("P.za Castello"), "piazza castello");
        assert_eq!(normalize_street("v.le Monviso"), "viale monviso");
        assert_eq!(normalize_street("L.go Dora"), "largo dora");
    }

    #[test]
    fn accents_fold() {
        assert_eq!(normalize_street("Via Nizza è qui"), "via nizza e qui");
        assert_eq!(normalize_street("Località Può"), "localita puo");
    }

    #[test]
    fn punctuation_is_stripped() {
        assert_eq!(normalize_street("via roma, 10!"), "via roma 10");
        assert_eq!(normalize_street("via s. chiara"), "via s chiara");
    }

    #[test]
    fn normalization_is_idempotent() {
        for raw in ["C.so Francia", "  VIA   PO ", "P.zza Vittorio Véneto"] {
            let once = normalize_street(raw);
            assert_eq!(normalize_street(&once), once);
        }
    }

    #[test]
    fn equal_after_normalization() {
        let a = normalize_street("C.SO VITTORIO EMANUELE II");
        let b = normalize_street("corso Vittorio Emanuele II");
        assert_eq!(a, b);
    }

    #[test]
    fn house_numbers() {
        assert_eq!(normalize_house_number("12 /b"), "12/B");
        assert_eq!(normalize_house_number(" 7 bis "), "7BIS");
        assert_eq!(normalize_house_number("42"), "42");
    }

    #[test]
    fn zip_plausibility() {
        assert!(is_plausible_zip("10121"));
        assert!(!is_plausible_zip("1012"));
        assert!(!is_plausible_zip("1012A"));
        assert!(!is_plausible_zip("101210"));
        assert!(!is_plausible_zip(""));
    }

    #[test]
    fn address_struct_helpers() {
        let a = Address::new("C.so Francia", Some("10/B"), Some("10143"));
        assert_eq!(a.normalized_street(), "corso francia");
        assert_eq!(a.house_number.as_deref(), Some("10/B"));
        let empty = Address::default();
        assert_eq!(empty.normalized_street(), "");
    }
}
