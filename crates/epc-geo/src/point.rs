//! WGS84 points and great-circle distances.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS84 coordinate pair in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees (positive north).
    pub lat: f64,
    /// Longitude in decimal degrees (positive east).
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point; debug-asserts plausible ranges.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat), "latitude {lat} out of range");
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude {lon} out of range"
        );
        GeoPoint { lat, lon }
    }

    /// `true` when both coordinates are finite and within WGS84 bounds.
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }

    /// Great-circle (haversine) distance to `other` in meters.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Midpoint with `other` (adequate for the city scales INDICE maps).
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        GeoPoint {
            lat: (self.lat + other.lat) / 2.0,
            lon: (self.lon + other.lon) / 2.0,
        }
    }

    /// Centroid of a non-empty point set; `None` when empty.
    pub fn centroid(points: &[GeoPoint]) -> Option<GeoPoint> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        Some(GeoPoint {
            lat: points.iter().map(|p| p.lat).sum::<f64>() / n,
            lon: points.iter().map(|p| p.lon).sum::<f64>() / n,
        })
    }

    /// Offsets the point by approximately `(dn, de)` meters (north, east) —
    /// used by the synthetic city generator to lay out house numbers.
    pub fn offset_m(&self, dn: f64, de: f64) -> GeoPoint {
        let dlat = dn / EARTH_RADIUS_M * (180.0 / std::f64::consts::PI);
        let dlon =
            de / (EARTH_RADIUS_M * self.lat.to_radians().cos()) * (180.0 / std::f64::consts::PI);
        GeoPoint {
            lat: self.lat + dlat,
            lon: self.lon + dlon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Piazza Castello, Turin — the city of the case study.
    const TURIN: GeoPoint = GeoPoint {
        lat: 45.0703,
        lon: 7.6869,
    };
    /// Milan Duomo.
    const MILAN: GeoPoint = GeoPoint {
        lat: 45.4642,
        lon: 9.1900,
    };

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(TURIN.haversine_m(&TURIN), 0.0);
    }

    #[test]
    fn haversine_turin_milan_is_about_125_km() {
        let d = TURIN.haversine_m(&MILAN);
        assert!((d - 125_000.0).abs() < 5_000.0, "got {d} m");
    }

    #[test]
    fn haversine_is_symmetric() {
        assert!((TURIN.haversine_m(&MILAN) - MILAN.haversine_m(&TURIN)).abs() < 1e-6);
    }

    #[test]
    fn small_distances_are_accurate() {
        // 1 degree of latitude ≈ 111.2 km
        let a = GeoPoint::new(45.0, 7.0);
        let b = GeoPoint::new(46.0, 7.0);
        let d = a.haversine_m(&b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn offset_round_trip() {
        let p = TURIN.offset_m(1000.0, 500.0);
        let d = TURIN.haversine_m(&p);
        let expected = (1000.0f64 * 1000.0 + 500.0 * 500.0).sqrt();
        assert!((d - expected).abs() < 5.0, "got {d}, want ~{expected}");
    }

    #[test]
    fn midpoint_and_centroid() {
        let m = TURIN.midpoint(&MILAN);
        assert!((m.lat - (TURIN.lat + MILAN.lat) / 2.0).abs() < 1e-12);
        let c = GeoPoint::centroid(&[TURIN, MILAN]).unwrap();
        assert!((c.lat - m.lat).abs() < 1e-12);
        assert!((c.lon - m.lon).abs() < 1e-12);
        assert_eq!(GeoPoint::centroid(&[]), None);
    }

    #[test]
    fn validity() {
        assert!(TURIN.is_valid());
        assert!(!GeoPoint {
            lat: f64::NAN,
            lon: 0.0
        }
        .is_valid());
        assert!(!GeoPoint {
            lat: 95.0,
            lon: 0.0
        }
        .is_valid());
        assert!(!GeoPoint {
            lat: 0.0,
            lon: 200.0
        }
        .is_valid());
    }
}
