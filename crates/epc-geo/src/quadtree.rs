//! A point quadtree over geographic coordinates.
//!
//! Backs the spatial selections of the query engine and the greedy marker
//! clustering of the cluster-marker maps: both need fast "all points in this
//! rectangle" queries over ~25 000 certificate locations.

use crate::bbox::BoundingBox;
use crate::point::GeoPoint;

const NODE_CAPACITY: usize = 16;
const MAX_DEPTH: usize = 16;

/// A point quadtree storing `(GeoPoint, payload)` pairs.
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    bounds: BoundingBox,
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(GeoPoint, T)>),
    /// Children in quadrant order SW, SE, NW, NE (see
    /// [`BoundingBox::quadrants`]).
    Internal(Box<[NodeSlot<T>; 4]>),
}

#[derive(Debug, Clone)]
struct NodeSlot<T> {
    bounds: BoundingBox,
    node: Node<T>,
}

impl<T: Clone> QuadTree<T> {
    /// An empty tree over `bounds`. Points outside the bounds are rejected
    /// by [`QuadTree::insert`].
    pub fn new(bounds: BoundingBox) -> Self {
        QuadTree {
            bounds,
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Builds a tree sized to `points` (with a small margin) and inserts
    /// them all. Returns `None` for empty input.
    pub fn from_points(items: Vec<(GeoPoint, T)>) -> Option<Self> {
        let pts: Vec<GeoPoint> = items.iter().map(|(p, _)| *p).collect();
        let bounds = BoundingBox::from_points(&pts)?.with_margin(1e-9);
        let mut tree = QuadTree::new(bounds);
        for (p, v) in items {
            tree.insert(p, v);
        }
        Some(tree)
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree bounds.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }

    /// Inserts a point; returns `false` (and stores nothing) when the point
    /// is outside the tree bounds.
    pub fn insert(&mut self, point: GeoPoint, value: T) -> bool {
        if !self.bounds.contains(&point) {
            return false;
        }
        insert_rec(&mut self.root, &self.bounds, point, value, 0);
        self.len += 1;
        true
    }

    /// All `(point, payload)` pairs inside `rect` (edges inclusive).
    pub fn query_rect(&self, rect: &BoundingBox) -> Vec<(GeoPoint, &T)> {
        let mut out = Vec::new();
        query_rec(&self.root, &self.bounds, rect, &mut out);
        out
    }

    /// Number of points inside `rect` without materializing them.
    pub fn count_rect(&self, rect: &BoundingBox) -> usize {
        count_rec(&self.root, &self.bounds, rect)
    }

    /// The nearest stored point to `target` (by haversine distance), with
    /// its payload; `None` when empty. Linear in the worst case but prunes
    /// whole quadrants via bounding-box distance.
    pub fn nearest(&self, target: &GeoPoint) -> Option<(GeoPoint, &T, f64)> {
        let mut best: Option<(GeoPoint, &T, f64)> = None;
        nearest_rec(&self.root, &self.bounds, target, &mut best);
        best
    }
}

// Geometric invariant: `split` tiles the parent bounds exactly, so a point
// inside the parent always falls in one quadrant; only invalid coordinates
// (rejected at insert) could break it.
#[allow(clippy::expect_used)]
fn insert_rec<T: Clone>(
    node: &mut Node<T>,
    bounds: &BoundingBox,
    point: GeoPoint,
    value: T,
    depth: usize,
) {
    match node {
        Node::Leaf(items) => {
            if items.len() < NODE_CAPACITY || depth >= MAX_DEPTH {
                items.push((point, value));
                return;
            }
            // Split: redistribute existing items into children.
            let quads = bounds.quadrants();
            let mut slots: [NodeSlot<T>; 4] = [
                NodeSlot {
                    bounds: quads[0],
                    node: Node::Leaf(Vec::new()),
                },
                NodeSlot {
                    bounds: quads[1],
                    node: Node::Leaf(Vec::new()),
                },
                NodeSlot {
                    bounds: quads[2],
                    node: Node::Leaf(Vec::new()),
                },
                NodeSlot {
                    bounds: quads[3],
                    node: Node::Leaf(Vec::new()),
                },
            ];
            for (p, v) in items.drain(..) {
                let slot = slots
                    .iter_mut()
                    .find(|s| s.bounds.contains(&p))
                    .expect("point must fall in a quadrant");
                let b = slot.bounds;
                insert_rec(&mut slot.node, &b, p, v, depth + 1);
            }
            *node = Node::Internal(Box::new(slots));
            insert_rec(node, bounds, point, value, depth);
        }
        Node::Internal(slots) => {
            let slot = slots
                .iter_mut()
                .find(|s| s.bounds.contains(&point))
                .expect("point inside parent must fall in a quadrant");
            let b = slot.bounds;
            insert_rec(&mut slot.node, &b, point, value, depth + 1);
        }
    }
}

fn query_rec<'a, T>(
    node: &'a Node<T>,
    bounds: &BoundingBox,
    rect: &BoundingBox,
    out: &mut Vec<(GeoPoint, &'a T)>,
) {
    if !bounds.intersects(rect) {
        return;
    }
    match node {
        Node::Leaf(items) => {
            for (p, v) in items {
                if rect.contains(p) {
                    out.push((*p, v));
                }
            }
        }
        Node::Internal(slots) => {
            for slot in slots.iter() {
                query_rec(&slot.node, &slot.bounds, rect, out);
            }
        }
    }
}

fn count_rec<T>(node: &Node<T>, bounds: &BoundingBox, rect: &BoundingBox) -> usize {
    if !bounds.intersects(rect) {
        return 0;
    }
    match node {
        Node::Leaf(items) => items.iter().filter(|(p, _)| rect.contains(p)).count(),
        Node::Internal(slots) => slots
            .iter()
            .map(|s| count_rec(&s.node, &s.bounds, rect))
            .sum(),
    }
}

fn nearest_rec<'a, T>(
    node: &'a Node<T>,
    bounds: &BoundingBox,
    target: &GeoPoint,
    best: &mut Option<(GeoPoint, &'a T, f64)>,
) {
    // Prune: closest possible point of this box to the target.
    if let Some((_, _, best_d)) = best {
        let clamped = GeoPoint {
            lat: target.lat.clamp(bounds.min_lat, bounds.max_lat),
            lon: target.lon.clamp(bounds.min_lon, bounds.max_lon),
        };
        if clamped.haversine_m(target) > *best_d {
            return;
        }
    }
    match node {
        Node::Leaf(items) => {
            for (p, v) in items {
                let d = p.haversine_m(target);
                if best.as_ref().map(|(_, _, bd)| d < *bd).unwrap_or(true) {
                    *best = Some((*p, v, d));
                }
            }
        }
        Node::Internal(slots) => {
            // Visit the quadrant containing the target first for tighter
            // pruning.
            let mut order: Vec<&NodeSlot<T>> = slots.iter().collect();
            order.sort_by_key(|s| !s.bounds.contains(target) as u8);
            for slot in order {
                nearest_rec(&slot.node, &slot.bounds, target, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random point cloud around Turin.
    fn cloud(n: usize) -> Vec<(GeoPoint, usize)> {
        (0..n)
            .map(|i| {
                let a = ((i * 2654435761) % 10_000) as f64 / 10_000.0;
                let b = ((i * 40503 + 7) % 10_000) as f64 / 10_000.0;
                (GeoPoint::new(45.0 + a * 0.2, 7.6 + b * 0.2), i)
            })
            .collect()
    }

    #[test]
    fn insert_and_len() {
        let mut t = QuadTree::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        assert!(t.is_empty());
        assert!(t.insert(GeoPoint::new(0.5, 0.5), "a"));
        assert!(!t.insert(GeoPoint::new(2.0, 2.0), "outside"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn query_matches_brute_force() {
        let pts = cloud(2000);
        let tree = QuadTree::from_points(pts.clone()).unwrap();
        assert_eq!(tree.len(), 2000);
        let rect = BoundingBox::new(45.05, 7.65, 45.12, 7.72);
        let mut got: Vec<usize> = tree.query_rect(&rect).iter().map(|(_, &v)| v).collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = pts
            .iter()
            .filter(|(p, _)| rect.contains(p))
            .map(|(_, v)| *v)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "rect should contain some points");
        assert_eq!(tree.count_rect(&rect), got.len());
    }

    #[test]
    fn query_outside_bounds_is_empty() {
        let tree = QuadTree::from_points(cloud(100)).unwrap();
        let far = BoundingBox::new(0.0, 0.0, 1.0, 1.0);
        assert!(tree.query_rect(&far).is_empty());
        assert_eq!(tree.count_rect(&far), 0);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(500);
        let tree = QuadTree::from_points(pts.clone()).unwrap();
        for target in [
            GeoPoint::new(45.1, 7.7),
            GeoPoint::new(45.0, 7.6),
            GeoPoint::new(45.19, 7.79),
        ] {
            let (_, &got, gd) = tree.nearest(&target).unwrap();
            let (bp, bv) = pts
                .iter()
                .min_by(|(a, _), (b, _)| {
                    a.haversine_m(&target)
                        .partial_cmp(&b.haversine_m(&target))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(got, *bv);
            assert!((gd - bp.haversine_m(&target)).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_points_are_all_kept() {
        let p = GeoPoint::new(45.05, 7.65);
        let items: Vec<(GeoPoint, usize)> = (0..100).map(|i| (p, i)).collect();
        // All duplicates would overflow a leaf without the MAX_DEPTH stop.
        let mut tree = QuadTree::new(BoundingBox::new(45.0, 7.6, 45.1, 7.7));
        for (pt, v) in items {
            assert!(tree.insert(pt, v));
        }
        assert_eq!(tree.len(), 100);
        let rect = BoundingBox::new(45.049, 7.649, 45.051, 7.651);
        assert_eq!(tree.count_rect(&rect), 100);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: Option<QuadTree<u8>> = QuadTree::from_points(vec![]);
        assert!(t.is_none());
        let t = QuadTree::<u8>::new(BoundingBox::new(0.0, 0.0, 1.0, 1.0));
        assert!(t.nearest(&GeoPoint::new(0.5, 0.5)).is_none());
    }

    #[test]
    fn boundary_points_are_found() {
        let b = BoundingBox::new(45.0, 7.6, 45.2, 7.8);
        let mut t = QuadTree::new(b);
        // Corners and center lines (quadrant boundaries).
        let pts = [
            GeoPoint::new(45.0, 7.6),
            GeoPoint::new(45.2, 7.8),
            GeoPoint::new(45.1, 7.7), // exact center
            GeoPoint::new(45.1, 7.6),
        ];
        for (i, p) in pts.iter().enumerate() {
            assert!(t.insert(*p, i), "insert {p:?}");
        }
        assert_eq!(t.count_rect(&b), pts.len());
    }
}
