//! Fixed-length bitmaps over `u64` words.
//!
//! The same type serves two roles: a *validity* bitmap (bit set = value
//! present at that row slot) and a *selection* bitmap (bit set = row
//! matches a predicate). Word storage makes the boolean algebra
//! (`and` / `or` / `not`) process 64 rows per instruction, and the
//! `ones()` iterator skips all-zero words, so sparse selections cost
//! close to nothing to walk.
//!
//! Invariant: bits at positions `len..` of the last word are always zero,
//! so `count_ones` and word-wise combination never see garbage tails.

/// A fixed-length bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// All-zero bitmap of `len` bits.
    pub fn empty(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one bitmap of `len` bits (tail bits beyond `len` stay zero).
    pub fn full(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Bitmap with exactly the bits of `bits` set.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut b = Bitmap::empty(bits.len());
        for (i, &set) in bits.iter().enumerate() {
            if set {
                b.set(i);
            }
        }
        b
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitmap covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`. Panics if `i >= len` (caller bug, like slice OOB).
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Sets the bit at `i`. Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise AND. Panics on length mismatch (caller bug).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR. Panics on length mismatch (caller bug).
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise NOT over the `len` covered bits.
    pub fn not(&self) -> Bitmap {
        let mut b = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        b.mask_tail();
        b
    }

    /// Indices of set bits, ascending. Skips all-zero words.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Expands to one `bool` per bit.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Heap bytes held by the word storage (for compression accounting).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count_roundtrip() {
        let mut b = Bitmap::empty(130);
        for i in [0, 63, 64, 65, 129] {
            b.set(i);
        }
        assert_eq!(b.count_ones(), 5);
        assert!(b.get(64) && !b.get(66));
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 129]);
    }

    #[test]
    fn not_masks_the_tail() {
        let b = Bitmap::empty(70).not();
        assert_eq!(b.count_ones(), 70);
        assert_eq!(b.not().count_ones(), 0);
        assert_eq!(Bitmap::full(70), b);
    }

    #[test]
    fn algebra_matches_bools() {
        let x: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let y: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let (bx, by) = (Bitmap::from_bools(&x), Bitmap::from_bools(&y));
        let and: Vec<bool> = x.iter().zip(&y).map(|(a, b)| *a && *b).collect();
        let or: Vec<bool> = x.iter().zip(&y).map(|(a, b)| *a || *b).collect();
        let not: Vec<bool> = x.iter().map(|a| !a).collect();
        assert_eq!(bx.and(&by).to_bools(), and);
        assert_eq!(bx.or(&by).to_bools(), or);
        assert_eq!(bx.not().to_bools(), not);
    }

    #[test]
    fn empty_bitmap_is_harmless() {
        let b = Bitmap::empty(0);
        assert!(b.is_empty());
        assert_eq!(b.ones().count(), 0);
        assert_eq!(b.not(), b);
    }
}
