//! Vectorized kernels over columnar data.
//!
//! Filter kernels produce selection [`Bitmap`]s and consult zone maps to
//! skip whole blocks; [`ScanStats`] records how many blocks each scan
//! touched versus skipped so `epc-obs` can surface pushdown
//! effectiveness. Gather kernels densify columns for the distance loops
//! in `epc-mining`.
//!
//! Semantics contract: every kernel matches the row path of
//! `epc-query`/`epc-model` exactly — a missing value satisfies no range
//! or equality predicate, NaN satisfies no range predicate, and bounds
//! are inclusive. The differential harness (`tests/columnar.rs`) gates
//! this equivalence bitwise.

use crate::bitmap::Bitmap;
use crate::column::{CategoricalColumn, NumericColumn};
use crate::store::{ColumnStore, StoreColumn};
use epc_model::AttrId;

/// Blocks touched vs skipped by zone maps across filter scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanStats {
    /// Blocks whose values were actually decoded and tested.
    pub blocks_scanned: u64,
    /// Blocks skipped because their zone map excluded every match.
    pub blocks_skipped: u64,
}

impl ScanStats {
    /// Accumulates another scan's counters into this one.
    pub fn merge(&mut self, other: ScanStats) {
        self.blocks_scanned += other.blocks_scanned;
        self.blocks_skipped += other.blocks_skipped;
    }
}

/// Rows whose numeric value `v` satisfies `min ≤ v ≤ max` (either bound
/// optional, both inclusive). Missing slots and NaN never match. Blocks
/// whose zone map cannot intersect the query range are skipped.
pub fn num_range(
    col: &NumericColumn,
    min: Option<f64>,
    max: Option<f64>,
    stats: &mut ScanStats,
) -> Bitmap {
    let mut out = Bitmap::empty(col.len());
    let mut base = 0usize;
    for block in col.blocks() {
        let matchable = match block.zone() {
            // No present non-NaN value exists, so nothing can match.
            None => false,
            Some((lo, hi)) => min.is_none_or(|m| hi >= m) && max.is_none_or(|m| lo <= m),
        };
        if !matchable {
            stats.blocks_skipped += 1;
            base += block.len();
            continue;
        }
        stats.blocks_scanned += 1;
        let vals = block.decode_present();
        let mut next = 0usize;
        for i in 0..block.len() {
            if block.present().get(i) {
                let v = vals[next];
                next += 1;
                if min.is_none_or(|m| v >= m) && max.is_none_or(|m| v <= m) {
                    out.set(base + i);
                }
            }
        }
        base += block.len();
    }
    out
}

/// Rows whose label equals `value`. A label absent from the dictionary
/// matches nothing without touching any block.
pub fn cat_eq(col: &CategoricalColumn, value: &str, stats: &mut ScanStats) -> Bitmap {
    match col.dict().id_of(value) {
        Some(code) => cat_in_codes(col, &[code], stats),
        None => {
            stats.blocks_skipped += col.blocks().len() as u64;
            Bitmap::empty(col.len())
        }
    }
}

/// Rows whose label is any of `values` (set membership, mirroring the row
/// path's `any`-over-list semantics).
pub fn cat_in(col: &CategoricalColumn, values: &[String], stats: &mut ScanStats) -> Bitmap {
    let mut codes: Vec<u32> = values.iter().filter_map(|v| col.dict().id_of(v)).collect();
    codes.sort_unstable();
    codes.dedup();
    if codes.is_empty() {
        stats.blocks_skipped += col.blocks().len() as u64;
        return Bitmap::empty(col.len());
    }
    cat_in_codes(col, &codes, stats)
}

/// Rows whose code is in the sorted, deduplicated `codes` list.
fn cat_in_codes(col: &CategoricalColumn, codes: &[u32], stats: &mut ScanStats) -> Bitmap {
    let mut out = Bitmap::empty(col.len());
    let mut base = 0usize;
    for block in col.blocks() {
        let matchable = match block.zone() {
            None => false,
            Some((lo, hi)) => codes.iter().any(|&c| c >= lo && c <= hi),
        };
        if !matchable {
            stats.blocks_skipped += 1;
            base += block.len();
            continue;
        }
        stats.blocks_scanned += 1;
        let block_codes = block.decode_present();
        let mut next = 0usize;
        for i in 0..block.len() {
            if block.present().get(i) {
                let c = block_codes[next];
                next += 1;
                if codes.binary_search(&c).is_ok() {
                    out.set(base + i);
                }
            }
        }
        base += block.len();
    }
    out
}

/// Rows holding a value in the attribute's column. An id with no backing
/// column yields the empty bitmap (every row is missing there).
pub fn is_present(store: &ColumnStore, id: AttrId) -> Bitmap {
    match store.column(id) {
        Some(StoreColumn::Numeric(c)) => c.present(),
        Some(StoreColumn::Categorical(c)) => c.present(),
        None => Bitmap::empty(store.n_rows()),
    }
}

/// Rows missing a value in the attribute's column.
pub fn is_missing(store: &ColumnStore, id: AttrId) -> Bitmap {
    is_present(store, id).not()
}

/// Dense gather of the feature columns' complete rows, in row-major order
/// — the exact shape `epc-mining`'s distance loops consume. Returns the
/// original row index of each gathered row plus the flat data. Mirrors
/// the row path bit-for-bit: a row participates only when *every* feature
/// id resolves to a present numeric value.
pub fn gather_complete_rows(store: &ColumnStore, feature_ids: &[AttrId]) -> (Vec<usize>, Vec<f64>) {
    let slots: Vec<Option<Vec<Option<f64>>>> = feature_ids
        .iter()
        .map(|&id| store.numeric(id).map(NumericColumn::to_slots))
        .collect();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    'rows: for r in 0..store.n_rows() {
        let start = data.len();
        for col in &slots {
            match col.as_ref().and_then(|s| s[r]) {
                Some(v) => data.push(v),
                None => {
                    data.truncate(start);
                    continue 'rows;
                }
            }
        }
        rows.push(r);
    }
    (rows, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num_col(slots: &[Option<f64>]) -> NumericColumn {
        NumericColumn::from_slots(slots)
    }

    #[test]
    fn num_range_matches_naive_filter() {
        let slots: Vec<Option<f64>> = (0..2500)
            .map(|i| match i % 7 {
                0 => None,
                1 => Some(f64::NAN),
                _ => Some((i % 100) as f64),
            })
            .collect();
        let col = num_col(&slots);
        let mut stats = ScanStats::default();
        let got = num_range(&col, Some(10.0), Some(20.0), &mut stats);
        let want: Vec<bool> = slots
            .iter()
            .map(|s| s.map_or(false, |v| v >= 10.0 && v <= 20.0))
            .collect();
        assert_eq!(got.to_bools(), want);
        assert_eq!(
            stats.blocks_scanned + stats.blocks_skipped,
            col.blocks().len() as u64
        );
    }

    #[test]
    fn zone_maps_skip_out_of_range_blocks() {
        // First block all below 1000, second block all above.
        let mut slots: Vec<Option<f64>> = vec![Some(1.0); 1024];
        slots.extend(vec![Some(5000.0); 1024]);
        let col = num_col(&slots);
        let mut stats = ScanStats::default();
        let got = num_range(&col, Some(4000.0), None, &mut stats);
        assert_eq!(stats.blocks_skipped, 1);
        assert_eq!(stats.blocks_scanned, 1);
        assert_eq!(got.count_ones(), 1024);
    }

    #[test]
    fn cat_kernels_match_naive() {
        let labels = ["alpha", "beta", "gamma"];
        let slots: Vec<Option<&str>> = (0..2100)
            .map(|i| {
                if i % 5 == 0 {
                    None
                } else {
                    Some(labels[i % 3])
                }
            })
            .collect();
        let col = CategoricalColumn::from_slots(&slots);
        let mut stats = ScanStats::default();
        let eq = cat_eq(&col, "beta", &mut stats);
        let want: Vec<bool> = slots.iter().map(|s| *s == Some("beta")).collect();
        assert_eq!(eq.to_bools(), want);

        let within = cat_in(
            &col,
            &[
                "gamma".to_string(),
                "absent".to_string(),
                "alpha".to_string(),
            ],
            &mut stats,
        );
        let want: Vec<bool> = slots
            .iter()
            .map(|s| matches!(*s, Some("gamma") | Some("alpha")))
            .collect();
        assert_eq!(within.to_bools(), want);

        // Absent label: all blocks skipped.
        let mut absent_stats = ScanStats::default();
        let none = cat_eq(&col, "missing-label", &mut absent_stats);
        assert_eq!(none.count_ones(), 0);
        assert_eq!(absent_stats.blocks_scanned, 0);
        assert_eq!(absent_stats.blocks_skipped, col.blocks().len() as u64);
    }

    #[test]
    fn gather_skips_incomplete_rows() {
        use crate::store::DatasetColumnarExt;
        use epc_model::schema::standard_epc_schema;
        use epc_model::{Dataset, Value};
        let schema = standard_epc_schema();
        let ids: Vec<AttrId> = schema
            .iter()
            .filter(|(_, d)| d.kind.is_numeric())
            .map(|(id, _)| id)
            .take(3)
            .collect();
        let mut ds = Dataset::new(std::sync::Arc::clone(&schema));
        for i in 0..10 {
            let mut rec = ds.empty_record();
            for (j, &id) in ids.iter().enumerate() {
                if i == 4 && j == 1 {
                    continue; // incomplete row
                }
                rec.set(id, Value::Num(i as f64 + j as f64 * 0.25)).unwrap();
            }
            ds.push_record(rec).unwrap();
        }
        let store = ds.to_columns();
        let (rows, data) = gather_complete_rows(&store, &ids);
        assert_eq!(rows, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
        assert_eq!(data.len(), rows.len() * ids.len());
        assert_eq!(data[0..3], [0.0, 0.25, 0.5]);
    }
}
