//! Sorted-insertion dictionary for categorical attributes.
//!
//! Unlike `epc_model::dataset::CatColumn`, which interns labels in
//! first-occurrence order (so two datasets holding the same rows in a
//! different order get different codes), this dictionary sorts its label
//! set before assigning ids. Encodings are therefore *input-order
//! invariant*: any permutation of the same rows produces the same
//! dictionary and the same per-label id — which is what lets zone maps
//! over code ranges double as lexicographic label ranges, and lets two
//! stores built from differently-ordered ingests share comparisons.

use std::collections::BTreeSet;

/// An immutable, lexicographically sorted label dictionary.
///
/// Ids are the `u32` positions in the sorted label list; `id_of` is a
/// binary search and `label` an index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedDict {
    labels: Vec<String>,
}

impl SortedDict {
    /// Builds the dictionary from any label sequence; duplicates collapse
    /// and order does not matter.
    pub fn from_labels<'a, I>(labels: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let set: BTreeSet<&str> = labels.into_iter().collect();
        SortedDict {
            labels: set.into_iter().map(String::from).collect(),
        }
    }

    /// The id of a label, if interned.
    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.labels
            .binary_search_by(|probe| probe.as_str().cmp(label))
            .ok()
            .map(|i| i as u32)
    }

    /// The label behind an id, if in range.
    pub fn label(&self, id: u32) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// All labels in id order (i.e. sorted).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Heap bytes held by the label storage (for compression accounting).
    pub fn bytes(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 24).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sorted_positions() {
        let d = SortedDict::from_labels(["b", "a", "c", "a"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.id_of("a"), Some(0));
        assert_eq!(d.id_of("b"), Some(1));
        assert_eq!(d.id_of("c"), Some(2));
        assert_eq!(d.id_of("d"), None);
        assert_eq!(d.label(2), Some("c"));
        assert_eq!(d.label(3), None);
    }

    #[test]
    fn encoding_is_input_order_invariant() {
        let fwd = SortedDict::from_labels(["x", "y", "z"]);
        let rev = SortedDict::from_labels(["z", "y", "x", "z"]);
        assert_eq!(fwd, rev);
    }
}
