//! Typed columns: blocked numeric storage and dictionary-encoded
//! categorical storage.

use crate::bitmap::Bitmap;
use crate::block::{CodeBlock, NumBlock, BLOCK_LEN};
use crate::dict::SortedDict;

/// A numeric attribute stored as compressed blocks with zone maps.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericColumn {
    blocks: Vec<NumBlock>,
    len: usize,
}

impl NumericColumn {
    /// Builds the column from one `Option<f64>` slot per row.
    pub fn from_slots(slots: &[Option<f64>]) -> Self {
        NumericColumn {
            blocks: slots.chunks(BLOCK_LEN).map(NumBlock::encode).collect(),
            len: slots.len(),
        }
    }

    /// Number of row slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The blocks, in row order ([`BLOCK_LEN`] slots each except the last).
    pub fn blocks(&self) -> &[NumBlock] {
        &self.blocks
    }

    /// Decodes the whole column back to one slot per row. Bit-exact.
    pub fn to_slots(&self) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(self.len);
        for block in &self.blocks {
            block.decode_into(&mut out);
        }
        out
    }

    /// Point lookup: the value at `row`, decoding only the covering block.
    pub fn get(&self, row: usize) -> Option<f64> {
        if row >= self.len {
            return None;
        }
        let block = &self.blocks[row / BLOCK_LEN];
        let slot = row % BLOCK_LEN;
        if !block.present().get(slot) {
            return None;
        }
        // Rank of this slot among the block's present values.
        let rank = (0..slot).filter(|&i| block.present().get(i)).count();
        block.decode_present().get(rank).copied()
    }

    /// Validity bitmap over all rows (bit set = value present).
    pub fn present(&self) -> Bitmap {
        let mut b = Bitmap::empty(self.len);
        let mut base = 0usize;
        for block in &self.blocks {
            for i in 0..block.len() {
                if block.present().get(i) {
                    b.set(base + i);
                }
            }
            base += block.len();
        }
        b
    }

    /// Encoded bytes across all blocks.
    pub fn bytes_encoded(&self) -> usize {
        self.blocks.iter().map(NumBlock::bytes_encoded).sum()
    }

    /// Uncompressed row-representation bytes across all blocks.
    pub fn bytes_plain(&self) -> usize {
        self.blocks.iter().map(NumBlock::bytes_plain).sum()
    }
}

/// A categorical attribute: sorted dictionary + blocked code storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalColumn {
    dict: SortedDict,
    blocks: Vec<CodeBlock>,
    len: usize,
}

impl CategoricalColumn {
    /// Builds the column from one optional label per row. The dictionary
    /// is sorted-insertion, so the same rows in any order produce the same
    /// dictionary ids.
    pub fn from_slots(slots: &[Option<&str>]) -> Self {
        let dict = SortedDict::from_labels(slots.iter().flatten().copied());
        let codes: Vec<Option<u32>> = slots
            .iter()
            .map(|s| s.and_then(|label| dict.id_of(label)))
            .collect();
        CategoricalColumn {
            blocks: codes.chunks(BLOCK_LEN).map(CodeBlock::encode).collect(),
            dict,
            len: slots.len(),
        }
    }

    /// Number of row slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The sorted label dictionary.
    pub fn dict(&self) -> &SortedDict {
        &self.dict
    }

    /// The code blocks, in row order.
    pub fn blocks(&self) -> &[CodeBlock] {
        &self.blocks
    }

    /// Decodes the whole column back to one code slot per row.
    pub fn to_code_slots(&self) -> Vec<Option<u32>> {
        let mut out = Vec::with_capacity(self.len);
        for block in &self.blocks {
            block.decode_into(&mut out);
        }
        out
    }

    /// Decodes the whole column back to one label slot per row.
    pub fn to_label_slots(&self) -> Vec<Option<&str>> {
        self.to_code_slots()
            .into_iter()
            .map(|c| c.and_then(|code| self.dict.label(code)))
            .collect()
    }

    /// Point lookup: the code at `row`, decoding only the covering block.
    pub fn get_code(&self, row: usize) -> Option<u32> {
        if row >= self.len {
            return None;
        }
        let block = &self.blocks[row / BLOCK_LEN];
        let slot = row % BLOCK_LEN;
        if !block.present().get(slot) {
            return None;
        }
        let rank = (0..slot).filter(|&i| block.present().get(i)).count();
        block.decode_present().get(rank).copied()
    }

    /// Point lookup: the label at `row`.
    pub fn get_label(&self, row: usize) -> Option<&str> {
        self.get_code(row).and_then(|code| self.dict.label(code))
    }

    /// Validity bitmap over all rows (bit set = label present).
    pub fn present(&self) -> Bitmap {
        let mut b = Bitmap::empty(self.len);
        let mut base = 0usize;
        for block in &self.blocks {
            for i in 0..block.len() {
                if block.present().get(i) {
                    b.set(base + i);
                }
            }
            base += block.len();
        }
        b
    }

    /// Encoded bytes across all blocks plus the dictionary.
    pub fn bytes_encoded(&self) -> usize {
        self.blocks
            .iter()
            .map(CodeBlock::bytes_encoded)
            .sum::<usize>()
            + self.dict.bytes()
    }

    /// Uncompressed row-representation bytes: each slot modelled as an
    /// owned label (mean label length) + validity byte.
    pub fn bytes_plain(&self) -> usize {
        let mean_label = if self.dict.is_empty() {
            0
        } else {
            self.dict.bytes() / self.dict.len()
        };
        self.blocks.iter().map(|b| b.len() * (1 + mean_label)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_column_roundtrips_across_blocks() {
        let slots: Vec<Option<f64>> = (0..3000)
            .map(|i| {
                if i % 11 == 0 {
                    None
                } else {
                    Some((i % 17) as f64 * 0.5)
                }
            })
            .collect();
        let col = NumericColumn::from_slots(&slots);
        assert_eq!(col.len(), 3000);
        assert_eq!(col.blocks().len(), 3);
        assert_eq!(col.to_slots(), slots);
        assert_eq!(col.present().count_ones(), slots.iter().flatten().count());
    }

    #[test]
    fn categorical_column_is_order_invariant() {
        let fwd: Vec<Option<&str>> = vec![Some("b"), None, Some("a"), Some("c"), Some("a")];
        let rev: Vec<Option<&str>> = vec![Some("a"), Some("c"), Some("a"), None, Some("b")];
        let cf = CategoricalColumn::from_slots(&fwd);
        let cr = CategoricalColumn::from_slots(&rev);
        assert_eq!(cf.dict(), cr.dict());
        assert_eq!(cf.to_label_slots(), fwd);
        assert_eq!(cr.to_label_slots(), rev);
    }
}
