//! Per-block encodings for numeric values and dictionary codes.
//!
//! Columns are chunked into blocks of up to [`BLOCK_LEN`] row slots. Each
//! block stores a validity bitmap, the *present* values under the cheapest
//! of several encodings, and a min/max zone map used by the filter kernels
//! to skip whole blocks that provably contain no match.
//!
//! Numeric encodings (selected per block by encoded byte size, ties broken
//! in a fixed order so selection is deterministic):
//!
//! * **RLE** over IEEE-754 bit patterns — exact for every value including
//!   NaN payloads and `-0.0`; wins on constant-ish blocks.
//! * **Delta + zig-zag + bit-pack** — only for blocks whose values all
//!   round-trip exactly through `i64` (`v.to_bits() == (v as i64 as
//!   f64).to_bits()`, which rejects NaN, ±inf, fractions, `-0.0`, and
//!   out-of-range magnitudes); wins on slowly-varying integral columns
//!   such as construction years and floor counts.
//! * **Plain** bit patterns — the fallback; always exact.
//!
//! Dictionary-code encodings mirror the same idea over `u32` ids: RLE,
//! fixed-width bit-packing, or plain.
//!
//! Zone-map soundness contract (proptested in `tests/columnar.rs`): a
//! block's zone map covers every present, non-NaN value. NaN never
//! satisfies a range predicate and missing slots never match, so a block
//! whose zone map does not intersect the query range — or whose zone map
//! is `None` because no comparable value exists — can be skipped without
//! changing any result.

use crate::bitmap::Bitmap;

/// Row slots per block.
pub const BLOCK_LEN: usize = 1024;

// ---------------------------------------------------------------------------
// Bit-packing primitives (LSB-first, fixed width 0..=64).
// ---------------------------------------------------------------------------

fn pack_bits(values: &[u64], width: u8) -> Vec<u64> {
    debug_assert!(width <= 64);
    if width == 0 {
        return Vec::new();
    }
    let w = width as usize;
    let total_bits = values.len() * w;
    let mut out = vec![0u64; total_bits.div_ceil(64)];
    for (i, &v) in values.iter().enumerate() {
        let bit = i * w;
        let (word, off) = (bit / 64, bit % 64);
        out[word] |= v << off;
        if off + w > 64 {
            out[word + 1] |= v >> (64 - off);
        }
    }
    out
}

fn unpack_bits(packed: &[u64], width: u8, n: usize) -> Vec<u64> {
    debug_assert!(width <= 64);
    if width == 0 {
        return vec![0; n];
    }
    let w = width as usize;
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let bit = i * w;
        let (word, off) = (bit / 64, bit % 64);
        let mut v = packed[word] >> off;
        if off + w > 64 {
            v |= packed[word + 1] << (64 - off);
        }
        out.push(v & mask);
    }
    out
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Bits needed to represent `v` (0 for 0).
fn bit_width(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

// ---------------------------------------------------------------------------
// Numeric blocks.
// ---------------------------------------------------------------------------

/// How the present values of one numeric block are stored.
#[derive(Debug, Clone, PartialEq)]
pub enum NumEncoding {
    /// Raw IEEE-754 bit patterns, one per present value, in row order.
    Plain(Vec<u64>),
    /// Run-length over bit patterns: `(bits, run_length)`.
    Rle(Vec<(u64, u32)>),
    /// First value as `i64`, then zig-zag deltas bit-packed at `width`.
    Delta {
        /// First present value.
        first: i64,
        /// Fixed bit width of each packed delta.
        width: u8,
        /// LSB-first packed zig-zag deltas (`n - 1` of them).
        packed: Vec<u64>,
    },
}

/// One block of a numeric column: validity + encoded values + zone map.
#[derive(Debug, Clone, PartialEq)]
pub struct NumBlock {
    len: usize,
    present: Bitmap,
    n_present: usize,
    encoding: NumEncoding,
    /// `(min, max)` over present non-NaN values; `None` when no such value
    /// exists (all-null or all-NaN block).
    zone: Option<(f64, f64)>,
}

impl NumBlock {
    /// Encodes one block worth of row slots (at most [`BLOCK_LEN`]).
    pub fn encode(slots: &[Option<f64>]) -> Self {
        assert!(slots.len() <= BLOCK_LEN, "block over-full");
        let mut present = Bitmap::empty(slots.len());
        let mut vals: Vec<f64> = Vec::with_capacity(slots.len());
        for (i, v) in slots.iter().enumerate() {
            if let Some(v) = v {
                present.set(i);
                vals.push(*v);
            }
        }
        let zone = vals
            .iter()
            .filter(|v| !v.is_nan())
            .fold(None, |acc: Option<(f64, f64)>, &v| match acc {
                None => Some((v, v)),
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            });
        NumBlock {
            len: slots.len(),
            n_present: vals.len(),
            encoding: choose_num_encoding(&vals),
            present,
            zone,
        }
    }

    /// Row slots covered by this block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the block covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Validity bitmap (bit set = slot holds a value).
    pub fn present(&self) -> &Bitmap {
        &self.present
    }

    /// Min/max zone map over present non-NaN values.
    pub fn zone(&self) -> Option<(f64, f64)> {
        self.zone
    }

    /// The chosen encoding (exposed for tests and stats).
    pub fn encoding(&self) -> &NumEncoding {
        &self.encoding
    }

    /// Decodes the present values, in row order. Exact: every value round
    /// trips bit-for-bit, including NaN payloads and `-0.0`.
    pub fn decode_present(&self) -> Vec<f64> {
        match &self.encoding {
            NumEncoding::Plain(bits) => bits.iter().map(|&b| f64::from_bits(b)).collect(),
            NumEncoding::Rle(runs) => {
                let mut out = Vec::with_capacity(self.n_present);
                for &(bits, run) in runs {
                    out.extend(std::iter::repeat_n(f64::from_bits(bits), run as usize));
                }
                out
            }
            NumEncoding::Delta {
                first,
                width,
                packed,
            } => {
                let mut out = Vec::with_capacity(self.n_present);
                if self.n_present == 0 {
                    return out;
                }
                let mut acc = *first;
                out.push(acc as f64);
                for d in unpack_bits(packed, *width, self.n_present - 1) {
                    acc = acc.wrapping_add(unzigzag(d));
                    out.push(acc as f64);
                }
                out
            }
        }
    }

    /// Writes the block back into `slots` (one `Option<f64>` per row slot).
    pub fn decode_into(&self, slots: &mut Vec<Option<f64>>) {
        let vals = self.decode_present();
        let mut next = 0usize;
        for i in 0..self.len {
            if self.present.get(i) {
                slots.push(Some(vals[next]));
                next += 1;
            } else {
                slots.push(None);
            }
        }
    }

    /// Encoded payload bytes (values + validity bitmap).
    pub fn bytes_encoded(&self) -> usize {
        let values = match &self.encoding {
            NumEncoding::Plain(bits) => bits.len() * 8,
            NumEncoding::Rle(runs) => runs.len() * 12,
            NumEncoding::Delta { packed, .. } => 9 + packed.len() * 8,
        };
        values + self.present.bytes()
    }

    /// Bytes of the uncompressed row representation (`Option<f64>` slots
    /// modelled as 8 value bytes + 1 validity byte per slot).
    pub fn bytes_plain(&self) -> usize {
        self.len * 9
    }
}

/// `true` when `v` survives `f64 → i64 → f64` bit-exactly (rejects NaN,
/// infinities, fractional values, `-0.0`, and out-of-range magnitudes).
fn is_exact_integral(v: f64) -> bool {
    v.to_bits() == ((v as i64) as f64).to_bits()
}

fn choose_num_encoding(vals: &[f64]) -> NumEncoding {
    let plain_cost = vals.len() * 8;

    // Candidate: RLE over bit patterns.
    let mut runs: Vec<(u64, u32)> = Vec::new();
    for &v in vals {
        let bits = v.to_bits();
        match runs.last_mut() {
            Some((b, run)) if *b == bits && *run < u32::MAX => *run += 1,
            _ => runs.push((bits, 1)),
        }
    }
    let rle_cost = runs.len() * 12;

    // Candidate: delta + zig-zag + bit-pack, integral blocks only.
    let delta = if !vals.is_empty() && vals.iter().all(|&v| is_exact_integral(v)) {
        let ints: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
        let deltas: Vec<i128> = ints
            .windows(2)
            .map(|w| w[1] as i128 - w[0] as i128)
            .collect();
        if deltas
            .iter()
            .all(|&d| d >= i64::MIN as i128 && d <= i64::MAX as i128)
        {
            let zz: Vec<u64> = deltas.iter().map(|&d| zigzag(d as i64)).collect();
            let width = zz.iter().copied().map(bit_width).max().unwrap_or(0);
            let packed = pack_bits(&zz, width);
            let cost = 9 + packed.len() * 8;
            Some((ints[0], width, packed, cost))
        } else {
            None
        }
    } else {
        None
    };

    // Cheapest wins; ties break RLE < Delta < Plain, so selection is a
    // pure function of the block's values.
    let delta_cost = delta.as_ref().map_or(usize::MAX, |d| d.3);
    if rle_cost <= delta_cost && rle_cost <= plain_cost {
        NumEncoding::Rle(runs)
    } else if let Some((first, width, packed, cost)) = delta {
        if cost <= plain_cost {
            return NumEncoding::Delta {
                first,
                width,
                packed,
            };
        }
        NumEncoding::Plain(vals.iter().map(|v| v.to_bits()).collect())
    } else {
        NumEncoding::Plain(vals.iter().map(|v| v.to_bits()).collect())
    }
}

// ---------------------------------------------------------------------------
// Dictionary-code blocks.
// ---------------------------------------------------------------------------

/// How the present dictionary codes of one block are stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeEncoding {
    /// One `u32` code per present value, in row order.
    Plain(Vec<u32>),
    /// Run-length over codes: `(code, run_length)`.
    Rle(Vec<(u32, u32)>),
    /// LSB-first fixed-width bit-packed codes.
    Packed {
        /// Fixed bit width of each packed code.
        width: u8,
        /// Packed payload.
        packed: Vec<u64>,
    },
}

/// One block of a categorical column: validity + encoded codes + zone map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBlock {
    len: usize,
    present: Bitmap,
    n_present: usize,
    encoding: CodeEncoding,
    /// `(min, max)` code range; with a sorted dictionary this is also a
    /// lexicographic label range. `None` when the block is all-null.
    zone: Option<(u32, u32)>,
}

impl CodeBlock {
    /// Encodes one block worth of code slots (at most [`BLOCK_LEN`]).
    pub fn encode(slots: &[Option<u32>]) -> Self {
        assert!(slots.len() <= BLOCK_LEN, "block over-full");
        let mut present = Bitmap::empty(slots.len());
        let mut codes: Vec<u32> = Vec::with_capacity(slots.len());
        for (i, c) in slots.iter().enumerate() {
            if let Some(c) = c {
                present.set(i);
                codes.push(*c);
            }
        }
        let zone = codes
            .iter()
            .fold(None, |acc: Option<(u32, u32)>, &c| match acc {
                None => Some((c, c)),
                Some((lo, hi)) => Some((lo.min(c), hi.max(c))),
            });
        CodeBlock {
            len: slots.len(),
            n_present: codes.len(),
            encoding: choose_code_encoding(&codes),
            present,
            zone,
        }
    }

    /// Row slots covered by this block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the block covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Validity bitmap (bit set = slot holds a code).
    pub fn present(&self) -> &Bitmap {
        &self.present
    }

    /// Min/max zone map over present codes.
    pub fn zone(&self) -> Option<(u32, u32)> {
        self.zone
    }

    /// The chosen encoding (exposed for tests and stats).
    pub fn encoding(&self) -> &CodeEncoding {
        &self.encoding
    }

    /// Decodes the present codes, in row order.
    pub fn decode_present(&self) -> Vec<u32> {
        match &self.encoding {
            CodeEncoding::Plain(codes) => codes.clone(),
            CodeEncoding::Rle(runs) => {
                let mut out = Vec::with_capacity(self.n_present);
                for &(code, run) in runs {
                    out.extend(std::iter::repeat_n(code, run as usize));
                }
                out
            }
            CodeEncoding::Packed { width, packed } => unpack_bits(packed, *width, self.n_present)
                .into_iter()
                .map(|v| v as u32)
                .collect(),
        }
    }

    /// Writes the block back into `slots` (one `Option<u32>` per row slot).
    pub fn decode_into(&self, slots: &mut Vec<Option<u32>>) {
        let codes = self.decode_present();
        let mut next = 0usize;
        for i in 0..self.len {
            if self.present.get(i) {
                slots.push(Some(codes[next]));
                next += 1;
            } else {
                slots.push(None);
            }
        }
    }

    /// Encoded payload bytes (codes + validity bitmap).
    pub fn bytes_encoded(&self) -> usize {
        let values = match &self.encoding {
            CodeEncoding::Plain(codes) => codes.len() * 4,
            CodeEncoding::Rle(runs) => runs.len() * 8,
            CodeEncoding::Packed { packed, .. } => 1 + packed.len() * 8,
        };
        values + self.present.bytes()
    }

    /// Bytes of the uncompressed row representation (4 code bytes + 1
    /// validity byte per slot).
    pub fn bytes_plain(&self) -> usize {
        self.len * 5
    }
}

fn choose_code_encoding(codes: &[u32]) -> CodeEncoding {
    let plain_cost = codes.len() * 4;

    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &c in codes {
        match runs.last_mut() {
            Some((rc, run)) if *rc == c && *run < u32::MAX => *run += 1,
            _ => runs.push((c, 1)),
        }
    }
    let rle_cost = runs.len() * 8;

    let width = codes
        .iter()
        .map(|&c| bit_width(c as u64))
        .max()
        .unwrap_or(0);
    let packed = pack_bits(&codes.iter().map(|&c| c as u64).collect::<Vec<_>>(), width);
    let packed_cost = 1 + packed.len() * 8;

    if rle_cost <= packed_cost && rle_cost <= plain_cost {
        CodeEncoding::Rle(runs)
    } else if packed_cost <= plain_cost {
        CodeEncoding::Packed { width, packed }
    } else {
        CodeEncoding::Plain(codes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(slots: &[Option<f64>]) {
        let block = NumBlock::encode(slots);
        let mut out = Vec::new();
        block.decode_into(&mut out);
        let same = slots
            .iter()
            .zip(&out)
            .all(|(a, b)| a.map(f64::to_bits) == b.map(f64::to_bits));
        assert!(same, "round-trip mismatch: {slots:?} -> {out:?}");
    }

    #[test]
    fn constant_block_picks_rle() {
        let slots = vec![Some(2.5); 100];
        let block = NumBlock::encode(&slots);
        assert!(matches!(block.encoding(), NumEncoding::Rle(_)));
        roundtrip(&slots);
    }

    #[test]
    fn integral_ramp_picks_delta() {
        let slots: Vec<Option<f64>> = (0..200).map(|i| Some(1990.0 + i as f64)).collect();
        let block = NumBlock::encode(&slots);
        assert!(matches!(block.encoding(), NumEncoding::Delta { .. }));
        roundtrip(&slots);
    }

    #[test]
    fn awkward_floats_roundtrip_exactly() {
        let slots = vec![
            Some(f64::NAN),
            Some(-0.0),
            Some(0.0),
            None,
            Some(f64::INFINITY),
            Some(f64::NEG_INFINITY),
            Some(1.0e300),
            Some(-1.0e-300),
            Some(0.1),
            None,
        ];
        roundtrip(&slots);
        // -0.0 and NaN must not be mistaken for integral values.
        assert!(!is_exact_integral(-0.0));
        assert!(!is_exact_integral(f64::NAN));
        assert!(is_exact_integral(0.0));
        assert!(is_exact_integral(-3.0));
        assert!(!is_exact_integral(1.0e300));
    }

    #[test]
    fn zone_map_ignores_nan_and_nulls() {
        let block = NumBlock::encode(&[Some(3.0), None, Some(f64::NAN), Some(-1.0)]);
        assert_eq!(block.zone(), Some((-1.0, 3.0)));
        let allnan = NumBlock::encode(&[Some(f64::NAN), None]);
        assert_eq!(allnan.zone(), None);
    }

    #[test]
    fn extreme_deltas_fall_back_safely() {
        // i64::MIN..MAX style jumps whose deltas overflow i64.
        let slots = vec![
            Some(-9.0e18),
            Some(9.0e18),
            Some(-9.0e18),
            Some(42.0),
            Some(-7.0),
        ];
        roundtrip(&slots);
    }

    #[test]
    fn code_blocks_roundtrip_and_pick_cheap_encodings() {
        let constant: Vec<Option<u32>> = vec![Some(7); 64];
        let b = CodeBlock::encode(&constant);
        assert!(matches!(b.encoding(), CodeEncoding::Rle(_)));
        let mut out = Vec::new();
        b.decode_into(&mut out);
        assert_eq!(out, constant);

        let varied: Vec<Option<u32>> = (0..100)
            .map(|i| if i % 7 == 0 { None } else { Some(i % 13) })
            .collect();
        let b = CodeBlock::encode(&varied);
        let mut out = Vec::new();
        b.decode_into(&mut out);
        assert_eq!(out, varied);
        assert!(b.bytes_encoded() < b.bytes_plain());
        assert_eq!(b.zone(), Some((0, 12)));
    }

    #[test]
    fn packing_handles_all_widths() {
        for width in [0u8, 1, 7, 31, 32, 33, 63, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let vals: Vec<u64> = (0..50)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask)
                .collect();
            assert_eq!(unpack_bits(&pack_bits(&vals, width), width, 50), vals);
        }
    }
}
