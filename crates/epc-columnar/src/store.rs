//! The column store and its row façade.
//!
//! [`ColumnStore::from_dataset`] converts a row-shaped
//! [`epc_model::dataset::Dataset`] into typed columns;
//! [`ColumnStore::materialize_row`] / [`ColumnStore::materialize_dataset`]
//! convert back. The façade contract (gated by `tests/columnar.rs`): a
//! round trip reproduces every cell value bit-for-bit, so checkpoints,
//! golden traces, journals, and artifacts computed from either shape are
//! byte-identical.

use std::sync::Arc;

use epc_model::{AttrId, ColumnData, Dataset, ModelError, Record, Schema, Value};

use crate::column::{CategoricalColumn, NumericColumn};

/// One typed column of a [`ColumnStore`].
#[derive(Debug, Clone, PartialEq)]
pub enum StoreColumn {
    /// Quantitative attribute: compressed blocks + zone maps.
    Numeric(NumericColumn),
    /// Categorical attribute: sorted dictionary + code blocks.
    Categorical(CategoricalColumn),
}

/// Compression and layout accounting for a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of columns.
    pub columns: usize,
    /// Total blocks across all columns.
    pub blocks: usize,
    /// Total distinct labels across all dictionaries.
    pub dict_entries: u64,
    /// Modelled bytes of the uncompressed row representation.
    pub bytes_plain: u64,
    /// Bytes of the encoded columnar representation.
    pub bytes_encoded: u64,
}

/// A columnar snapshot of a dataset: one typed column per attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStore {
    schema: Arc<Schema>,
    columns: Vec<StoreColumn>,
    n_rows: usize,
}

impl ColumnStore {
    /// Converts a row-shaped dataset into columns. Cell values are carried
    /// over bit-exactly; categorical dictionaries are rebuilt in sorted
    /// order (input-order invariant), independent of the dataset's
    /// first-occurrence interning.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let n = dataset.n_rows();
        let columns = dataset
            .schema()
            .iter()
            .map(|(id, _)| match dataset.column(id).map(|c| c.data()) {
                Some(ColumnData::Numeric(slots)) => {
                    StoreColumn::Numeric(NumericColumn::from_slots(slots))
                }
                Some(ColumnData::Categorical(_)) => {
                    let slots: Vec<Option<&str>> = (0..n).map(|r| dataset.cat(r, id)).collect();
                    StoreColumn::Categorical(CategoricalColumn::from_slots(&slots))
                }
                // A schema attribute with no backing column materializes as
                // all-missing, mirroring `Dataset::value`'s fallback.
                None => StoreColumn::Numeric(NumericColumn::from_slots(&vec![None; n])),
            })
            .collect();
        ColumnStore {
            schema: dataset.schema_arc(),
            columns,
            n_rows: n,
        }
    }

    /// The schema shared with the source dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema as a shareable handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The column for an attribute, if the id is in range.
    pub fn column(&self, id: AttrId) -> Option<&StoreColumn> {
        self.columns.get(id.index())
    }

    /// The numeric column for an attribute, if numeric.
    pub fn numeric(&self, id: AttrId) -> Option<&NumericColumn> {
        match self.column(id) {
            Some(StoreColumn::Numeric(c)) => Some(c),
            _ => None,
        }
    }

    /// The categorical column for an attribute, if categorical.
    pub fn categorical(&self, id: AttrId) -> Option<&CategoricalColumn> {
        match self.column(id) {
            Some(StoreColumn::Categorical(c)) => Some(c),
            _ => None,
        }
    }

    /// Rebuilds one row as a record (the row façade's point lookup).
    pub fn materialize_row(&self, row: usize) -> Result<Record, ModelError> {
        let mut record = Record::missing(self.schema.len());
        for (id, _) in self.schema.iter() {
            let value = match self.column(id) {
                Some(StoreColumn::Numeric(c)) => {
                    c.get(row).map(Value::Num).unwrap_or(Value::Missing)
                }
                Some(StoreColumn::Categorical(c)) => {
                    c.get_label(row).map(Value::cat).unwrap_or(Value::Missing)
                }
                None => Value::Missing,
            };
            record.set(id, value)?;
        }
        Ok(record)
    }

    /// Rebuilds the full row-shaped dataset (the row façade's bulk path).
    /// Every cell value round-trips bit-for-bit; the rebuilt dataset's
    /// interning order is its row order, as if ingested fresh.
    pub fn materialize_dataset(&self) -> Result<Dataset, ModelError> {
        let mut dataset = Dataset::new(self.schema_arc());
        // Decode each column once, then stitch rows.
        let decoded: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|col| match col {
                StoreColumn::Numeric(c) => c
                    .to_slots()
                    .into_iter()
                    .map(|v| v.map(Value::Num).unwrap_or(Value::Missing))
                    .collect(),
                StoreColumn::Categorical(c) => c
                    .to_label_slots()
                    .into_iter()
                    .map(|v| v.map(Value::cat).unwrap_or(Value::Missing))
                    .collect(),
            })
            .collect();
        for row in 0..self.n_rows {
            let mut record = Record::missing(self.schema.len());
            for (col, values) in decoded.iter().enumerate() {
                record.set(AttrId(col as u32), values[row].clone())?;
            }
            dataset.push_record(record)?;
        }
        Ok(dataset)
    }

    /// Compression and layout accounting across all columns.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            columns: self.columns.len(),
            ..StoreStats::default()
        };
        for col in &self.columns {
            match col {
                StoreColumn::Numeric(c) => {
                    stats.blocks += c.blocks().len();
                    stats.bytes_plain += c.bytes_plain() as u64;
                    stats.bytes_encoded += c.bytes_encoded() as u64;
                }
                StoreColumn::Categorical(c) => {
                    stats.blocks += c.blocks().len();
                    stats.dict_entries += c.dict().len() as u64;
                    stats.bytes_plain += c.bytes_plain() as u64;
                    stats.bytes_encoded += c.bytes_encoded() as u64;
                }
            }
        }
        stats
    }
}

/// Extension hook: `dataset.to_columns()` without `epc-model` having to
/// depend on this crate.
pub trait DatasetColumnarExt {
    /// Converts this dataset into a [`ColumnStore`].
    fn to_columns(&self) -> ColumnStore;
}

impl DatasetColumnarExt for Dataset {
    fn to_columns(&self) -> ColumnStore {
        ColumnStore::from_dataset(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_model::schema::standard_epc_schema;

    fn tiny_dataset() -> Dataset {
        let schema = standard_epc_schema();
        let mut ds = Dataset::new(Arc::clone(&schema));
        for i in 0..5u32 {
            let mut rec = ds.empty_record();
            for (id, def) in schema.iter() {
                if def.kind.is_numeric() {
                    if i != 2 {
                        rec.set(id, Value::Num(f64::from(i) * 1.5 + f64::from(id.0)))
                            .unwrap();
                    }
                } else if i != 3 {
                    rec.set(id, Value::cat(format!("label-{}", (i + id.0) % 3)))
                        .unwrap();
                }
            }
            ds.push_record(rec).unwrap();
        }
        ds
    }

    #[test]
    fn facade_roundtrip_preserves_every_cell() {
        let ds = tiny_dataset();
        let store = ds.to_columns();
        assert_eq!(store.n_rows(), ds.n_rows());
        let back = store.materialize_dataset().unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        for row in 0..ds.n_rows() {
            for (id, _) in ds.schema().iter() {
                assert_eq!(
                    ds.num(row, id).map(f64::to_bits),
                    back.num(row, id).map(f64::to_bits)
                );
                assert_eq!(ds.cat(row, id), back.cat(row, id));
            }
        }
    }

    #[test]
    fn materialize_row_matches_dataset_values() {
        let ds = tiny_dataset();
        let store = ds.to_columns();
        for row in 0..ds.n_rows() {
            let rec = store.materialize_row(row).unwrap();
            for (id, _) in ds.schema().iter() {
                assert_eq!(rec.get(id), Some(&ds.value(row, id)));
            }
        }
    }

    #[test]
    fn stats_reflect_compression() {
        let ds = tiny_dataset();
        let stats = ds.to_columns().stats();
        assert_eq!(stats.columns, ds.schema().len());
        assert!(stats.blocks >= stats.columns);
        assert!(stats.dict_entries > 0);
        assert!(stats.bytes_encoded > 0 && stats.bytes_plain > 0);
    }
}
