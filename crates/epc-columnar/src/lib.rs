//! # epc-columnar
//!
//! The columnar storage engine of INDICE (ROADMAP item 1): per-attribute
//! typed columns behind the `epc-model` row façade.
//!
//! The paper's EPC collections carry 89 categorical and 43 quantitative
//! attributes per certificate; iterating them row-shaped wastes an order
//! of magnitude of memory and cache on the hot loops (predicate scans,
//! group-bys, Levenshtein cleaning, K-means / DBSCAN distance kernels).
//! This crate stores each attribute separately:
//!
//! * **Categoricals** — a [`dict::SortedDict`] (stable `u32` ids assigned
//!   in sorted label order, so encodings are *input-order invariant*) plus
//!   RLE / bit-packed code blocks with per-block min/max code zone maps.
//! * **Numerics** — per-block encodings chosen by byte cost (RLE over
//!   IEEE-754 bit patterns, delta + zig-zag + bit-pack for integral
//!   blocks, plain fallback), null bitmaps, and per-block min/max zone
//!   maps ([`block`]).
//! * **Kernels** — filter-to-selection-bitmap with zone-map block
//!   skipping, and dense gathers for distance loops ([`kernels`]).
//!
//! The row façade ([`store::ColumnStore::materialize_dataset`] /
//! [`store::DatasetColumnarExt::to_columns`]) round-trips every cell
//! value bit-for-bit, so checkpoints, golden traces, journals, and
//! dashboard artifacts are byte-identical whichever engine produced them
//! — the invariant gated by the differential harness in
//! `tests/columnar.rs` and `./ci.sh columnar`.
//!
//! Determinism: this crate uses no clocks, no OS entropy, no HashMap
//! iteration — every structure and kernel is a pure function of its
//! input values (not even their order, for dictionaries).

pub mod bitmap;
pub mod block;
pub mod column;
pub mod dict;
pub mod kernels;
pub mod store;

pub use bitmap::Bitmap;
pub use block::{CodeBlock, CodeEncoding, NumBlock, NumEncoding, BLOCK_LEN};
pub use column::{CategoricalColumn, NumericColumn};
pub use dict::SortedDict;
pub use kernels::ScanStats;
pub use store::{ColumnStore, DatasetColumnarExt, StoreColumn, StoreStats};

// Re-exported so downstream crates (e.g. `epc-mining`) can name attribute
// ids without a direct `epc-model` dependency.
pub use epc_model::AttrId;
