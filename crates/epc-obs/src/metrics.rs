//! Deterministic metrics registry.
//!
//! Three instrument kinds, all keyed by name in `BTreeMap`s so every
//! exposition is in one total order regardless of registration order:
//!
//! - **counters** — monotone `u64` sums (`inc`),
//! - **gauges** — last-written `i64` levels (`set_gauge`),
//! - **histograms** — fixed-bucket `u64` distributions (`observe`).
//!
//! Values are pure functions of the observations fed in: the registry
//! never reads a clock or any other ambient state, so two runs over the
//! same data expose byte-identical text. Durations may be *observed into*
//! a registry, but only from values sampled through
//! [`epc_runtime::Clock`] by the caller.
//!
//! [`MetricsRegistry::merge`] folds a shard's snapshot into an aggregate
//! (counters add, histograms add bucket-wise, gauges last-write-wins),
//! which is what makes per-shard collection equal sequential collection —
//! the property pinned by this crate's proptests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

/// Fixed-bucket histogram over `u64` observations.
///
/// `bounds` are inclusive upper bucket edges; one implicit `+Inf` bucket
/// catches overflow, so `counts.len() == bounds.len() + 1`. Two
/// histograms merge only when their bounds are identical — merging is
/// then a bucket-wise add, which is associative, commutative, and
/// conserves the total observation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    total: u64,
}

impl Histogram {
    /// Empty histogram with the given inclusive upper bucket edges
    /// (sorted and deduplicated; an implicit `+Inf` bucket is appended).
    pub fn new(bounds: &[u64]) -> Self {
        let mut edges = bounds.to_vec();
        edges.sort_unstable();
        edges.dedup();
        let n = edges.len();
        Histogram {
            bounds: edges,
            counts: vec![0; n + 1],
            sum: 0,
            total: 0,
        }
    }

    /// Rebuilds a histogram from previously exposed parts (the JSON
    /// shape's `bounds`/`counts`/`sum`/`count`), for merging snapshots
    /// that round-tripped through disk. Returns `None` when the parts are
    /// inconsistent: unsorted/duplicated bounds, a counts length other
    /// than `bounds.len() + 1`, or a total that disagrees with the bucket
    /// counts.
    pub fn from_parts(bounds: Vec<u64>, counts: Vec<u64>, sum: u64, count: u64) -> Option<Self> {
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let mut total = 0u64;
        for &c in &counts {
            total = total.checked_add(c)?;
        }
        if total != count {
            return None;
        }
        Some(Histogram {
            bounds,
            counts,
            sum,
            total,
        })
    }

    /// Records one observation into the first bucket whose edge admits it.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(self.bounds.len());
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.sum = self.sum.saturating_add(value);
        self.total += 1;
    }

    /// Adds `other`'s buckets into `self`. Returns `false` (and leaves
    /// `self` untouched) when the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.total += other.total;
        true
    }

    /// Inclusive upper bucket edges (excluding the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket observation counts; the last entry is the `+Inf` bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }
}

/// Point-in-time copy of a registry's state; the unit of [`merge`].
///
/// [`merge`]: MetricsRegistry::merge
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone sums.
    pub counters: BTreeMap<String, u64>,
    /// Last-written levels.
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket distributions.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Shared-reference metrics sink: interior mutability so pipeline stages
/// can record through a plain `&MetricsRegistry`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Metric values are plain data, so a poisoned lock (a panicking
    /// stage mid-record) cannot leave them in a torn state — recover the
    /// guard instead of propagating the poison.
    fn lock(&self) -> MutexGuard<'_, MetricsSnapshot> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into the named histogram, created with `bounds` on
    /// first use (later calls keep the original bucket layout).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    /// Copy of a histogram, if ever observed into.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Copies out the full registry state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().clone()
    }

    /// Folds a shard snapshot into this registry: counters add,
    /// histograms add bucket-wise (a layout mismatch is recorded under
    /// the `obs_merge_bucket_mismatch` counter instead of guessing),
    /// gauges are last-write-wins.
    pub fn merge(&self, shard: &MetricsSnapshot) {
        let mut inner = self.lock();
        for (name, value) in &shard.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &shard.gauges {
            inner.gauges.insert(name.clone(), *value);
        }
        let mut mismatches = 0u64;
        for (name, theirs) in &shard.histograms {
            match inner.histograms.get_mut(name) {
                Some(mine) => {
                    if !mine.merge(theirs) {
                        mismatches += 1;
                    }
                }
                None => {
                    inner.histograms.insert(name.clone(), theirs.clone());
                }
            }
        }
        if mismatches > 0 {
            *inner
                .counters
                .entry("obs_merge_bucket_mismatch".to_owned())
                .or_insert(0) += mismatches;
        }
    }

    /// Prometheus-style text exposition, in total (sorted) name order.
    pub fn expose_text(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &inner.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, hist) in &inner.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (idx, count) in hist.counts.iter().enumerate() {
                cumulative += count;
                let edge = hist
                    .bounds
                    .get(idx)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_owned());
                let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", hist.sum, hist.total);
        }
        out
    }

    /// JSON exposition (hand-rolled codec — this crate is std-only).
    /// Shape: `{"counters":{...},"gauges":{...},"histograms":{name:
    /// {"bounds":[...],"counts":[...],"sum":n,"count":n}}}`.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("{\n  \"counters\": {");
        append_map(&mut out, &inner.counters, |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        append_map(&mut out, &inner.gauges, |o, v| {
            let _ = write!(o, "{v}");
        });
        out.push_str("},\n  \"histograms\": {");
        append_map(&mut out, &inner.histograms, |o, h| {
            o.push_str("{\"bounds\": [");
            push_joined(o, h.bounds.iter());
            o.push_str("], \"counts\": [");
            push_joined(o, h.counts.iter());
            let _ = write!(o, "], \"sum\": {}, \"count\": {}}}", h.sum, h.total);
        });
        out.push_str("}\n}\n");
        out
    }
}

/// Maps characters outside `[A-Za-z0-9_:]` to `_` (Prometheus name rule).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn append_map<V>(out: &mut String, map: &BTreeMap<String, V>, emit: impl Fn(&mut String, &V)) {
    let mut first = true;
    for (key, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": ", escape_json(key));
        emit(out, value);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

fn push_joined<T: std::fmt::Display>(out: &mut String, items: impl Iterator<Item = T>) {
    let mut first = true;
    for item in items {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{item}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 10 + 11 + 100 + 101 + 5000);
    }

    #[test]
    fn from_parts_round_trips_and_rejects_garbage() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1, 50, 999] {
            h.observe(v);
        }
        let rebuilt =
            Histogram::from_parts(h.bounds().to_vec(), h.counts().to_vec(), h.sum(), h.count())
                .expect("round trip");
        assert_eq!(rebuilt, h);
        assert!(Histogram::from_parts(vec![10], vec![1], 0, 1).is_none());
        assert!(Histogram::from_parts(vec![10, 5], vec![0, 0, 0], 0, 0).is_none());
        assert!(Histogram::from_parts(vec![10], vec![1, 1], 0, 3).is_none());
    }

    #[test]
    fn histogram_merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[10]);
        a.observe(3);
        let mut b = Histogram::new(&[10]);
        b.observe(30);
        assert!(a.merge(&b));
        assert_eq!(a.counts(), &[1, 1]);
        let other = Histogram::new(&[20]);
        assert!(!a.merge(&other));
        assert_eq!(a.count(), 2, "failed merge must not mutate");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.inc("records", 3);
        reg.inc("records", 4);
        reg.set_gauge("chosen_k", 5);
        reg.observe("latency", &[1, 10], 7);
        assert_eq!(reg.counter("records"), 7);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("chosen_k"), Some(5));
        let hist = reg.histogram("latency").expect("observed");
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let total = MetricsRegistry::new();
        let shard_a = MetricsRegistry::new();
        let shard_b = MetricsRegistry::new();
        shard_a.inc("n", 2);
        shard_b.inc("n", 5);
        shard_a.observe("h", &[10], 3);
        shard_b.observe("h", &[10], 30);
        total.merge(&shard_a.snapshot());
        total.merge(&shard_b.snapshot());
        assert_eq!(total.counter("n"), 7);
        let hist = total.histogram("h").expect("merged");
        assert_eq!(hist.counts(), &[1, 1]);
    }

    #[test]
    fn merge_records_bucket_mismatch() {
        let total = MetricsRegistry::new();
        total.observe("h", &[10], 1);
        let shard = MetricsRegistry::new();
        shard.observe("h", &[99], 1);
        total.merge(&shard.snapshot());
        assert_eq!(total.counter("obs_merge_bucket_mismatch"), 1);
    }

    #[test]
    fn text_exposition_is_sorted_and_cumulative() {
        let reg = MetricsRegistry::new();
        reg.inc("zulu", 1);
        reg.inc("alpha", 2);
        reg.observe("lat.ms", &[10], 3);
        reg.observe("lat.ms", &[10], 300);
        let text = reg.expose_text();
        let alpha = text.find("alpha 2").expect("alpha");
        let zulu = text.find("zulu 1").expect("zulu");
        assert!(alpha < zulu, "sorted order:\n{text}");
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ms_count 2"), "{text}");
    }

    #[test]
    fn json_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.inc("a", 1);
        reg.set_gauge("g", -2);
        reg.observe("h", &[5], 9);
        let json = reg.to_json();
        assert!(json.contains("\"a\": 1"), "{json}");
        assert!(json.contains("\"g\": -2"), "{json}");
        assert!(
            json.contains("{\"bounds\": [5], \"counts\": [0, 1], \"sum\": 9, \"count\": 1}"),
            "{json}"
        );
    }

    #[test]
    fn escape_json_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
