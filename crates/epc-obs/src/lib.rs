//! # epc-obs
//!
//! Observability substrate for the INDICE engine: a deterministic
//! [`MetricsRegistry`] (counters, gauges, fixed-bucket histograms with
//! Prometheus-style text and JSON exposition) plus structured span
//! tracing ([`Obs`], [`SpanGuard`], [`Tracer`]) whose logical event
//! stream is a pure function of the input data.
//!
//! ## Determinism contract
//!
//! The paper's dashboards must be reproducible; so must the engine's
//! self-description. Two rules make the trace a regression oracle rather
//! than a log:
//!
//! 1. **Orchestrator-only emission.** Events and metrics are recorded
//!    only from the single orchestrating thread of control. Parallel
//!    kernels (`par_map` workers) never touch `Obs`; they return stats
//!    which the orchestrator records after the join. Event *order* is
//!    therefore independent of `INDICE_THREADS`.
//! 2. **Injected time.** Durations are read exclusively through
//!    [`epc_runtime::Clock`], exactly once per event. Every event splits
//!    into a *logical* part (dense `seq`, name, kind, data fields) and
//!    the single `wall_ms` sample. [`Tracer::logical_jsonl`] projects
//!    the wall sample away; under a [`epc_runtime::ManualClock`] even
//!    the full stream is bitwise identical across thread budgets.
//!
//! The lint suite's D2 rule (no ambient wall-clock reads) covers this
//! crate, which is why no `std::time` type appears here at all.

mod metrics;
mod trace;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use trace::{EventKind, FieldValue, Obs, SpanGuard, TraceEvent, Tracer};
