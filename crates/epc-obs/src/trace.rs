//! Structured span tracing with a hard deterministic/wall-clock split.
//!
//! Every [`TraceEvent`] carries a **logical sequence number** plus data
//! fields (record counts, outcome tags, …) — the *logical stream* — and a
//! `wall_ms` timestamp sampled through the injectable
//! [`epc_runtime::Clock`]. The logical stream is a pure function of the
//! input data, because events are only ever emitted from orchestrator
//! code (never from inside `par_map` workers) and the clock is sampled
//! exactly once per event. Under a [`epc_runtime::ManualClock`] the
//! *full* stream — timestamps included — is bitwise identical for any
//! thread budget; under a wall clock only `wall_ms` varies, which is why
//! [`Tracer::logical_jsonl`] projects it away for golden-trace tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

use epc_runtime::Clock;

use crate::metrics::{escape_json, MetricsRegistry};

/// What a trace line records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (stage or sub-phase entry).
    SpanBegin,
    /// A span closed; carries the outcome tag and summary fields.
    SpanEnd,
    /// A single instantaneous observation (e.g. one K-means round).
    Point,
}

impl EventKind {
    /// Stable wire name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned count.
    U64(u64),
    /// Real-valued measurement; encoded via `{:?}` so the decimal text
    /// round-trips the exact bit pattern.
    F64(f64),
    /// Tag or label.
    Str(String),
}

impl FieldValue {
    fn encode(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    let _ = write!(out, "\"{v:?}\"");
                }
            }
            FieldValue::Str(v) => {
                let _ = write!(out, "\"{}\"", escape_json(v));
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One line of the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Logical sequence number, dense from zero in emission order.
    pub seq: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Span or point name (e.g. `stage:analytics`, `kmeans:round`).
    pub name: String,
    /// Clock sample at emission — the only non-logical field.
    pub wall_ms: u64,
    /// Data fields, in total (sorted) key order.
    pub fields: BTreeMap<String, FieldValue>,
}

impl TraceEvent {
    fn encode(&self, out: &mut String, with_wall: bool) {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"kind\": \"{}\", \"name\": \"{}\"",
            self.seq,
            self.kind.as_str(),
            escape_json(&self.name)
        );
        if with_wall {
            let _ = write!(out, ", \"wall_ms\": {}", self.wall_ms);
        }
        for (key, value) in &self.fields {
            let _ = write!(out, ", \"{}\": ", escape_json(key));
            value.encode(out);
        }
        out.push('}');
    }

    /// Full JSON encoding, `wall_ms` included.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.encode(&mut out, true);
        out
    }

    /// Logical projection: identical to [`TraceEvent::to_json`] minus the
    /// `wall_ms` field. This is the representation golden tests hash.
    pub fn to_logical_json(&self) -> String {
        let mut out = String::new();
        self.encode(&mut out, false);
        out
    }
}

/// Append-only in-memory event log; written out as `trace.jsonl`.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// Empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// See [`MetricsRegistry`] for the poison-recovery rationale.
    fn lock(&self) -> MutexGuard<'_, Vec<TraceEvent>> {
        self.events.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn record(
        &self,
        kind: EventKind,
        name: &str,
        wall_ms: u64,
        fields: &[(&str, FieldValue)],
    ) -> u64 {
        let mut events = self.lock();
        let seq = events.len() as u64;
        events.push(TraceEvent {
            seq,
            kind,
            name: name.to_owned(),
            wall_ms,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
        seq
    }

    /// Copy of the recorded events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Full JSONL encoding (one event per line, `wall_ms` included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.lock().iter() {
            event.encode(&mut out, true);
            out.push('\n');
        }
        out
    }

    /// Logical JSONL projection (no `wall_ms`): bitwise identical across
    /// thread budgets, and fully identical to a `ManualClock` golden.
    pub fn logical_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.lock().iter() {
            event.encode(&mut out, false);
            out.push('\n');
        }
        out
    }
}

/// The observability bundle handed through the pipeline: a metrics
/// registry, a tracer, and the *single* clock both read time through.
///
/// Determinism contract: methods on `Obs` must only be called from
/// orchestrator code — one logical thread of control — never from inside
/// data-parallel workers. Kernels return stats; the orchestrator records
/// them. That keeps the event order and the per-event clock-sample count
/// independent of the thread budget.
pub struct Obs<'a> {
    metrics: MetricsRegistry,
    tracer: Tracer,
    clock: &'a dyn Clock,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.metrics)
            .field("tracer", &self.tracer)
            .finish_non_exhaustive()
    }
}

impl<'a> Obs<'a> {
    /// Fresh bundle reading time only through `clock`.
    pub fn new(clock: &'a dyn Clock) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(),
            clock,
        }
    }

    /// The injected time source, for sharing with e.g. stage deadlines.
    pub fn clock(&self) -> &'a dyn Clock {
        self.clock
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The trace event log.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Emits a point event (one clock sample).
    pub fn point(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.tracer
            .record(EventKind::Point, name, self.clock.now_ms(), fields);
    }

    /// Opens a span: emits the begin event (one clock sample) and returns
    /// a guard whose [`SpanGuard::finish`] emits the matching end event.
    pub fn span(&self, name: &str) -> SpanGuard<'_, 'a> {
        let begin_ms = self.clock.now_ms();
        self.tracer
            .record(EventKind::SpanBegin, name, begin_ms, &[]);
        SpanGuard {
            obs: self,
            name: name.to_owned(),
            begin_ms,
            closed: false,
        }
    }
}

/// Open span handle. Prefer closing explicitly via [`SpanGuard::finish`]
/// with an outcome tag; dropping the guard (e.g. on an early `?` return)
/// still emits the end event, tagged `outcome="dropped"`.
pub struct SpanGuard<'o, 'c> {
    obs: &'o Obs<'c>,
    name: String,
    begin_ms: u64,
    closed: bool,
}

impl std::fmt::Debug for SpanGuard<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("begin_ms", &self.begin_ms)
            .field("closed", &self.closed)
            .finish_non_exhaustive()
    }
}

impl SpanGuard<'_, '_> {
    fn emit_end(&mut self, outcome: &str, fields: &[(&str, FieldValue)]) {
        self.closed = true;
        let now_ms = self.obs.clock().now_ms();
        let mut all: Vec<(&str, FieldValue)> = Vec::with_capacity(fields.len() + 2);
        all.push(("outcome", outcome.into()));
        all.push(("span_ms", now_ms.saturating_sub(self.begin_ms).into()));
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        self.obs
            .tracer
            .record(EventKind::SpanEnd, &self.name, now_ms, &all);
    }

    /// Closes the span with an outcome tag and summary fields
    /// (one clock sample).
    pub fn finish(mut self, outcome: &str, fields: &[(&str, FieldValue)]) {
        self.emit_end(outcome, fields);
    }
}

impl Drop for SpanGuard<'_, '_> {
    fn drop(&mut self) {
        if !self.closed {
            self.emit_end("dropped", &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_runtime::ManualClock;

    #[test]
    fn spans_emit_paired_events_with_dense_seq() {
        let clock = ManualClock::advancing(5);
        let obs = Obs::new(&clock);
        let span = obs.span("stage:preprocess");
        obs.point(
            "kmeans:round",
            &[("round", 0u64.into()), ("inertia", 1.5.into())],
        );
        span.finish("ok", &[("records_out", 42u64.into())]);

        let events = obs.tracer().events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, EventKind::SpanBegin);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert_eq!(
            events[2].fields.get("outcome"),
            Some(&FieldValue::Str("ok".to_owned()))
        );
        // advancing(5): begin=0, point=5, end=10 → span_ms = 10.
        assert_eq!(events[2].fields.get("span_ms"), Some(&FieldValue::U64(10)));
    }

    #[test]
    fn dropped_span_is_tagged() {
        let clock = ManualClock::frozen();
        let obs = Obs::new(&clock);
        {
            let _span = obs.span("stage:analytics");
        }
        let events = obs.tracer().events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].fields.get("outcome"),
            Some(&FieldValue::Str("dropped".to_owned()))
        );
    }

    #[test]
    fn logical_projection_excludes_wall_ms() {
        let clock = ManualClock::advancing(1000);
        let obs = Obs::new(&clock);
        obs.point("p", &[("n", 1u64.into())]);
        let full = obs.tracer().to_jsonl();
        let logical = obs.tracer().logical_jsonl();
        assert!(full.contains("\"wall_ms\""), "{full}");
        assert!(!logical.contains("\"wall_ms\""), "{logical}");
        assert!(logical.contains("\"seq\": 0"), "{logical}");
        assert!(logical.contains("\"n\": 1"), "{logical}");
    }

    #[test]
    fn f64_fields_round_trip_text() {
        let clock = ManualClock::frozen();
        let obs = Obs::new(&clock);
        obs.point("p", &[("x", 0.1f64.into()), ("bad", f64::NAN.into())]);
        let line = obs.tracer().to_jsonl();
        assert!(line.contains("\"x\": 0.1"), "{line}");
        assert!(line.contains("\"bad\": \"NaN\""), "{line}");
    }
}
