//! Property tests for the metrics registry, mirroring the epc-runtime
//! determinism proptests: histogram merge is associative and commutative
//! and conserves bucket counts; counter aggregation across arbitrary
//! shard splits equals the sequential sum.
// Test code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

const BOUNDS: [u64; 4] = [10, 100, 1_000, 10_000];

fn filled(values: &[u64]) -> Histogram {
    let mut h = Histogram::new(&BOUNDS);
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..100_000, 0..64),
        b in prop::collection::vec(0u64..100_000, 0..64),
    ) {
        let mut ab = filled(&a);
        prop_assert!(ab.merge(&filled(&b)));
        let mut ba = filled(&b);
        prop_assert!(ba.merge(&filled(&a)));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..100_000, 0..64),
        b in prop::collection::vec(0u64..100_000, 0..64),
        c in prop::collection::vec(0u64..100_000, 0..64),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = filled(&a);
        prop_assert!(left.merge(&filled(&b)));
        prop_assert!(left.merge(&filled(&c)));
        // a ⊕ (b ⊕ c)
        let mut bc = filled(&b);
        prop_assert!(bc.merge(&filled(&c)));
        let mut right = filled(&a);
        prop_assert!(right.merge(&bc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_conserves_counts(
        a in prop::collection::vec(0u64..100_000, 0..64),
        b in prop::collection::vec(0u64..100_000, 0..64),
    ) {
        let mut merged = filled(&a);
        prop_assert!(merged.merge(&filled(&b)));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(
            merged.counts().iter().sum::<u64>(),
            (a.len() + b.len()) as u64,
            "every observation lands in exactly one bucket"
        );
        let direct: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, filled(&direct), "merge equals re-observation");
    }

    #[test]
    fn sharded_counters_equal_sequential_sum(
        increments in prop::collection::vec((0usize..4, 0u64..1_000), 0..128),
        n_shards in 1usize..5,
    ) {
        let names = ["a", "b", "c", "d"];
        // Sequential reference: one registry sees every increment.
        let sequential = MetricsRegistry::new();
        for &(which, by) in &increments {
            sequential.inc(names[which], by);
        }
        // Sharded: increments split round-robin across shards (the split
        // is arbitrary — any partition must aggregate to the same sums),
        // then folded into one aggregate.
        let shards: Vec<MetricsRegistry> =
            (0..n_shards).map(|_| MetricsRegistry::new()).collect();
        for (i, &(which, by)) in increments.iter().enumerate() {
            shards[i % n_shards].inc(names[which], by);
        }
        let aggregate = MetricsRegistry::new();
        for shard in &shards {
            aggregate.merge(&shard.snapshot());
        }
        prop_assert_eq!(aggregate.snapshot(), sequential.snapshot());
    }

    #[test]
    fn merge_conserves_mixed_metrics_over_any_partition_in_any_order(
        // Each event carries its own shard slot: the partition is
        // arbitrary, not round-robin — skewed and empty shards included.
        events in prop::collection::vec(
            (0usize..6, 0usize..4, 1u64..1_000, 0u64..100_000),
            0..128,
        ),
        n_shards in 1usize..6,
        // Random sort keys induce an arbitrary permutation of the fold
        // order (argsort; ties break by index, still covering all orders).
        order_keys in prop::collection::vec(0u64..1_000_000, 6),
    ) {
        let mut order: Vec<usize> = (0..6).collect();
        order.sort_by_key(|&i| (order_keys[i], i));
        let names = ["a", "b", "c", "d"];
        let sequential = MetricsRegistry::new();
        for &(_, which, by, v) in &events {
            sequential.inc(names[which], by);
            sequential.observe(names[which], &BOUNDS, v);
        }
        let shards: Vec<MetricsRegistry> =
            (0..n_shards).map(|_| MetricsRegistry::new()).collect();
        for &(slot, which, by, v) in &events {
            let shard = &shards[slot % n_shards];
            shard.inc(names[which], by);
            shard.observe(names[which], &BOUNDS, v);
        }
        // Fold the shards in an arbitrary permutation: the aggregate
        // must not depend on merge order.
        let aggregate = MetricsRegistry::new();
        for &slot in order.iter().filter(|&&s| s < n_shards) {
            aggregate.merge(&shards[slot].snapshot());
        }
        let merged = aggregate.snapshot();
        prop_assert_eq!(&merged, &sequential.snapshot());
        // Conservation, stated directly: every increment and every
        // observation is accounted for exactly once.
        let total_incs: u64 = events.iter().map(|&(_, _, by, _)| by).sum();
        prop_assert_eq!(merged.counters.values().sum::<u64>(), total_incs);
        let total_obs: u64 = merged
            .histograms
            .values()
            .map(|h| h.count())
            .sum();
        prop_assert_eq!(total_obs, events.len() as u64);
    }

    #[test]
    fn merge_is_additive_not_idempotent(
        events in prop::collection::vec((0usize..4, 1u64..1_000), 1..64),
    ) {
        // Double-merging a shard double-counts: merge is a sum, so a
        // coordinator must fold each shard exactly once — this pins the
        // contract the generation/fleet aggregators rely on.
        let names = ["a", "b", "c", "d"];
        let shard = MetricsRegistry::new();
        for &(which, by) in &events {
            shard.inc(names[which], by);
        }
        let aggregate = MetricsRegistry::new();
        aggregate.merge(&shard.snapshot());
        aggregate.merge(&shard.snapshot());
        let total: u64 = events.iter().map(|&(_, by)| by).sum();
        prop_assert_eq!(
            aggregate.snapshot().counters.values().sum::<u64>(),
            2 * total
        );
    }

    #[test]
    fn sharded_histograms_equal_sequential(
        values in prop::collection::vec(0u64..100_000, 0..128),
        n_shards in 1usize..5,
    ) {
        let sequential = MetricsRegistry::new();
        for &v in &values {
            sequential.observe("h", &BOUNDS, v);
        }
        let shards: Vec<MetricsRegistry> =
            (0..n_shards).map(|_| MetricsRegistry::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % n_shards].observe("h", &BOUNDS, v);
        }
        let aggregate = MetricsRegistry::new();
        for shard in &shards {
            aggregate.merge(&shard.snapshot());
        }
        prop_assert_eq!(aggregate.snapshot(), sequential.snapshot());
    }
}
