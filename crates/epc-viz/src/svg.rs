//! A minimal SVG scene builder: enough primitives for maps, plots and
//! legends, with proper text escaping, and no dependencies.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDocument {
    width: f64,
    height: f64,
    body: String,
    n_elements: usize,
}

impl SvgDocument {
    /// A document with the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDocument {
            width,
            height,
            body: String::new(),
            n_elements: 0,
        }
    }

    /// Document width in px.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in px.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of elements appended so far.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// Appends a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" stroke="{stroke}"/>"#
        );
        self.n_elements += 1;
    }

    /// Appends a circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}" stroke="{stroke}"/>"#
        );
        self.n_elements += 1;
    }

    /// Appends a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
        self.n_elements += 1;
    }

    /// Appends a closed polygon from `(x, y)` vertices.
    pub fn polygon(&mut self, points: &[(f64, f64)], fill: &str, stroke: &str, opacity: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polygon points="{}" fill="{fill}" stroke="{stroke}" fill-opacity="{opacity:.2}"/>"#,
            pts.join(" ")
        );
        self.n_elements += 1;
    }

    /// Appends text anchored at `(x, y)`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content)
        );
        self.n_elements += 1;
    }

    /// Appends text with an explicit fill colour.
    pub fn text_colored(
        &mut self,
        x: f64,
        y: f64,
        size: f64,
        anchor: &str,
        fill: &str,
        content: &str,
    ) {
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}" fill="{fill}">{}</text>"#,
            escape(content)
        );
        self.n_elements += 1;
    }

    /// Appends a raw, pre-built SVG fragment (caller is responsible for
    /// well-formedness; text inside must already be escaped).
    pub fn raw(&mut self, fragment: &str) {
        self.body.push_str(fragment);
        self.body.push('\n');
        self.n_elements += 1;
    }

    /// Renders the complete document.
    pub fn render(&self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_envelope() {
        let doc = SvgDocument::new(640.0, 480.0);
        let svg = doc.render();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("width=\"640\""));
        assert!(svg.contains("viewBox=\"0 0 640 480\""));
    }

    #[test]
    fn elements_are_counted_and_present() {
        let mut doc = SvgDocument::new(100.0, 100.0);
        doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", "none");
        doc.circle(50.0, 50.0, 5.0, "#00ff00", "black");
        doc.line(0.0, 0.0, 100.0, 100.0, "#000", 1.0);
        doc.polygon(&[(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)], "#00f", "none", 0.6);
        doc.text(10.0, 20.0, 12.0, "start", "hello");
        assert_eq!(doc.n_elements(), 5);
        let svg = doc.render();
        for tag in ["<rect", "<circle", "<line", "<polygon", "<text"] {
            assert!(svg.contains(tag), "missing {tag}");
        }
        assert!(svg.contains("hello"));
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDocument::new(10.0, 10.0);
        doc.text(0.0, 0.0, 10.0, "start", "a < b & \"c\"");
        let svg = doc.render();
        assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn escape_covers_all_specials() {
        assert_eq!(escape("&<>\"'"), "&amp;&lt;&gt;&quot;&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn coordinates_are_rounded_to_two_decimals() {
        let mut doc = SvgDocument::new(10.0, 10.0);
        doc.circle(1.23456, 7.89123, 0.5, "#000", "none");
        let svg = doc.render();
        assert!(svg.contains("cx=\"1.23\""));
        assert!(svg.contains("cy=\"7.89\""));
    }

    #[test]
    fn raw_fragment_passthrough() {
        let mut doc = SvgDocument::new(10.0, 10.0);
        doc.raw("<g id=\"layer\"></g>");
        assert!(doc.render().contains("<g id=\"layer\"></g>"));
    }
}
