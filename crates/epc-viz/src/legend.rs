//! Colour-bar legends shared by the map renderers.

use crate::color::ColorRamp;
use crate::scale::LinearScale;
use crate::svg::SvgDocument;

/// Draws a horizontal colour-bar legend with min/max tick labels at
/// `(x, y)`, returning the height consumed.
#[allow(clippy::too_many_arguments)] // a legend really has this many knobs
pub fn draw_legend(
    doc: &mut SvgDocument,
    ramp: &ColorRamp,
    lo: f64,
    hi: f64,
    label: &str,
    x: f64,
    y: f64,
    width: f64,
) -> f64 {
    const BAR_H: f64 = 12.0;
    const STEPS: usize = 24;
    doc.text(x, y, 11.0, "start", label);
    let bar_y = y + 6.0;
    let step_w = width / STEPS as f64;
    for i in 0..STEPS {
        let t = (i as f64 + 0.5) / STEPS as f64;
        doc.rect(
            x + i as f64 * step_w,
            bar_y,
            step_w + 0.5,
            BAR_H,
            &ramp.sample(t).hex(),
            "none",
        );
    }
    doc.rect(x, bar_y, width, BAR_H, "none", "#555555");
    let scale = LinearScale::new((lo, hi), (x, x + width));
    for tick in scale.ticks(4) {
        let tx = scale.map(tick);
        doc.line(tx, bar_y + BAR_H, tx, bar_y + BAR_H + 3.0, "#555555", 1.0);
        doc.text(tx, bar_y + BAR_H + 13.0, 9.0, "middle", &format_tick(tick));
    }
    6.0 + BAR_H + 16.0
}

/// Formats a tick value compactly.
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_owned();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{:.0}", v)
    } else if a >= 10.0 {
        format!("{:.1}", v)
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_owned()
    } else {
        format!("{:.2}", v)
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_adds_elements() {
        let mut doc = SvgDocument::new(300.0, 100.0);
        let before = doc.n_elements();
        let h = draw_legend(
            &mut doc,
            &ColorRamp::energy(),
            0.0,
            100.0,
            "EPH [kWh/m2yr]",
            10.0,
            10.0,
            200.0,
        );
        assert!(doc.n_elements() > before + 10);
        assert!(h > 20.0);
        let svg = doc.render();
        assert!(svg.contains("EPH [kWh/m2yr]"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1500.0), "1500");
        assert_eq!(format_tick(12.5), "12.5");
        assert_eq!(format_tick(12.0), "12");
        assert_eq!(format_tick(0.45), "0.45");
        assert_eq!(format_tick(0.5), "0.5");
    }
}
