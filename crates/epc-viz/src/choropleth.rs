//! Choropleth maps (§2.3): "each area (at different zoom levels) is colored
//! according to the average value of the considered variable for the area
//! under analysis."

use crate::color::ColorRamp;
use crate::legend::draw_legend;
use crate::scale::GeoProjection;
use crate::svg::SvgDocument;
use epc_geo::bbox::BoundingBox;
use epc_geo::region::Region;

/// A choropleth map under construction.
#[derive(Debug, Clone)]
pub struct ChoroplethMap {
    /// Map title.
    pub title: String,
    /// Legend label (attribute name + unit).
    pub value_label: String,
    /// Colour ramp.
    pub ramp: ColorRamp,
    /// Canvas width in px.
    pub width: f64,
    /// Canvas height in px.
    pub height: f64,
    areas: Vec<(Region, Option<f64>)>,
}

impl ChoroplethMap {
    /// An empty map.
    pub fn new(title: &str, value_label: &str) -> Self {
        ChoroplethMap {
            title: title.to_owned(),
            value_label: value_label.to_owned(),
            ramp: ColorRamp::energy(),
            width: 760.0,
            height: 560.0,
            areas: Vec::new(),
        }
    }

    /// Adds a region with its aggregated value (`None` = no data: hatched
    /// gray).
    pub fn add_area(&mut self, region: Region, value: Option<f64>) {
        self.areas.push((region, value));
    }

    /// Number of areas added.
    pub fn n_areas(&self) -> usize {
        self.areas.len()
    }

    /// The `(min, max)` of the defined values, if any.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let vals: Vec<f64> = self.areas.iter().filter_map(|(_, v)| *v).collect();
        if vals.is_empty() {
            return None;
        }
        Some((
            vals.iter().copied().fold(f64::INFINITY, f64::min),
            vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ))
    }

    /// Renders the map to SVG.
    pub fn render(&self) -> String {
        let mut doc = SvgDocument::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#f7f7f4", "none");
        doc.text(14.0, 22.0, 15.0, "start", &self.title);

        // Bounds over every polygon.
        let all_points: Vec<epc_geo::point::GeoPoint> = self
            .areas
            .iter()
            .flat_map(|(r, _)| r.polygon.vertices.iter().copied())
            .collect();
        let Some(bounds) = BoundingBox::from_points(&all_points) else {
            doc.text(
                self.width / 2.0,
                self.height / 2.0,
                13.0,
                "middle",
                "(no areas)",
            );
            return doc.render();
        };
        let map_h = self.height - 90.0;
        let proj = GeoProjection::fit(
            bounds.with_margin(bounds.lat_span() * 0.03),
            self.width,
            map_h - 30.0,
            12.0,
        );

        let (lo, hi) = self.value_range().unwrap_or((0.0, 1.0));
        for (region, value) in &self.areas {
            let pts: Vec<(f64, f64)> = region
                .polygon
                .vertices
                .iter()
                .map(|p| {
                    let (x, y) = proj.project(p);
                    (x, y + 30.0)
                })
                .collect();
            let fill = match value {
                Some(v) => self.ramp.map(*v, lo, hi).hex(),
                None => "#cccccc".to_owned(),
            };
            doc.polygon(&pts, &fill, "#ffffff", 0.85);
            // Label at the polygon centroid.
            if let Some(c) = region.polygon.centroid() {
                let (x, y) = proj.project(&c);
                let text_color = match value {
                    Some(v) => self.ramp.map(*v, lo, hi).contrast_text(),
                    None => "#333333",
                };
                doc.text_colored(x, y + 28.0, 10.0, "middle", text_color, &region.name);
                if let Some(v) = value {
                    doc.text_colored(
                        x,
                        y + 40.0,
                        9.0,
                        "middle",
                        text_color,
                        &crate::legend::format_tick(*v),
                    );
                }
            }
        }

        draw_legend(
            &mut doc,
            &self.ramp,
            lo,
            hi,
            &self.value_label,
            14.0,
            self.height - 48.0,
            220.0,
        );
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_geo::region::Polygon;
    use epc_model::Granularity;

    fn region(name: &str, lat0: f64, lon0: f64) -> Region {
        Region {
            name: name.to_owned(),
            level: Granularity::District,
            parent: None,
            polygon: Polygon::from_bbox(&BoundingBox::new(lat0, lon0, lat0 + 0.05, lon0 + 0.05)),
        }
    }

    fn sample_map() -> ChoroplethMap {
        let mut m = ChoroplethMap::new("EPH by district", "EPH [kWh/m2yr]");
        m.add_area(region("D1", 45.0, 7.6), Some(220.0));
        m.add_area(region("D2", 45.0, 7.65), Some(80.0));
        m.add_area(region("D3", 45.05, 7.6), None);
        m
    }

    #[test]
    fn value_range_ignores_missing() {
        let m = sample_map();
        assert_eq!(m.value_range(), Some((80.0, 220.0)));
        assert_eq!(m.n_areas(), 3);
    }

    #[test]
    fn render_contains_polygons_labels_and_legend() {
        let svg = sample_map().render();
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("<polygon").count(), 3);
        assert!(svg.contains("D1") && svg.contains("D2") && svg.contains("D3"));
        assert!(svg.contains("EPH by district"));
        assert!(svg.contains("EPH [kWh/m2yr]"));
    }

    #[test]
    fn missing_area_is_gray() {
        let svg = sample_map().render();
        assert!(svg.contains("#cccccc"));
    }

    #[test]
    fn high_value_area_is_redder_than_low() {
        let m = sample_map();
        let (lo, hi) = m.value_range().unwrap();
        let hot = m.ramp.map(220.0, lo, hi);
        let cold = m.ramp.map(80.0, lo, hi);
        assert!(hot.r > cold.r);
        assert!(cold.g > hot.g);
    }

    #[test]
    fn empty_map_renders_placeholder() {
        let m = ChoroplethMap::new("empty", "x");
        let svg = m.render();
        assert!(svg.contains("(no areas)"));
    }

    #[test]
    fn uniform_values_do_not_panic() {
        let mut m = ChoroplethMap::new("uniform", "x");
        m.add_area(region("A", 45.0, 7.6), Some(5.0));
        m.add_area(region("B", 45.0, 7.65), Some(5.0));
        let svg = m.render();
        assert!(svg.contains("<polygon"));
    }
}
