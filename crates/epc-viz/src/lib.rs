//! # epc-viz
//!
//! Dashboard substrate for the INDICE reproduction (§2.3 of the paper).
//!
//! The paper renders interactive folium/Leaflet maps; this reproduction
//! models the *data side* of that interactivity — zoom-level switching,
//! drill-down, marker aggregation — as pure functions that emit
//! self-contained artifacts:
//!
//! * [`svg`] — a small SVG scene builder (no dependencies);
//! * [`color`] — colour ramps: the green→red energy scale for maps, the
//!   black-and-white scale the paper uses for correlation matrices;
//! * [`scale`] — linear scales and the geo→canvas projection;
//! * [`choropleth`] — choropleth maps (area averages, §2.3);
//! * [`scattermap`] — scatter maps (one point per certificate);
//! * [`clustermarker`] — cluster-marker maps: greedy grid aggregation with
//!   marker size and inner label proportional to cardinality;
//! * [`histplot`] — frequency-distribution plots (single and per-cluster);
//! * [`corrplot`] — the grayscale correlation plot matrix (Figure 3);
//! * [`rulestable`] — the tabular association-rule visualization;
//! * [`geojson`] — GeoJSON emitters for points and regions;
//! * [`dashboard`] — assembles panels into one self-contained HTML page
//!   (Figure 4).

pub mod boxplot_svg;
pub mod choropleth;
pub mod clustermarker;
pub mod color;
pub mod corrplot;
pub mod dashboard;
pub mod geojson;
pub mod histplot;
pub mod legend;
pub mod rulestable;
pub mod scale;
pub mod scattermap;
pub mod svg;

pub use boxplot_svg::BoxplotPlot;
pub use choropleth::ChoroplethMap;
pub use clustermarker::{cluster_markers, ClusterMarker, ClusterMarkerMap};
pub use color::{Color, ColorRamp};
pub use corrplot::CorrelationPlot;
pub use dashboard::{Dashboard, Panel, PanelContent};
pub use histplot::HistogramPlot;
pub use rulestable::RulesTable;
pub use scale::{GeoProjection, LinearScale};
pub use scattermap::ScatterMap;
pub use svg::SvgDocument;
