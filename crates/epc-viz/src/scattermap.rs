//! Scatter maps (§2.3): "the scatter maps report a point and its
//! corresponding value for each EPC (and so residential unit) contained in
//! the selected area."

use crate::color::ColorRamp;
use crate::legend::draw_legend;
use crate::scale::GeoProjection;
use crate::svg::SvgDocument;
use epc_geo::bbox::BoundingBox;
use epc_geo::point::GeoPoint;
use epc_geo::region::Region;

/// One certificate marker.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// Location.
    pub point: GeoPoint,
    /// Value of the mapped attribute (colours the marker); `None` renders
    /// gray.
    pub value: Option<f64>,
    /// Popup label (e.g. the certificate id + value, what the paper's
    /// click-popup shows).
    pub label: String,
}

/// A scatter map under construction.
#[derive(Debug, Clone)]
pub struct ScatterMap {
    /// Map title.
    pub title: String,
    /// Legend label.
    pub value_label: String,
    /// Colour ramp.
    pub ramp: ColorRamp,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Marker radius in px.
    pub marker_radius: f64,
    points: Vec<ScatterPoint>,
    outlines: Vec<Region>,
}

impl ScatterMap {
    /// An empty scatter map.
    pub fn new(title: &str, value_label: &str) -> Self {
        ScatterMap {
            title: title.to_owned(),
            value_label: value_label.to_owned(),
            ramp: ColorRamp::energy(),
            width: 760.0,
            height: 560.0,
            marker_radius: 3.0,
            points: Vec::new(),
            outlines: Vec::new(),
        }
    }

    /// Adds one certificate point.
    pub fn add_point(&mut self, point: GeoPoint, value: Option<f64>, label: &str) {
        self.points.push(ScatterPoint {
            point,
            value,
            label: label.to_owned(),
        });
    }

    /// Adds a region outline drawn under the points (district boundaries
    /// etc.).
    pub fn add_outline(&mut self, region: Region) {
        self.outlines.push(region);
    }

    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// `(min, max)` of the defined point values.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        let vals: Vec<f64> = self.points.iter().filter_map(|p| p.value).collect();
        if vals.is_empty() {
            return None;
        }
        Some((
            vals.iter().copied().fold(f64::INFINITY, f64::min),
            vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ))
    }

    /// Renders the map to SVG. Every marker carries a `<title>` child — the
    /// static equivalent of the interactive popups of the paper.
    pub fn render(&self) -> String {
        let mut doc = SvgDocument::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#f7f7f4", "none");
        doc.text(14.0, 22.0, 15.0, "start", &self.title);

        let mut all: Vec<GeoPoint> = self.points.iter().map(|p| p.point).collect();
        all.extend(
            self.outlines
                .iter()
                .flat_map(|r| r.polygon.vertices.iter().copied()),
        );
        let Some(bounds) = BoundingBox::from_points(&all) else {
            doc.text(
                self.width / 2.0,
                self.height / 2.0,
                13.0,
                "middle",
                "(no points)",
            );
            return doc.render();
        };
        let proj = GeoProjection::fit(
            bounds.with_margin(bounds.lat_span().max(1e-4) * 0.05),
            self.width,
            self.height - 120.0,
            12.0,
        );

        for region in &self.outlines {
            let pts: Vec<(f64, f64)> = region
                .polygon
                .vertices
                .iter()
                .map(|p| {
                    let (x, y) = proj.project(p);
                    (x, y + 30.0)
                })
                .collect();
            doc.polygon(&pts, "none", "#999999", 0.0);
        }

        let (lo, hi) = self.value_range().unwrap_or((0.0, 1.0));
        for p in &self.points {
            let (x, y) = proj.project(&p.point);
            let fill = match p.value {
                Some(v) => self.ramp.map(v, lo, hi).hex(),
                None => "#bbbbbb".to_owned(),
            };
            doc.raw(&format!(
                r##"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{fill}" stroke="#ffffff" stroke-width="0.4"><title>{}</title></circle>"##,
                x,
                y + 30.0,
                self.marker_radius,
                crate::svg::escape(&p.label)
            ));
        }

        draw_legend(
            &mut doc,
            &self.ramp,
            lo,
            hi,
            &self.value_label,
            14.0,
            self.height - 48.0,
            220.0,
        );
        doc.text(
            self.width - 14.0,
            self.height - 14.0,
            10.0,
            "end",
            &format!("{} certificates", self.points.len()),
        );
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_geo::region::Polygon;
    use epc_model::Granularity;

    fn sample() -> ScatterMap {
        let mut m = ScatterMap::new("Uw per unit", "Uw [W/m2K]");
        m.add_point(GeoPoint::new(45.01, 7.61), Some(4.2), "EPC-000001 Uw=4.2");
        m.add_point(GeoPoint::new(45.02, 7.63), Some(1.5), "EPC-000002 Uw=1.5");
        m.add_point(GeoPoint::new(45.03, 7.62), None, "EPC-000003 (missing)");
        m
    }

    #[test]
    fn renders_one_marker_per_point() {
        let svg = sample().render();
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<title>").count(), 3);
        assert!(svg.contains("3 certificates"));
    }

    #[test]
    fn labels_are_escaped_into_titles() {
        let mut m = sample();
        m.add_point(GeoPoint::new(45.015, 7.615), Some(2.0), "a<b&c");
        let svg = m.render();
        assert!(svg.contains("a&lt;b&amp;c"));
    }

    #[test]
    fn outline_is_drawn_without_fill() {
        let mut m = sample();
        m.add_outline(Region {
            name: "D1".into(),
            level: Granularity::District,
            parent: None,
            polygon: Polygon::from_bbox(&BoundingBox::new(45.0, 7.6, 45.05, 7.65)),
        });
        let svg = m.render();
        assert!(svg.contains("<polygon"));
        assert!(svg.contains(r#"fill="none""#));
    }

    #[test]
    fn empty_map_placeholder() {
        let m = ScatterMap::new("empty", "x");
        assert!(m.render().contains("(no points)"));
        assert_eq!(m.value_range(), None);
    }

    #[test]
    fn value_range_skips_missing() {
        assert_eq!(sample().value_range(), Some((1.5, 4.2)));
    }

    #[test]
    fn single_point_does_not_panic() {
        let mut m = ScatterMap::new("one", "x");
        m.add_point(GeoPoint::new(45.0, 7.6), Some(1.0), "only");
        let svg = m.render();
        assert!(svg.contains("<circle"));
    }
}
