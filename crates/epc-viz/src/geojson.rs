//! GeoJSON emitters.
//!
//! The paper's folium maps consume GeoJSON; emitting the same structures
//! keeps this reproduction interoperable with any web-map front end (drop
//! the files onto geojson.io or Leaflet and the layers render).

use crate::clustermarker::ClusterMarker;
use epc_geo::point::GeoPoint;
use epc_geo::region::Region;
use serde_json::{json, Map, Value};

/// A GeoJSON `FeatureCollection` of points with arbitrary per-point
/// properties.
pub fn points_feature_collection(points: &[(GeoPoint, Map<String, Value>)]) -> Value {
    let features: Vec<Value> = points
        .iter()
        .map(|(p, props)| {
            json!({
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    // GeoJSON is [lon, lat].
                    "coordinates": [p.lon, p.lat],
                },
                "properties": props,
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

/// A `FeatureCollection` of region polygons, each with a `name` and an
/// optional aggregated `value` property (choropleth-ready).
pub fn regions_feature_collection(regions: &[(Region, Option<f64>)]) -> Value {
    let features: Vec<Value> = regions
        .iter()
        .map(|(r, value)| {
            let mut ring: Vec<[f64; 2]> =
                r.polygon.vertices.iter().map(|p| [p.lon, p.lat]).collect();
            // GeoJSON rings must be closed.
            if let Some(first) = ring.first().copied() {
                if ring.last() != Some(&first) {
                    ring.push(first);
                }
            }
            json!({
                "type": "Feature",
                "geometry": {
                    "type": "Polygon",
                    "coordinates": [ring],
                },
                "properties": {
                    "name": r.name,
                    "level": r.level.to_string(),
                    "parent": r.parent,
                    "value": value,
                },
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

/// A `FeatureCollection` of cluster markers (`count` and `mean_value`
/// properties — the cardinality and colour driver of §2.3).
pub fn markers_feature_collection(markers: &[ClusterMarker]) -> Value {
    let features: Vec<Value> = markers
        .iter()
        .map(|m| {
            json!({
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    "coordinates": [m.center.lon, m.center.lat],
                },
                "properties": {
                    "count": m.count,
                    "mean_value": m.mean_value,
                },
            })
        })
        .collect();
    json!({ "type": "FeatureCollection", "features": features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_geo::bbox::BoundingBox;
    use epc_geo::region::Polygon;
    use epc_model::Granularity;

    #[test]
    fn point_collection_is_lon_lat() {
        let mut props = Map::new();
        props.insert("eph".into(), json!(120.5));
        let fc = points_feature_collection(&[(GeoPoint::new(45.07, 7.68), props)]);
        assert_eq!(fc["type"], "FeatureCollection");
        let coords = &fc["features"][0]["geometry"]["coordinates"];
        assert_eq!(coords[0], 7.68, "GeoJSON order is [lon, lat]");
        assert_eq!(coords[1], 45.07);
        assert_eq!(fc["features"][0]["properties"]["eph"], 120.5);
    }

    #[test]
    fn region_rings_are_closed() {
        let r = Region {
            name: "D1".into(),
            level: Granularity::District,
            parent: Some("Torino".into()),
            polygon: Polygon::from_bbox(&BoundingBox::new(45.0, 7.6, 45.1, 7.7)),
        };
        let fc = regions_feature_collection(&[(r, Some(42.0))]);
        let ring = fc["features"][0]["geometry"]["coordinates"][0]
            .as_array()
            .unwrap();
        assert_eq!(ring.first(), ring.last(), "ring must be closed");
        assert_eq!(ring.len(), 5, "4 vertices + closing point");
        assert_eq!(fc["features"][0]["properties"]["value"], 42.0);
        assert_eq!(fc["features"][0]["properties"]["level"], "district");
    }

    #[test]
    fn missing_values_serialize_as_null() {
        let r = Region {
            name: "D2".into(),
            level: Granularity::District,
            parent: None,
            polygon: Polygon::from_bbox(&BoundingBox::new(45.0, 7.6, 45.1, 7.7)),
        };
        let fc = regions_feature_collection(&[(r, None)]);
        assert!(fc["features"][0]["properties"]["value"].is_null());
        assert!(fc["features"][0]["properties"]["parent"].is_null());
    }

    #[test]
    fn marker_collection_carries_count_and_mean() {
        let m = ClusterMarker {
            center: GeoPoint::new(45.05, 7.65),
            count: 120,
            mean_value: Some(180.4),
        };
        let fc = markers_feature_collection(&[m]);
        assert_eq!(fc["features"][0]["properties"]["count"], 120);
        assert_eq!(fc["features"][0]["properties"]["mean_value"], 180.4);
    }

    #[test]
    fn collections_round_trip_through_serde() {
        let fc = points_feature_collection(&[]);
        let text = serde_json::to_string(&fc).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["features"].as_array().unwrap().len(), 0);
    }
}
