//! Frequency-distribution plots (§2.3): histograms of a single attribute,
//! optionally split per cluster ("the analyst can explore the frequency
//! distribution of a specific attribute … or its distribution in the
//! cluster set detected by INDICE").

use crate::color::Color;
use crate::scale::LinearScale;
use crate::svg::SvgDocument;
use epc_stats::histogram::Histogram;

/// Categorical palette for per-cluster series (colour-blind-safe-ish).
const SERIES_COLORS: [Color; 8] = [
    Color::new(0x4e, 0x79, 0xa7),
    Color::new(0xf2, 0x8e, 0x2b),
    Color::new(0xe1, 0x57, 0x59),
    Color::new(0x76, 0xb7, 0xb2),
    Color::new(0x59, 0xa1, 0x4f),
    Color::new(0xed, 0xc9, 0x48),
    Color::new(0xb0, 0x7a, 0xa1),
    Color::new(0x9c, 0x75, 0x5f),
];

/// One histogram series (e.g. one cluster).
#[derive(Debug, Clone)]
struct Series {
    name: String,
    histogram: Histogram,
}

/// A frequency-distribution plot.
#[derive(Debug, Clone)]
pub struct HistogramPlot {
    /// Plot title.
    pub title: String,
    /// X-axis label (attribute + unit).
    pub x_label: String,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Plot relative frequencies instead of counts (needed to compare
    /// clusters of different sizes).
    pub relative: bool,
    series: Vec<Series>,
}

impl HistogramPlot {
    /// An empty plot.
    pub fn new(title: &str, x_label: &str) -> Self {
        HistogramPlot {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            width: 640.0,
            height: 360.0,
            relative: false,
            series: Vec::new(),
        }
    }

    /// Adds a series (the first is usually "all certificates"; further ones
    /// per cluster).
    pub fn add_series(&mut self, name: &str, histogram: Histogram) {
        self.series.push(Series {
            name: name.to_owned(),
            histogram,
        });
    }

    /// Number of series.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    /// Renders the plot: grouped bars per bin when several series are
    /// present.
    pub fn render(&self) -> String {
        let mut doc = SvgDocument::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#ffffff", "none");
        doc.text(14.0, 22.0, 14.0, "start", &self.title);
        if self.series.is_empty() {
            doc.text(
                self.width / 2.0,
                self.height / 2.0,
                12.0,
                "middle",
                "(no data)",
            );
            return doc.render();
        }

        let margin_l = 52.0;
        let margin_b = 46.0;
        let margin_t = 36.0;
        let margin_r = 14.0;
        let plot_w = self.width - margin_l - margin_r;
        let plot_h = self.height - margin_t - margin_b;

        // Common x-domain across series.
        let x_lo = self
            .series
            .iter()
            .filter_map(|s| s.histogram.bins.first().map(|b| b.lo))
            .fold(f64::INFINITY, f64::min);
        let x_hi = self
            .series
            .iter()
            .filter_map(|s| s.histogram.bins.last().map(|b| b.hi))
            .fold(f64::NEG_INFINITY, f64::max);
        let y_hi = self
            .series
            .iter()
            .flat_map(|s| {
                let total = s.histogram.total.max(1) as f64;
                s.histogram.bins.iter().map(move |b| {
                    if self.relative {
                        b.count as f64 / total
                    } else {
                        b.count as f64
                    }
                })
            })
            .fold(0.0f64, f64::max)
            .max(1e-9);

        let x_scale = LinearScale::new((x_lo, x_hi), (margin_l, margin_l + plot_w));
        let y_scale = LinearScale::new((0.0, y_hi), (margin_t + plot_h, margin_t));

        // Axes.
        doc.line(
            margin_l,
            margin_t,
            margin_l,
            margin_t + plot_h,
            "#333333",
            1.0,
        );
        doc.line(
            margin_l,
            margin_t + plot_h,
            margin_l + plot_w,
            margin_t + plot_h,
            "#333333",
            1.0,
        );
        for t in x_scale.ticks(6) {
            let x = x_scale.map(t);
            doc.line(
                x,
                margin_t + plot_h,
                x,
                margin_t + plot_h + 4.0,
                "#333333",
                1.0,
            );
            doc.text(
                x,
                margin_t + plot_h + 16.0,
                9.0,
                "middle",
                &crate::legend::format_tick(t),
            );
        }
        for t in y_scale.ticks(4) {
            let y = y_scale.map(t);
            doc.line(margin_l - 4.0, y, margin_l, y, "#333333", 1.0);
            doc.text(
                margin_l - 7.0,
                y + 3.0,
                9.0,
                "end",
                &crate::legend::format_tick(t),
            );
            doc.line(margin_l, y, margin_l + plot_w, y, "#eeeeee", 0.5);
        }
        doc.text(
            margin_l + plot_w / 2.0,
            self.height - 8.0,
            11.0,
            "middle",
            &self.x_label,
        );

        // Bars.
        let n_series = self.series.len();
        for (si, s) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[si % SERIES_COLORS.len()];
            let total = s.histogram.total.max(1) as f64;
            for b in &s.histogram.bins {
                let v = if self.relative {
                    b.count as f64 / total
                } else {
                    b.count as f64
                };
                let x0 = x_scale.map(b.lo);
                let x1 = x_scale.map(b.hi);
                let bin_w = (x1 - x0).max(1.0);
                let bar_w = (bin_w / n_series as f64).max(0.8);
                let x = x0 + si as f64 * bar_w;
                let y = y_scale.map(v);
                doc.rect(
                    x,
                    y,
                    bar_w * 0.92,
                    (margin_t + plot_h - y).max(0.0),
                    &color.hex(),
                    "none",
                );
            }
            // Legend entry.
            let lx = margin_l + plot_w - 130.0;
            let ly = margin_t + 4.0 + si as f64 * 14.0;
            doc.rect(lx, ly, 10.0, 10.0, &color.hex(), "none");
            doc.text(lx + 14.0, ly + 9.0, 10.0, "start", &s.name);
        }
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> Histogram {
        Histogram::equal_width(values, 8).unwrap()
    }

    #[test]
    fn single_series_renders_bars_and_axes() {
        let mut p = HistogramPlot::new("EPH distribution", "EPH [kWh/m2yr]");
        let data: Vec<f64> = (0..200).map(|i| (i % 50) as f64 * 4.0).collect();
        p.add_series("all", hist(&data));
        let svg = p.render();
        assert!(svg.matches("<rect").count() > 8, "bars + legend + frame");
        assert!(svg.contains("EPH distribution"));
        assert!(svg.contains("EPH [kWh/m2yr]"));
        assert!(svg.contains("all"));
    }

    #[test]
    fn multi_series_grouped_bars() {
        let mut p = HistogramPlot::new("per cluster", "x");
        p.relative = true;
        for c in 0..3 {
            let data: Vec<f64> = (0..100).map(|i| ((i * (c + 2)) % 40) as f64).collect();
            p.add_series(&format!("cluster {c}"), hist(&data));
        }
        assert_eq!(p.n_series(), 3);
        let svg = p.render();
        assert!(svg.contains("cluster 0"));
        assert!(svg.contains("cluster 2"));
    }

    #[test]
    fn empty_plot_placeholder() {
        let p = HistogramPlot::new("empty", "x");
        assert!(p.render().contains("(no data)"));
    }

    #[test]
    fn relative_mode_bounds_y_by_one() {
        let mut p = HistogramPlot::new("rel", "x");
        p.relative = true;
        p.add_series("s", hist(&[1.0, 1.0, 1.0, 2.0]));
        // Should render without panicking and include a y tick ≤ 1.
        let svg = p.render();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn series_get_distinct_colors() {
        let mut p = HistogramPlot::new("colors", "x");
        p.add_series("a", hist(&[1.0, 2.0, 3.0]));
        p.add_series("b", hist(&[1.0, 2.0, 3.0]));
        let svg = p.render();
        assert!(svg.contains(&SERIES_COLORS[0].hex()));
        assert!(svg.contains(&SERIES_COLORS[1].hex()));
    }
}
