//! Colour ramps.
//!
//! Two ramps matter to the paper: the *energy* ramp colouring maps (good =
//! green, bad = red, the convention of EPC class labels) and the *grayscale*
//! ramp of the correlation plot matrix ("each coefficient value is
//! translated into a gray level in the black-and-white scale", §2.3).

/// An sRGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Creates a colour.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// CSS hex form `#rrggbb`.
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Linear interpolation between two colours (`t` clamped to `[0, 1]`).
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
        Color::new(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }

    /// Relative luminance (sufficient to pick readable label colours).
    pub fn luminance(&self) -> f64 {
        (0.2126 * self.r as f64 + 0.7152 * self.g as f64 + 0.0722 * self.b as f64) / 255.0
    }

    /// A readable text colour (black or white) over this background.
    pub fn contrast_text(&self) -> &'static str {
        if self.luminance() > 0.55 {
            "#000000"
        } else {
            "#ffffff"
        }
    }
}

/// A piecewise-linear colour ramp over `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorRamp {
    stops: Vec<Color>,
}

impl ColorRamp {
    /// A ramp from explicit stops (at least one).
    pub fn new(stops: Vec<Color>) -> Self {
        assert!(!stops.is_empty(), "ramp needs at least one stop");
        ColorRamp { stops }
    }

    /// The energy ramp: green (efficient) → yellow → red (consuming), the
    /// EPC-label convention used for map colouring.
    pub fn energy() -> Self {
        ColorRamp::new(vec![
            Color::new(0x1a, 0x9a, 0x50), // green
            Color::new(0xd8, 0xd3, 0x35), // yellow
            Color::new(0xe6, 0x7e, 0x22), // orange
            Color::new(0xc0, 0x2d, 0x24), // red
        ])
    }

    /// The grayscale ramp of the correlation matrix: white (|ρ| = 0) →
    /// black (|ρ| = 1).
    pub fn grayscale() -> Self {
        ColorRamp::new(vec![Color::new(255, 255, 255), Color::new(0, 0, 0)])
    }

    /// Samples the ramp at `t ∈ [0, 1]` (clamped).
    pub fn sample(&self, t: f64) -> Color {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        if self.stops.len() == 1 {
            return self.stops[0]; // lint:allow(D7): len() == 1 checked on this branch
        }
        let scaled = t * (self.stops.len() - 1) as f64;
        let i = (scaled.floor() as usize).min(self.stops.len() - 2);
        // lint:allow(D7): new() rejects empty stop lists and i is clamped to len - 2
        Color::lerp(self.stops[i], self.stops[i + 1], scaled - i as f64)
    }

    /// Maps a raw value from `[lo, hi]` onto the ramp (degenerate domains
    /// sample the middle).
    pub fn map(&self, value: f64, lo: f64, hi: f64) -> Color {
        if hi <= lo {
            return self.sample(0.5);
        }
        self.sample((value - lo) / (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formatting() {
        assert_eq!(Color::new(255, 0, 18).hex(), "#ff0012");
        assert_eq!(Color::new(0, 0, 0).hex(), "#000000");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Color::new(0, 0, 0);
        let b = Color::new(200, 100, 50);
        assert_eq!(Color::lerp(a, b, 0.0), a);
        assert_eq!(Color::lerp(a, b, 1.0), b);
        assert_eq!(Color::lerp(a, b, 0.5), Color::new(100, 50, 25));
        // Out-of-range t clamps.
        assert_eq!(Color::lerp(a, b, -1.0), a);
        assert_eq!(Color::lerp(a, b, 2.0), b);
    }

    #[test]
    fn energy_ramp_goes_green_to_red() {
        let ramp = ColorRamp::energy();
        let lo = ramp.sample(0.0);
        let hi = ramp.sample(1.0);
        assert!(lo.g > lo.r, "low end is green");
        assert!(hi.r > hi.g, "high end is red");
    }

    #[test]
    fn grayscale_is_monotone() {
        let ramp = ColorRamp::grayscale();
        let mut prev = 256i32;
        for i in 0..=10 {
            let c = ramp.sample(i as f64 / 10.0);
            assert_eq!(c.r, c.g);
            assert_eq!(c.g, c.b);
            assert!((c.r as i32) <= prev);
            prev = c.r as i32;
        }
        assert_eq!(ramp.sample(0.0), Color::new(255, 255, 255));
        assert_eq!(ramp.sample(1.0), Color::new(0, 0, 0));
    }

    #[test]
    fn map_handles_degenerate_domain() {
        let ramp = ColorRamp::grayscale();
        let mid = ramp.map(5.0, 3.0, 3.0);
        assert_eq!(mid, ramp.sample(0.5));
    }

    #[test]
    fn nan_maps_to_low_end() {
        let ramp = ColorRamp::energy();
        assert_eq!(ramp.sample(f64::NAN), ramp.sample(0.0));
    }

    #[test]
    fn contrast_text_flips_with_luminance() {
        assert_eq!(Color::new(255, 255, 255).contrast_text(), "#000000");
        assert_eq!(Color::new(0, 0, 0).contrast_text(), "#ffffff");
        assert_eq!(Color::new(200, 30, 30).contrast_text(), "#ffffff");
    }

    #[test]
    fn single_stop_ramp() {
        let ramp = ColorRamp::new(vec![Color::new(1, 2, 3)]);
        assert_eq!(ramp.sample(0.7), Color::new(1, 2, 3));
    }
}
