//! Linear scales and the geographic → canvas projection.
//!
//! At city scale an equirectangular projection (longitude scaled by
//! `cos(latitude)`) is visually indistinguishable from Web Mercator, so
//! maps project through [`GeoProjection`] without external dependencies.

use epc_geo::bbox::BoundingBox;
use epc_geo::point::GeoPoint;

/// A linear mapping `domain → range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    domain: (f64, f64),
    range: (f64, f64),
}

impl LinearScale {
    /// Creates a scale. A degenerate domain maps everything to the middle
    /// of the range.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        LinearScale { domain, range }
    }

    /// Maps a domain value into the range (extrapolates outside).
    pub fn map(&self, x: f64) -> f64 {
        let (d0, d1) = self.domain;
        let (r0, r1) = self.range;
        if d1 == d0 {
            return (r0 + r1) / 2.0;
        }
        r0 + (x - d0) / (d1 - d0) * (r1 - r0)
    }

    /// The inverse mapping.
    pub fn invert(&self, y: f64) -> f64 {
        let (d0, d1) = self.domain;
        let (r0, r1) = self.range;
        if r1 == r0 {
            return (d0 + d1) / 2.0;
        }
        d0 + (y - r0) / (r1 - r0) * (d1 - d0)
    }

    /// Pleasant tick positions covering the domain (roughly `n` of them).
    pub fn ticks(&self, n: usize) -> Vec<f64> {
        let (d0, d1) = self.domain;
        if n == 0 || d1 <= d0 {
            return vec![d0];
        }
        let raw_step = (d1 - d0) / n as f64;
        let mag = 10f64.powf(raw_step.log10().floor());
        let norm = raw_step / mag;
        let step = if norm < 1.5 {
            1.0
        } else if norm < 3.5 {
            2.0
        } else if norm < 7.5 {
            5.0
        } else {
            10.0
        } * mag;
        let start = (d0 / step).ceil() * step;
        let mut ticks = Vec::new();
        let mut t = start;
        while t <= d1 + step * 1e-9 {
            ticks.push((t / step).round() * step);
            t += step;
        }
        ticks
    }
}

/// Projects WGS84 points onto an SVG canvas, preserving aspect ratio and
/// flipping the y axis (north up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoProjection {
    bounds: BoundingBox,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Padding in px on every side.
    pub padding: f64,
    lon_scale: f64,
    scale: f64,
    offset_x: f64,
    offset_y: f64,
}

impl GeoProjection {
    /// Fits `bounds` into a `width × height` canvas with `padding` px.
    pub fn fit(bounds: BoundingBox, width: f64, height: f64, padding: f64) -> Self {
        let mid_lat = (bounds.min_lat + bounds.max_lat) / 2.0;
        let lon_scale = mid_lat.to_radians().cos().max(1e-6);
        let span_x = (bounds.lon_span() * lon_scale).max(1e-12);
        let span_y = bounds.lat_span().max(1e-12);
        let usable_w = (width - 2.0 * padding).max(1.0);
        let usable_h = (height - 2.0 * padding).max(1.0);
        let scale = (usable_w / span_x).min(usable_h / span_y);
        // Center the projected content.
        let content_w = span_x * scale;
        let content_h = span_y * scale;
        let offset_x = (width - content_w) / 2.0;
        let offset_y = (height - content_h) / 2.0;
        GeoProjection {
            bounds,
            width,
            height,
            padding,
            lon_scale,
            scale,
            offset_x,
            offset_y,
        }
    }

    /// Projects a point to canvas `(x, y)`.
    pub fn project(&self, p: &GeoPoint) -> (f64, f64) {
        let x = (p.lon - self.bounds.min_lon) * self.lon_scale * self.scale + self.offset_x;
        let y = (self.bounds.max_lat - p.lat) * self.scale + self.offset_y;
        (x, y)
    }

    /// Converts a ground distance in meters to canvas px (approximate).
    pub fn meters_to_px(&self, meters: f64) -> f64 {
        // 1 degree of latitude ≈ 111 195 m.
        meters / 111_195.0 * self.scale
    }

    /// The geographic bounds being projected.
    pub fn bounds(&self) -> &BoundingBox {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scale_maps_and_inverts() {
        let s = LinearScale::new((0.0, 10.0), (100.0, 200.0));
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        assert_eq!(s.invert(150.0), 5.0);
        // Extrapolation.
        assert_eq!(s.map(20.0), 300.0);
    }

    #[test]
    fn degenerate_domain_maps_to_middle() {
        let s = LinearScale::new((5.0, 5.0), (0.0, 10.0));
        assert_eq!(s.map(5.0), 5.0);
        assert_eq!(s.map(99.0), 5.0);
    }

    #[test]
    fn reversed_range_works() {
        // SVG y axes grow downward; scales must support reversed ranges.
        let s = LinearScale::new((0.0, 1.0), (100.0, 0.0));
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(1.0), 0.0);
    }

    #[test]
    fn ticks_are_round_and_cover() {
        let s = LinearScale::new((0.0, 100.0), (0.0, 1.0));
        let ticks = s.ticks(5);
        assert!(ticks.contains(&0.0));
        assert!(ticks.contains(&100.0));
        for w in ticks.windows(2) {
            assert!((w[1] - w[0] - 20.0).abs() < 1e-9, "{ticks:?}");
        }
    }

    #[test]
    fn ticks_handle_small_ranges() {
        let s = LinearScale::new((0.15, 1.1), (0.0, 1.0));
        let ticks = s.ticks(4);
        assert!(!ticks.is_empty());
        for t in &ticks {
            assert!(*t >= 0.15 - 1e-9 && *t <= 1.1 + 1e-9);
        }
    }

    #[test]
    fn projection_fits_in_canvas() {
        let b = BoundingBox::new(45.0, 7.6, 45.1, 7.8);
        let proj = GeoProjection::fit(b, 800.0, 600.0, 20.0);
        for p in [
            GeoPoint::new(45.0, 7.6),
            GeoPoint::new(45.1, 7.8),
            GeoPoint::new(45.05, 7.7),
        ] {
            let (x, y) = proj.project(&p);
            assert!((0.0..=800.0).contains(&x), "x = {x}");
            assert!((0.0..=600.0).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn north_is_up() {
        let b = BoundingBox::new(45.0, 7.6, 45.1, 7.8);
        let proj = GeoProjection::fit(b, 800.0, 600.0, 0.0);
        let (_, y_south) = proj.project(&GeoPoint::new(45.0, 7.7));
        let (_, y_north) = proj.project(&GeoPoint::new(45.1, 7.7));
        assert!(y_north < y_south, "north must be above south on canvas");
    }

    #[test]
    fn east_is_right() {
        let b = BoundingBox::new(45.0, 7.6, 45.1, 7.8);
        let proj = GeoProjection::fit(b, 800.0, 600.0, 0.0);
        let (x_west, _) = proj.project(&GeoPoint::new(45.05, 7.6));
        let (x_east, _) = proj.project(&GeoPoint::new(45.05, 7.8));
        assert!(x_east > x_west);
    }

    #[test]
    fn aspect_ratio_is_locked() {
        // A geographically square box (in meters) must project to a square.
        let b = BoundingBox::new(45.0, 7.6, 45.1, 7.6 + 0.1 / 45.05f64.to_radians().cos());
        let proj = GeoProjection::fit(b, 800.0, 600.0, 0.0);
        let (x0, y0) = proj.project(&GeoPoint::new(45.0, b.min_lon));
        let (x1, y1) = proj.project(&GeoPoint::new(45.1, b.max_lon));
        let w = (x1 - x0).abs();
        let h = (y1 - y0).abs();
        assert!((w - h).abs() < 1.0, "w {w} vs h {h}");
    }

    #[test]
    fn meters_to_px_is_positive_and_linear() {
        let b = BoundingBox::new(45.0, 7.6, 45.1, 7.8);
        let proj = GeoProjection::fit(b, 800.0, 600.0, 0.0);
        let one = proj.meters_to_px(100.0);
        let two = proj.meters_to_px(200.0);
        assert!(one > 0.0);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
