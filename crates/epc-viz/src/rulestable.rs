//! The tabular association-rule visualization (§2.3): "INDICE defines
//! templates to characterize the attributes and represent the association
//! rules using a tabular visualization. By sorting on quality indices, only
//! the top-k rules that satisfy all constraints may be displayed."

use crate::svg::escape;
use epc_mining::rules::AssociationRule;

/// Renders association rules as an HTML table / plain-text table.
#[derive(Debug, Clone)]
pub struct RulesTable {
    /// Table caption.
    pub title: String,
    /// Keep only the best `top_k` rules (already-sorted input assumed).
    pub top_k: usize,
}

impl Default for RulesTable {
    fn default() -> Self {
        RulesTable {
            title: "Association rules".to_owned(),
            top_k: 20,
        }
    }
}

impl RulesTable {
    /// HTML rendering (embedded into the dashboard page).
    pub fn render_html(&self, rules: &[AssociationRule]) -> String {
        let mut out = String::new();
        out.push_str("<table class=\"rules\">\n");
        out.push_str(&format!(
            "<caption>{} (top {})</caption>\n",
            escape(&self.title),
            self.top_k.min(rules.len())
        ));
        out.push_str(
            "<thead><tr><th>#</th><th>Antecedent</th><th>Consequent</th>\
             <th>Support</th><th>Confidence</th><th>Lift</th><th>Conviction</th></tr></thead>\n<tbody>\n",
        );
        for (i, r) in rules.iter().take(self.top_k).enumerate() {
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:.2}</td><td>{}</td></tr>\n",
                i + 1,
                escape(&r.antecedent.join(" & ")),
                escape(&r.consequent.join(" & ")),
                r.support,
                r.confidence,
                r.lift,
                format_conviction(r.conviction),
            ));
        }
        out.push_str("</tbody>\n</table>\n");
        out
    }

    /// Plain-text rendering (for terminals and logs).
    pub fn render_text(&self, rules: &[AssociationRule]) -> String {
        let mut out = format!("{} (top {})\n", self.title, self.top_k.min(rules.len()));
        out.push_str(&format!(
            "{:<4} {:<46} {:<30} {:>8} {:>8} {:>6} {:>6}\n",
            "#", "antecedent", "consequent", "supp", "conf", "lift", "conv"
        ));
        for (i, r) in rules.iter().take(self.top_k).enumerate() {
            out.push_str(&format!(
                "{:<4} {:<46} {:<30} {:>8.3} {:>8.3} {:>6.2} {:>6}\n",
                i + 1,
                truncate(&r.antecedent.join(" & "), 46),
                truncate(&r.consequent.join(" & "), 30),
                r.support,
                r.confidence,
                r.lift,
                format_conviction(r.conviction),
            ));
        }
        out
    }
}

fn format_conviction(c: f64) -> String {
    if c.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{c:.2}")
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> Vec<AssociationRule> {
        vec![
            AssociationRule {
                antecedent: vec!["u_windows=Very high".into(), "eta_h=Low".into()],
                consequent: vec!["eph=High".into()],
                support: 0.12,
                confidence: 0.91,
                lift: 2.4,
                conviction: 5.5,
            },
            AssociationRule {
                antecedent: vec!["u_opaque=Low".into()],
                consequent: vec!["eph=Low".into()],
                support: 0.2,
                confidence: 1.0,
                lift: 1.8,
                conviction: f64::INFINITY,
            },
        ]
    }

    #[test]
    fn html_contains_rows_and_indices() {
        let html = RulesTable::default().render_html(&rules());
        assert!(html.contains("<table"));
        assert!(html.contains("u_windows=Very high &amp; eta_h=Low"));
        assert!(html.contains("eph=High"));
        assert!(html.contains("0.910"));
        assert!(html.contains("2.40"));
        assert!(html.contains("inf"), "infinite conviction renders as inf");
        assert_eq!(html.matches("<tr>").count(), 3, "header + 2 rows");
    }

    #[test]
    fn top_k_truncates_table() {
        let table = RulesTable {
            top_k: 1,
            ..Default::default()
        };
        let html = table.render_html(&rules());
        assert_eq!(html.matches("<tr>").count(), 2, "header + 1 row");
        assert!(html.contains("top 1"));
    }

    #[test]
    fn text_is_aligned_and_complete() {
        let txt = RulesTable::default().render_text(&rules());
        assert!(txt.contains("antecedent"));
        assert!(txt.contains("u_opaque=Low"));
        assert!(txt.lines().count() >= 4);
    }

    #[test]
    fn truncate_long_antecedents() {
        assert_eq!(truncate("short", 10), "short");
        let long = "x".repeat(60);
        let t = truncate(&long, 46);
        assert!(t.chars().count() <= 46);
        assert!(t.ends_with('…'));
    }

    #[test]
    fn empty_rule_set_renders_header_only() {
        let html = RulesTable::default().render_html(&[]);
        assert_eq!(html.matches("<tr>").count(), 1);
        assert!(html.contains("top 0"));
    }
}
