//! The informative dashboard (§2.3, Figure 4): assembles maps, plots and
//! tables into one self-contained HTML page per stakeholder and zoom level.

use crate::svg::escape;

/// A dashboard panel's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum PanelContent {
    /// An SVG fragment (maps, plots).
    Svg(String),
    /// An HTML fragment (tables).
    Html(String),
    /// Pre-formatted text (summaries).
    Text(String),
}

/// One dashboard panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel heading.
    pub title: String,
    /// Panel payload.
    pub content: PanelContent,
    /// `true` to span the full page width (maps); `false` for half-width
    /// panels (plots, tables).
    pub wide: bool,
}

/// A dashboard under construction.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    /// Page title.
    pub title: String,
    /// Subtitle (stakeholder + granularity, e.g. "public administration ·
    /// district level").
    pub subtitle: String,
    panels: Vec<Panel>,
}

impl Dashboard {
    /// An empty dashboard.
    pub fn new(title: &str, subtitle: &str) -> Self {
        Dashboard {
            title: title.to_owned(),
            subtitle: subtitle.to_owned(),
            panels: Vec::new(),
        }
    }

    /// Appends a panel.
    pub fn add_panel(&mut self, title: &str, content: PanelContent, wide: bool) {
        self.panels.push(Panel {
            title: title.to_owned(),
            content,
            wide,
        });
    }

    /// Number of panels.
    pub fn n_panels(&self) -> usize {
        self.panels.len()
    }

    /// The panels, in order.
    pub fn panels(&self) -> &[Panel] {
        &self.panels
    }

    /// Renders the self-contained HTML page.
    pub fn render_html(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        out.push_str(&format!("<title>{}</title>\n", escape(&self.title)));
        out.push_str(
            "<style>\n\
             body { font-family: system-ui, sans-serif; margin: 0; background: #eef0f2; }\n\
             header { background: #24425c; color: #fff; padding: 14px 24px; }\n\
             header h1 { margin: 0; font-size: 20px; }\n\
             header p { margin: 4px 0 0; opacity: 0.8; font-size: 13px; }\n\
             main { display: flex; flex-wrap: wrap; gap: 16px; padding: 16px 24px; }\n\
             section { background: #fff; border-radius: 8px; box-shadow: 0 1px 3px rgba(0,0,0,.15); padding: 12px; }\n\
             section.wide { flex: 1 1 100%; }\n\
             section.half { flex: 1 1 calc(50% - 16px); min-width: 340px; }\n\
             section h2 { margin: 0 0 8px; font-size: 15px; color: #24425c; }\n\
             table.rules { border-collapse: collapse; font-size: 12px; width: 100%; }\n\
             table.rules th, table.rules td { border: 1px solid #ccd; padding: 4px 6px; text-align: left; }\n\
             table.rules th { background: #f0f3f6; }\n\
             pre { font-size: 12px; overflow-x: auto; }\n\
             svg { max-width: 100%; height: auto; }\n\
             </style>\n</head>\n<body>\n",
        );
        out.push_str(&format!(
            "<header><h1>{}</h1><p>{}</p></header>\n<main>\n",
            escape(&self.title),
            escape(&self.subtitle)
        ));
        for panel in &self.panels {
            let class = if panel.wide { "wide" } else { "half" };
            out.push_str(&format!(
                "<section class=\"{class}\">\n<h2>{}</h2>\n",
                escape(&panel.title)
            ));
            match &panel.content {
                PanelContent::Svg(svg) | PanelContent::Html(svg) => out.push_str(svg),
                PanelContent::Text(t) => {
                    out.push_str("<pre>");
                    out.push_str(&escape(t));
                    out.push_str("</pre>\n");
                }
            }
            out.push_str("</section>\n");
        }
        out.push_str("</main>\n</body>\n</html>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dashboard {
        let mut d = Dashboard::new("INDICE — Torino", "public administration · district level");
        d.add_panel(
            "Cluster-marker map",
            PanelContent::Svg("<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>".into()),
            true,
        );
        d.add_panel(
            "EPH distribution",
            PanelContent::Svg("<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>".into()),
            false,
        );
        d.add_panel(
            "Rules",
            PanelContent::Html("<table class=\"rules\"></table>".into()),
            false,
        );
        d.add_panel(
            "Summary",
            PanelContent::Text("5 clusters\nK = 5".into()),
            false,
        );
        d
    }

    #[test]
    fn page_is_self_contained_html() {
        let html = sample().render_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<style>"));
        assert!(html.contains("INDICE — Torino"));
        assert!(html.contains("public administration · district level"));
        assert!(html.trim_end().ends_with("</html>"));
        // No external resources: no <script src>, <link> or <img>.
        for tag in ["<script", "<link", "<img"] {
            assert!(!html.contains(tag), "unexpected {tag}");
        }
    }

    #[test]
    fn panels_render_in_order_with_classes() {
        let html = sample().render_html();
        let map_pos = html.find("Cluster-marker map").unwrap();
        let dist_pos = html.find("EPH distribution").unwrap();
        let rules_pos = html.find("Rules").unwrap();
        assert!(map_pos < dist_pos && dist_pos < rules_pos);
        assert!(html.contains("section class=\"wide\""));
        assert!(html.contains("section class=\"half\""));
    }

    #[test]
    fn text_panels_are_escaped_in_pre() {
        let mut d = Dashboard::new("t", "s");
        d.add_panel("x", PanelContent::Text("a < b".into()), false);
        let html = d.render_html();
        assert!(html.contains("<pre>a &lt; b</pre>"));
    }

    #[test]
    fn counts() {
        let d = sample();
        assert_eq!(d.n_panels(), 4);
        assert_eq!(d.panels().len(), 4);
    }

    #[test]
    fn empty_dashboard_still_valid() {
        let html = Dashboard::new("empty", "").render_html();
        assert!(html.contains("<main>"));
        assert!(html.contains("</html>"));
    }
}
