//! Cluster-marker maps — the paper's novel map type (§2.3).
//!
//! "Cluster-marker maps, similarly to the choropleth maps, aggregate
//! multiple certificates coloring the dynamic markers according to the
//! average of the values of the aggregated points. … The cardinality of the
//! corresponding cluster affects the size of the marker and is reported
//! inside the marker."
//!
//! Aggregation uses the greedy grid algorithm of Leaflet.markercluster: the
//! canvas is covered by square cells whose size derives from the zoom level
//! (coarser zoom → bigger cells → fewer, larger markers); points sharing a
//! cell merge into one marker at their centroid.

use crate::color::ColorRamp;
use crate::legend::draw_legend;
use crate::scale::GeoProjection;
use crate::svg::SvgDocument;
use epc_geo::bbox::BoundingBox;
use epc_geo::point::GeoPoint;
use epc_model::Granularity;

/// One aggregated marker.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMarker {
    /// Centroid of the aggregated points.
    pub center: GeoPoint,
    /// Number of certificates aggregated (shown inside the marker).
    pub count: usize,
    /// Mean of the defined values of the aggregated points.
    pub mean_value: Option<f64>,
}

/// Grid cell size in px for a granularity's zoom level: coarser
/// granularities aggregate more aggressively.
pub fn cell_size_px(granularity: Granularity) -> f64 {
    match granularity {
        Granularity::City => 120.0,
        Granularity::District => 64.0,
        Granularity::Neighbourhood => 36.0,
        Granularity::HousingUnit => 14.0,
    }
}

/// Aggregates `(point, value)` pairs into cluster markers using grid cells
/// of `cell_px` pixels under `proj`.
pub fn cluster_markers(
    points: &[(GeoPoint, Option<f64>)],
    proj: &GeoProjection,
    cell_px: f64,
) -> Vec<ClusterMarker> {
    use std::collections::BTreeMap;
    // Ordered map: cells are drained into the marker list below, so the
    // pre-sort order must already be deterministic (D3).
    let mut cells: BTreeMap<(i64, i64), (Vec<GeoPoint>, Vec<f64>)> = BTreeMap::new();
    for (p, v) in points {
        let (x, y) = proj.project(p);
        let key = ((x / cell_px).floor() as i64, (y / cell_px).floor() as i64);
        let entry = cells.entry(key).or_default();
        entry.0.push(*p);
        if let Some(v) = v {
            entry.1.push(*v);
        }
    }
    let mut markers: Vec<ClusterMarker> = cells
        .into_values()
        .map(|(pts, vals)| ClusterMarker {
            center: GeoPoint::centroid(&pts).expect("non-empty cell"),
            count: pts.len(),
            mean_value: if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            },
        })
        .collect();
    // Deterministic order: biggest first (render small markers on top).
    markers.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.center.lat.partial_cmp(&b.center.lat).unwrap())
            .then(a.center.lon.partial_cmp(&b.center.lon).unwrap())
    });
    markers
}

/// A cluster-marker map under construction.
#[derive(Debug, Clone)]
pub struct ClusterMarkerMap {
    /// Map title.
    pub title: String,
    /// Legend label.
    pub value_label: String,
    /// Colour ramp for the mean value.
    pub ramp: ColorRamp,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Spatial granularity (drives the aggregation cell size).
    pub granularity: Granularity,
    points: Vec<(GeoPoint, Option<f64>)>,
}

impl ClusterMarkerMap {
    /// An empty map at the given granularity.
    pub fn new(title: &str, value_label: &str, granularity: Granularity) -> Self {
        ClusterMarkerMap {
            title: title.to_owned(),
            value_label: value_label.to_owned(),
            ramp: ColorRamp::energy(),
            width: 760.0,
            height: 560.0,
            granularity,
            points: Vec::new(),
        }
    }

    /// Adds one certificate.
    pub fn add_point(&mut self, point: GeoPoint, value: Option<f64>) {
        self.points.push((point, value));
    }

    /// Number of raw points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Computes the markers without rendering (used by tests and GeoJSON
    /// export).
    pub fn markers(&self) -> Vec<ClusterMarker> {
        let pts: Vec<GeoPoint> = self.points.iter().map(|(p, _)| *p).collect();
        let Some(bounds) = BoundingBox::from_points(&pts) else {
            return Vec::new();
        };
        let proj = GeoProjection::fit(
            bounds.with_margin(bounds.lat_span().max(1e-4) * 0.05),
            self.width,
            self.height - 120.0,
            12.0,
        );
        cluster_markers(&self.points, &proj, cell_size_px(self.granularity))
    }

    /// Renders the map to SVG: marker radius grows with `sqrt(count)`, the
    /// count is printed inside, the colour encodes the mean value.
    pub fn render(&self) -> String {
        let mut doc = SvgDocument::new(self.width, self.height);
        doc.rect(0.0, 0.0, self.width, self.height, "#f7f7f4", "none");
        doc.text(
            14.0,
            22.0,
            15.0,
            "start",
            &format!("{} ({} level)", self.title, self.granularity),
        );

        let pts: Vec<GeoPoint> = self.points.iter().map(|(p, _)| *p).collect();
        let Some(bounds) = BoundingBox::from_points(&pts) else {
            doc.text(
                self.width / 2.0,
                self.height / 2.0,
                13.0,
                "middle",
                "(no points)",
            );
            return doc.render();
        };
        let proj = GeoProjection::fit(
            bounds.with_margin(bounds.lat_span().max(1e-4) * 0.05),
            self.width,
            self.height - 120.0,
            12.0,
        );
        let markers = cluster_markers(&self.points, &proj, cell_size_px(self.granularity));

        let values: Vec<f64> = markers.iter().filter_map(|m| m.mean_value).collect();
        let (lo, hi) = if values.is_empty() {
            (0.0, 1.0)
        } else {
            (
                values.iter().copied().fold(f64::INFINITY, f64::min),
                values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            )
        };
        let max_count = markers.iter().map(|m| m.count).max().unwrap_or(1) as f64;
        for m in &markers {
            let (x, y) = proj.project(&m.center);
            let y = y + 30.0;
            let r = 8.0 + 20.0 * (m.count as f64 / max_count).sqrt();
            let color = match m.mean_value {
                Some(v) => self.ramp.map(v, lo, hi),
                None => crate::color::Color::new(0xbb, 0xbb, 0xbb),
            };
            doc.circle(x, y, r, &color.hex(), "#ffffff");
            doc.text_colored(
                x,
                y + 3.5,
                (r * 0.8).clamp(8.0, 14.0),
                "middle",
                color.contrast_text(),
                &m.count.to_string(),
            );
        }

        draw_legend(
            &mut doc,
            &self.ramp,
            lo,
            hi,
            &self.value_label,
            14.0,
            self.height - 48.0,
            220.0,
        );
        doc.text(
            self.width - 14.0,
            self.height - 14.0,
            10.0,
            "end",
            &format!(
                "{} certificates in {} markers",
                self.points.len(),
                markers.len()
            ),
        );
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_points(n: usize) -> Vec<(GeoPoint, Option<f64>)> {
        (0..n)
            .map(|i| {
                let a = ((i * 2654435761) % 1000) as f64 / 1000.0;
                let b = ((i * 40503 + 7) % 1000) as f64 / 1000.0;
                (
                    GeoPoint::new(45.0 + a * 0.1, 7.6 + b * 0.1),
                    Some(50.0 + (i % 200) as f64),
                )
            })
            .collect()
    }

    fn map_at(g: Granularity, n: usize) -> ClusterMarkerMap {
        let mut m = ClusterMarkerMap::new("EPH clusters", "EPH", g);
        for (p, v) in spread_points(n) {
            m.add_point(p, v);
        }
        m
    }

    #[test]
    fn marker_counts_sum_to_points() {
        for g in Granularity::ALL {
            let m = map_at(g, 500);
            let markers = m.markers();
            let total: usize = markers.iter().map(|mk| mk.count).sum();
            assert_eq!(total, 500, "granularity {g}");
        }
    }

    #[test]
    fn coarser_granularity_means_fewer_markers() {
        let city = map_at(Granularity::City, 800).markers().len();
        let district = map_at(Granularity::District, 800).markers().len();
        let unit = map_at(Granularity::HousingUnit, 800).markers().len();
        assert!(city < district, "city {city} vs district {district}");
        assert!(district < unit, "district {district} vs unit {unit}");
    }

    #[test]
    fn markers_are_sorted_biggest_first() {
        let markers = map_at(Granularity::City, 500).markers();
        for w in markers.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
    }

    #[test]
    fn mean_value_is_the_average_of_cell_members() {
        // All points identical location → one marker with the global mean.
        let mut m = ClusterMarkerMap::new("t", "v", Granularity::City);
        for v in [10.0, 20.0, 30.0] {
            m.add_point(GeoPoint::new(45.0, 7.6), Some(v));
        }
        m.add_point(GeoPoint::new(45.0, 7.6), None); // missing value
        let markers = m.markers();
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].count, 4);
        assert_eq!(markers[0].mean_value, Some(20.0));
    }

    #[test]
    fn render_shows_counts_inside_markers() {
        let m = map_at(Granularity::City, 300);
        let svg = m.render();
        let markers = m.markers();
        assert!(svg.contains(&markers[0].count.to_string()));
        assert!(svg.contains("city level"));
        assert!(svg.contains(&format!("300 certificates in {} markers", markers.len())));
    }

    #[test]
    fn bigger_clusters_get_bigger_radii() {
        // Radius formula is monotone in count; verify via rendered order.
        let m = map_at(Granularity::City, 400);
        let markers = m.markers();
        assert!(markers.first().unwrap().count >= markers.last().unwrap().count);
    }

    #[test]
    fn empty_map() {
        let m = ClusterMarkerMap::new("e", "v", Granularity::City);
        assert!(m.markers().is_empty());
        assert!(m.render().contains("(no points)"));
    }

    #[test]
    fn deterministic() {
        let a = map_at(Granularity::District, 250).markers();
        let b = map_at(Granularity::District, 250).markers();
        assert_eq!(a, b);
    }
}
