//! SVG rendering of the "graphic boxplot method" of §2.1.2: INDICE shows
//! the whiskers plot so the analyst can *see* the outliers she is about to
//! filter ("the analyst can manually remove the outliers … through value
//! filters").

use crate::legend::format_tick;
use crate::scale::LinearScale;
use crate::svg::SvgDocument;
use epc_stats::boxplot::BoxplotSummary;

/// A horizontal boxplot panel (one row per attribute).
#[derive(Debug, Clone)]
pub struct BoxplotPlot {
    /// Panel title.
    pub title: String,
    /// Canvas width.
    pub width: f64,
    /// Height per boxplot row.
    pub row_height: f64,
    rows: Vec<(String, BoxplotSummary, Vec<f64>)>,
}

impl BoxplotPlot {
    /// An empty panel.
    pub fn new(title: &str) -> Self {
        BoxplotPlot {
            title: title.to_owned(),
            width: 640.0,
            row_height: 64.0,
            rows: Vec::new(),
        }
    }

    /// Adds one attribute row: its summary plus the outlier *values* (the
    /// flagged points drawn individually, as Tukey prescribes).
    pub fn add_row(&mut self, label: &str, summary: BoxplotSummary, outlier_values: Vec<f64>) {
        self.rows.push((label.to_owned(), summary, outlier_values));
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the panel.
    pub fn render(&self) -> String {
        let header = 34.0;
        let height = header + self.rows.len() as f64 * self.row_height + 18.0;
        let mut doc = SvgDocument::new(self.width, height.max(80.0));
        doc.rect(0.0, 0.0, self.width, doc.height(), "#ffffff", "none");
        doc.text(14.0, 22.0, 14.0, "start", &self.title);
        if self.rows.is_empty() {
            doc.text(
                self.width / 2.0,
                doc.height() / 2.0,
                12.0,
                "middle",
                "(no data)",
            );
            return doc.render();
        }
        let label_w = 130.0;
        let plot_x0 = label_w;
        let plot_x1 = self.width - 20.0;

        for (i, (label, s, outliers)) in self.rows.iter().enumerate() {
            let y_mid = header + i as f64 * self.row_height + self.row_height / 2.0;
            // Per-row x scale spanning whiskers and outliers.
            let lo = outliers
                .iter()
                .copied()
                .fold(s.whisker_low, f64::min)
                .min(s.lower_fence.min(s.whisker_low));
            let hi = outliers
                .iter()
                .copied()
                .fold(s.whisker_high, f64::max)
                .max(s.upper_fence.max(s.whisker_high));
            let pad = ((hi - lo) * 0.05).max(1e-9);
            let x = LinearScale::new((lo - pad, hi + pad), (plot_x0, plot_x1));

            doc.text(label_w - 8.0, y_mid + 4.0, 11.0, "end", label);
            // Whisker line.
            doc.line(
                x.map(s.whisker_low),
                y_mid,
                x.map(s.whisker_high),
                y_mid,
                "#555555",
                1.0,
            );
            // Whisker caps.
            for v in [s.whisker_low, s.whisker_high] {
                doc.line(x.map(v), y_mid - 7.0, x.map(v), y_mid + 7.0, "#555555", 1.0);
            }
            // Box q1..q3.
            doc.rect(
                x.map(s.q1),
                y_mid - 12.0,
                (x.map(s.q3) - x.map(s.q1)).max(1.0),
                24.0,
                "#b8cbe0",
                "#39597e",
            );
            // Median line.
            doc.line(
                x.map(s.median),
                y_mid - 12.0,
                x.map(s.median),
                y_mid + 12.0,
                "#1f3a57",
                2.0,
            );
            // Outliers, individually.
            for &v in outliers {
                doc.circle(x.map(v), y_mid, 2.4, "#c0392b", "none");
            }
            // Min/max tick labels.
            doc.text(
                x.map(s.whisker_low),
                y_mid + 24.0,
                9.0,
                "middle",
                &format_tick(s.whisker_low),
            );
            doc.text(
                x.map(s.whisker_high),
                y_mid + 24.0,
                9.0,
                "middle",
                &format_tick(s.whisker_high),
            );
        }
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_stats::boxplot::boxplot_summary;

    fn summary_with_outliers() -> (BoxplotSummary, Vec<f64>) {
        let mut data: Vec<f64> = (0..100).map(|i| (i % 20) as f64).collect();
        data.push(200.0);
        data.push(-150.0);
        let s = boxplot_summary(&data, 1.5).unwrap();
        let outliers: Vec<f64> = s.outliers.iter().map(|&i| data[i]).collect();
        (s, outliers)
    }

    #[test]
    fn renders_box_whiskers_and_outliers() {
        let (s, outliers) = summary_with_outliers();
        let n_outliers = outliers.len();
        let mut p = BoxplotPlot::new("u_windows");
        p.add_row("u_windows", s, outliers);
        let svg = p.render();
        assert!(svg.contains("<svg"));
        // 1 background + 1 box.
        assert_eq!(svg.matches("<rect").count(), 2);
        assert_eq!(svg.matches("<circle").count(), n_outliers);
        assert!(svg.contains("u_windows"));
    }

    #[test]
    fn multiple_rows_stack() {
        let (s, o) = summary_with_outliers();
        let mut p = BoxplotPlot::new("thermo-physical attributes");
        p.add_row("a", s.clone(), o.clone());
        p.add_row("b", s, o);
        assert_eq!(p.n_rows(), 2);
        let svg = p.render();
        assert_eq!(svg.matches("<rect").count(), 3, "background + 2 boxes");
    }

    #[test]
    fn empty_panel_placeholder() {
        let p = BoxplotPlot::new("empty");
        assert!(p.render().contains("(no data)"));
    }

    #[test]
    fn no_outliers_row_renders() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let s = boxplot_summary(&data, 1.5).unwrap();
        assert!(s.outliers.is_empty());
        let mut p = BoxplotPlot::new("clean");
        p.add_row("x", s, vec![]);
        let svg = p.render();
        assert_eq!(svg.matches("<circle").count(), 0);
        assert!(svg.contains("<line"));
    }
}
