//! The correlation plot matrix of Figure 3.
//!
//! "Each coefficient value is translated into a gray level in the
//! black-and-white scale to represent the correlation intensity in a plot
//! matrix. Dark squares represent high linear correlation between the two
//! variables, while light squares represent low correlation."

use crate::color::ColorRamp;
use crate::svg::SvgDocument;
use epc_stats::correlation::CorrelationMatrix;

/// Renders a [`CorrelationMatrix`] as the paper's grayscale plot matrix.
#[derive(Debug, Clone)]
pub struct CorrelationPlot {
    /// Plot title.
    pub title: String,
    /// Cell size in px.
    pub cell: f64,
    /// Print the ρ value inside each cell.
    pub annotate: bool,
}

impl Default for CorrelationPlot {
    fn default() -> Self {
        CorrelationPlot {
            title: "Correlation matrix".to_owned(),
            cell: 56.0,
            annotate: true,
        }
    }
}

impl CorrelationPlot {
    /// Renders the matrix to SVG.
    pub fn render(&self, matrix: &CorrelationMatrix) -> String {
        let n = matrix.len();
        let label_w = 120.0;
        let title_h = 30.0;
        let width = label_w + n as f64 * self.cell + 20.0;
        let height = title_h + n as f64 * self.cell + label_w * 0.6 + 20.0;
        let mut doc = SvgDocument::new(width.max(200.0), height.max(120.0));
        doc.rect(0.0, 0.0, doc.width(), doc.height(), "#ffffff", "none");
        doc.text(12.0, 20.0, 14.0, "start", &self.title);
        if n == 0 {
            doc.text(
                doc.width() / 2.0,
                doc.height() / 2.0,
                12.0,
                "middle",
                "(no variables)",
            );
            return doc.render();
        }
        let ramp = ColorRamp::grayscale();

        for i in 0..n {
            // Row label.
            doc.text(
                label_w - 6.0,
                title_h + i as f64 * self.cell + self.cell / 2.0 + 4.0,
                10.0,
                "end",
                &matrix.names[i],
            );
            // Column label (under the matrix, shifted per column for
            // readability without rotation support).
            doc.text(
                label_w + i as f64 * self.cell + self.cell / 2.0,
                title_h + n as f64 * self.cell + 14.0 + (i % 2) as f64 * 12.0,
                10.0,
                "middle",
                &matrix.names[i],
            );
            for j in 0..n {
                let rho = matrix.get(i, j);
                let x = label_w + j as f64 * self.cell;
                let y = title_h + i as f64 * self.cell;
                if rho.is_nan() {
                    doc.rect(x, y, self.cell - 2.0, self.cell - 2.0, "#f0e8e8", "#999999");
                    doc.text(
                        x + self.cell / 2.0,
                        y + self.cell / 2.0 + 4.0,
                        10.0,
                        "middle",
                        "n/a",
                    );
                } else {
                    let color = ramp.sample(rho.abs());
                    doc.rect(
                        x,
                        y,
                        self.cell - 2.0,
                        self.cell - 2.0,
                        &color.hex(),
                        "#999999",
                    );
                    if self.annotate {
                        doc.text_colored(
                            x + self.cell / 2.0,
                            y + self.cell / 2.0 + 4.0,
                            10.0,
                            "middle",
                            color.contrast_text(),
                            &format!("{rho:.2}"),
                        );
                    }
                }
            }
        }
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_stats::correlation::correlation_matrix;

    fn matrix() -> CorrelationMatrix {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.1, 5.9, 8.2, 9.9]; // ~perfect with a
        let c = [3.0, -1.0, 2.5, 0.5, 1.0]; // weak
        correlation_matrix(&["aspect_ratio", "u_opaque", "u_windows"], &[&a, &b, &c])
    }

    #[test]
    fn renders_n_squared_cells() {
        let svg = CorrelationPlot::default().render(&matrix());
        // 3×3 cells + 1 background rect.
        assert_eq!(svg.matches("<rect").count(), 10);
        assert!(svg.contains("aspect_ratio"));
        assert!(svg.contains("u_windows"));
    }

    #[test]
    fn diagonal_is_black_annotated_one() {
        let svg = CorrelationPlot::default().render(&matrix());
        assert!(svg.contains("#000000"), "|ρ| = 1 must be black");
        assert!(svg.contains("1.00"));
    }

    #[test]
    fn strong_pairs_are_darker_than_weak() {
        let m = matrix();
        let ramp = ColorRamp::grayscale();
        let strong = ramp.sample(m.get(0, 1).abs());
        let weak = ramp.sample(m.get(0, 2).abs());
        assert!(strong.r < weak.r, "dark = high correlation");
    }

    #[test]
    fn annotations_can_be_disabled() {
        let plot = CorrelationPlot {
            annotate: false,
            ..CorrelationPlot::default()
        };
        let svg = plot.render(&matrix());
        assert!(!svg.contains("1.00"));
    }

    #[test]
    fn nan_cells_render_na() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        let m = correlation_matrix(&["const", "x"], &[&a, &b]);
        let svg = CorrelationPlot::default().render(&m);
        assert!(svg.contains("n/a"));
    }

    #[test]
    fn empty_matrix_placeholder() {
        let m = correlation_matrix(&[], &[]);
        let svg = CorrelationPlot::default().render(&m);
        assert!(svg.contains("(no variables)"));
    }
}
