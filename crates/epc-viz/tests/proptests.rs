//! Property-based tests of the visualization substrate: SVG escaping and
//! balance over arbitrary text, colour-ramp bounds, scale round-trips, and
//! marker-clustering mass conservation.

use epc_geo::bbox::BoundingBox;
use epc_geo::point::GeoPoint;
use epc_viz::clustermarker::cluster_markers;
use epc_viz::color::{Color, ColorRamp};
use epc_viz::scale::{GeoProjection, LinearScale};
use epc_viz::svg::{escape, SvgDocument};
use proptest::prelude::*;

fn geo_point() -> impl Strategy<Value = GeoPoint> {
    (44.9f64..45.3, 7.5f64..7.9).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn escape_output_has_no_raw_specials(s in "[ -~]{0,60}") {
        let e = escape(&s);
        prop_assert!(!e.contains('<'));
        prop_assert!(!e.contains('>'));
        // '&' may only appear as the start of an entity we produced.
        let mut rest = e.as_str();
        while let Some(pos) = rest.find('&') {
            let tail = &rest[pos..];
            prop_assert!(
                tail.starts_with("&amp;")
                    || tail.starts_with("&lt;")
                    || tail.starts_with("&gt;")
                    || tail.starts_with("&quot;")
                    || tail.starts_with("&apos;"),
                "stray & in {e:?}"
            );
            rest = &tail[1..];
        }
    }

    #[test]
    fn svg_text_with_arbitrary_content_stays_balanced(s in "[ -~]{0,60}") {
        let mut doc = SvgDocument::new(100.0, 100.0);
        doc.text(10.0, 10.0, 12.0, "start", &s);
        let svg = doc.render();
        prop_assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
        prop_assert_eq!(svg.matches("<svg").count(), 1);
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn ramp_samples_are_valid_hex(t in -2.0f64..3.0) {
        for ramp in [ColorRamp::energy(), ColorRamp::grayscale()] {
            let c = ramp.sample(t);
            let hex = c.hex();
            prop_assert_eq!(hex.len(), 7);
            prop_assert!(hex.starts_with('#'));
            prop_assert!(hex[1..].chars().all(|ch| ch.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn lerp_stays_within_channel_bounds(
        r1 in 0u8..=255, g1 in 0u8..=255, b1 in 0u8..=255,
        r2 in 0u8..=255, g2 in 0u8..=255, b2 in 0u8..=255,
        t in -1.0f64..2.0,
    ) {
        let a = Color::new(r1, g1, b1);
        let b = Color::new(r2, g2, b2);
        let c = Color::lerp(a, b, t);
        prop_assert!(c.r >= a.r.min(b.r) && c.r <= a.r.max(b.r));
        prop_assert!(c.g >= a.g.min(b.g) && c.g <= a.g.max(b.g));
        prop_assert!(c.b >= a.b.min(b.b) && c.b <= a.b.max(b.b));
    }

    #[test]
    fn linear_scale_round_trips(d0 in -1e6f64..1e6, span in 1e-3f64..1e6, r0 in -1e4f64..1e4, rspan in 1e-3f64..1e4, x in -1e6f64..1e6) {
        let s = LinearScale::new((d0, d0 + span), (r0, r0 + rspan));
        let back = s.invert(s.map(x));
        prop_assert!((back - x).abs() < 1e-6 * (1.0 + x.abs()), "{back} vs {x}");
    }

    #[test]
    fn projection_keeps_bounds_points_on_canvas(pts in prop::collection::vec(geo_point(), 2..40)) {
        let bounds = BoundingBox::from_points(&pts).unwrap();
        let proj = GeoProjection::fit(bounds, 800.0, 600.0, 10.0);
        for p in &pts {
            let (x, y) = proj.project(p);
            prop_assert!((-1.0..=801.0).contains(&x), "x = {x}");
            prop_assert!((-1.0..=601.0).contains(&y), "y = {y}");
        }
    }

    #[test]
    fn marker_clustering_conserves_mass(
        pts in prop::collection::vec((geo_point(), prop::option::of(0.0f64..500.0)), 1..150),
        cell in 8.0f64..200.0,
    ) {
        let geo: Vec<GeoPoint> = pts.iter().map(|(p, _)| *p).collect();
        let bounds = BoundingBox::from_points(&geo).unwrap().with_margin(1e-6);
        let proj = GeoProjection::fit(bounds, 760.0, 560.0, 12.0);
        let markers = cluster_markers(&pts, &proj, cell);
        prop_assert_eq!(markers.iter().map(|m| m.count).sum::<usize>(), pts.len());
        // Every marker mean is within the global value range.
        let values: Vec<f64> = pts.iter().filter_map(|(_, v)| *v).collect();
        if !values.is_empty() {
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for m in &markers {
                if let Some(v) = m.mean_value {
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
            }
        }
        // Every marker centre is inside the original bounding box.
        for m in &markers {
            prop_assert!(bounds.contains(&m.center));
        }
    }
}
