//! Black-box integration tests of the `indice` binary: the full
//! generate → describe → clean → run loop through real process invocations.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_indice")
}

fn run_cli(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary launches")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indice-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let o = run_cli(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("USAGE"));
    // No args is help too.
    let o = run_cli(&[]);
    assert!(o.status.success());
}

#[test]
fn unknown_command_fails_with_usage() {
    let o = run_cli(&["frobnicate"]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_input_file_is_a_clean_error() {
    let o = run_cli(&["describe", "--data", "/nonexistent/path.csv"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("reading /nonexistent/path.csv"));
}

#[test]
fn generate_describe_clean_run_round_trip() {
    let data_dir = tmp_dir("data");
    let out_dir = tmp_dir("out");

    // generate
    let o = run_cli(&[
        "generate",
        "--records",
        "800",
        "--seed",
        "5",
        "--out-dir",
        data_dir.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "generate failed: {}", stderr(&o));
    assert!(stdout(&o).contains("800 certificates"));
    for f in ["epcs.csv", "street_map.txt", "regions.json"] {
        assert!(data_dir.join(f).exists(), "missing {f}");
    }

    // describe
    let csv = data_dir.join("epcs.csv");
    let o = run_cli(&["describe", "--data", csv.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    let text = stdout(&o);
    assert!(text.contains("800 rows x 132 attributes"));
    assert!(text.contains("u_windows"));

    // clean
    let cleaned = out_dir.join("cleaned.csv");
    let o = run_cli(&[
        "clean",
        "--data",
        csv.to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--out",
        cleaned.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "clean failed: {}", stderr(&o));
    assert!(stdout(&o).contains("cleaned 800 records"));
    assert!(cleaned.exists());

    // suggest-config
    let o = run_cli(&["suggest-config", "--data", csv.to_str().unwrap()]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("auto-configuration advice"));

    // run (citizen profile is the fastest)
    let o = run_cli(&[
        "run",
        "--data",
        csv.to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--regions",
        data_dir.join("regions.json").to_str().unwrap(),
        "--stakeholder",
        "citizen",
        "--out-dir",
        out_dir.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "run failed: {}", stderr(&o));
    assert_eq!(o.status.code(), Some(0), "clean run exits 0");
    let text = stdout(&o);
    assert!(text.contains("pipeline done"));
    assert!(text.contains("quarantine: empty"));
    assert!(text.contains("outcome: complete"));
    let dashboard = out_dir.join("dashboard.html");
    assert!(dashboard.exists());
    let html = std::fs::read_to_string(dashboard).unwrap();
    assert!(html.contains("INDICE"));
    assert!(html.contains("</html>"));

    cleanup(&data_dir);
    cleanup(&out_dir);
}

#[test]
fn fault_injected_run_exits_degraded_with_partial_output() {
    let data_dir = tmp_dir("chaos-data");
    let out_dir = tmp_dir("chaos-out");
    let o = run_cli(&[
        "generate",
        "--records",
        "600",
        "--seed",
        "5",
        "--out-dir",
        data_dir.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "generate failed: {}", stderr(&o));

    let o = run_cli(&[
        "run",
        "--data",
        data_dir.join("epcs.csv").to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--regions",
        data_dir.join("regions.json").to_str().unwrap(),
        "--stakeholder",
        "citizen",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--fault-seed",
        "7",
        "--fault-rate",
        "0.2",
        "--geocode-fail-rate",
        "0.1",
    ]);
    assert_eq!(
        o.status.code(),
        Some(3),
        "fault-injected run must exit degraded; stderr: {}",
        stderr(&o)
    );
    let text = stdout(&o);
    assert!(text.contains("quarantined"), "report shows quarantine");
    assert!(text.contains("outcome: degraded"));
    // Partial output is still written.
    assert!(out_dir.join("dashboard.html").exists());

    // Same seed + rates reproduce the same summary.
    let again = run_cli(&[
        "run",
        "--data",
        data_dir.join("epcs.csv").to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--regions",
        data_dir.join("regions.json").to_str().unwrap(),
        "--stakeholder",
        "citizen",
        "--out-dir",
        out_dir.to_str().unwrap(),
        "--fault-seed",
        "7",
        "--fault-rate",
        "0.2",
        "--geocode-fail-rate",
        "0.1",
    ]);
    assert_eq!(again.status.code(), Some(3));
    // The fault summary (not the wall times) is reproducible.
    let summary = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| {
                l.starts_with("quarantine:")
                    || l.starts_with("degraded")
                    || l.starts_with("outcome:")
            })
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        summary(&text),
        summary(&stdout(&again)),
        "chaos runs are reproducible"
    );

    cleanup(&data_dir);
    cleanup(&out_dir);
}

#[test]
fn corrupt_street_map_is_rejected() {
    let dir = tmp_dir("corrupt");
    let csv = dir.join("epcs.csv");
    // Minimal valid generate first.
    let o = run_cli(&[
        "generate",
        "--records",
        "50",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(o.status.success());
    std::fs::write(dir.join("bad_streets.txt"), "not a street map\n").unwrap();
    let o = run_cli(&[
        "clean",
        "--data",
        csv.to_str().unwrap(),
        "--streets",
        dir.join("bad_streets.txt").to_str().unwrap(),
        "--out",
        dir.join("c.csv").to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unexpected header"));
    cleanup(&dir);
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}
