//! Exit-code matrix of the `indice run` supervisor (ISSUE 5): one table
//! driving the binary through every outcome class — 0 complete, 3
//! degraded, 1 failed (data-quality circuit breaker), 70 injected crash.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_indice")
}

fn run_cli(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary launches")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indice-exit-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

/// Generates the shared 600-record seed-5 collection used by every row.
fn generate_data(dir: &Path) {
    let o = run_cli(&[
        "generate",
        "--records",
        "600",
        "--seed",
        "5",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "generate failed: {}", stderr(&o));
}

#[test]
fn run_exit_code_matrix() {
    let data_dir = tmp_dir("data");
    generate_data(&data_dir);

    // (case name, extra flags, expected exit code, expected stream text)
    let matrix: &[(&str, &[&str], i32, &str)] = &[
        ("complete", &[], 0, "outcome: complete"),
        (
            "degraded",
            &[
                "--fault-seed",
                "7",
                "--fault-rate",
                "0.2",
                "--geocode-fail-rate",
                "0.1",
            ],
            3,
            "outcome: degraded",
        ),
        (
            "failed-circuit-breaker",
            &[
                "--fault-seed",
                "7",
                "--fault-rate",
                "0.2",
                "--max-quarantine-frac",
                "0.0",
            ],
            1,
            "exceeds --max-quarantine-frac",
        ),
        (
            "crashed",
            &["--crash-at", "preprocess:after"],
            70,
            "injected crash fired at stage 'preprocess'",
        ),
    ];

    for (name, extra, expected_code, expected_text) in matrix {
        let out_dir = tmp_dir(&format!("out-{name}"));
        let mut args = vec![
            "run".to_owned(),
            "--data".to_owned(),
            data_dir.join("epcs.csv").to_str().unwrap().to_owned(),
            "--streets".to_owned(),
            data_dir.join("street_map.txt").to_str().unwrap().to_owned(),
            "--regions".to_owned(),
            data_dir.join("regions.json").to_str().unwrap().to_owned(),
            "--stakeholder".to_owned(),
            "citizen".to_owned(),
            "--out-dir".to_owned(),
            out_dir.to_str().unwrap().to_owned(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let o = run_cli(&arg_refs);
        assert_eq!(
            o.status.code(),
            Some(*expected_code),
            "case {name}: expected exit {expected_code}; stderr: {}",
            stderr(&o)
        );
        let combined = format!(
            "{}{}",
            String::from_utf8_lossy(&o.stdout),
            String::from_utf8_lossy(&o.stderr)
        );
        assert!(
            combined.contains(expected_text),
            "case {name}: missing {expected_text:?} in output:\n{combined}"
        );
        let _ = std::fs::remove_dir_all(&out_dir);
    }

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn run_writes_metrics_and_trace_snapshots() {
    let data_dir = tmp_dir("obs-data");
    generate_data(&data_dir);
    let out_dir = tmp_dir("obs-out");
    let metrics_json = out_dir.join("metrics.json");
    let metrics_prom = out_dir.join("metrics.prom");
    let trace = out_dir.join("trace.jsonl");

    let o = run_cli(&[
        "run",
        "--data",
        data_dir.join("epcs.csv").to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--regions",
        data_dir.join("regions.json").to_str().unwrap(),
        "--stakeholder",
        "citizen",
        "--out-dir",
        out_dir.join("run1").to_str().unwrap(),
        "--metrics-out",
        metrics_json.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));

    let metrics = std::fs::read_to_string(&metrics_json).unwrap();
    assert!(metrics.starts_with('{'), "JSON codec for .json paths");
    assert!(metrics.contains("\"stage_preprocess_records_in\""));
    assert!(metrics.contains("\"checkpoint_files_total\""));

    let trace_text = std::fs::read_to_string(&trace).unwrap();
    assert!(trace_text.contains("\"name\": \"stage:preprocess\""));
    assert!(trace_text.contains("\"name\": \"journal:commit\""));
    assert!(trace_text.contains("\"wall_ms\""));
    // Dense logical sequence numbers from zero.
    for (i, line) in trace_text.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\": {i}, ")),
            "line {i} out of sequence: {line}"
        );
    }

    // Any non-.json extension selects the Prometheus-style exposition.
    let o = run_cli(&[
        "run",
        "--data",
        data_dir.join("epcs.csv").to_str().unwrap(),
        "--streets",
        data_dir.join("street_map.txt").to_str().unwrap(),
        "--regions",
        data_dir.join("regions.json").to_str().unwrap(),
        "--stakeholder",
        "citizen",
        "--out-dir",
        out_dir.join("run2").to_str().unwrap(),
        "--metrics-out",
        metrics_prom.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let prom = std::fs::read_to_string(&metrics_prom).unwrap();
    assert!(prom.contains("# TYPE"), "text exposition has TYPE comments");
    assert!(prom.contains("stage_preprocess_records_in"));

    let _ = std::fs::remove_dir_all(&data_dir);
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn bench_emits_snapshot_and_exits_by_outcome() {
    let dir = tmp_dir("bench");
    let out = dir.join("BENCH_5.json");
    let o = run_cli(&[
        "bench",
        "--records",
        "500",
        "--seed",
        "5",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let snap = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"schema\": \"indice-bench/2\"",
        "\"engines_match\": true",
        "\"records\": 500",
        "\"engine\": \"row\"",
        "\"stages\": [",
        "\"name\": \"preprocess\"",
        "\"name\": \"analytics\"",
        "\"name\": \"dashboard\"",
        "\"total_wall_ms\":",
        "\"records_per_sec\":",
        "\"peak_shard_imbalance\":",
        "\"kept_records\":",
        "\"outcome\": \"complete\"",
    ] {
        assert!(snap.contains(key), "missing {key} in snapshot:\n{snap}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_multi_engine_runs_match() {
    let dir = tmp_dir("bench-engines");
    let out = dir.join("BENCH_ENGINES.json");
    let o = run_cli(&[
        "bench",
        "--records",
        "400",
        "--seed",
        "5",
        "--engines",
        "row,columnar",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(o.status.code(), Some(0), "{}", stderr(&o));
    let snap = std::fs::read_to_string(&out).unwrap();
    for key in [
        "\"schema\": \"indice-bench/2\"",
        "\"engines_match\": true",
        "\"engine\": \"row\"",
        "\"engine\": \"columnar\"",
    ] {
        assert!(snap.contains(key), "missing {key} in snapshot:\n{snap}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
