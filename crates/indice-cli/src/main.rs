//! `indice` — the command-line interface of the INDICE reproduction.
//!
//! ```sh
//! indice generate --records 25000 --out-dir data/
//! indice describe --data data/epcs.csv
//! indice run --data data/epcs.csv --streets data/street_map.txt \
//!            --regions data/regions.json --stakeholder pa --out-dir out/
//! indice suggest-config --data data/epcs.csv
//! ```

mod args;

use args::{parse_args, Command, NoisePreset, USAGE};
use epc_faults::{Corruption, DeterministicInjector};
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_model::{Dataset, Quarantine};
use epc_synth::noise::{apply_noise, NoiseConfig};
use epc_synth::{EpcGenerator, SynthConfig};
use indice::autoconfig::suggest_config;
use indice::config::IndiceConfig;
use indice::engine::Indice;
use indice::pipeline::RunOutcome;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match execute(command) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn execute(command: Command) -> Result<ExitCode, String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Generate {
            records,
            seed,
            noise,
            out_dir,
        } => generate(records, seed, noise, &out_dir).map(|()| ExitCode::SUCCESS),
        Command::Describe { data } => {
            let dataset = load_dataset(&data)?;
            print_out(&epc_query::report::describe_text(&dataset));
            Ok(ExitCode::SUCCESS)
        }
        Command::Run {
            data,
            streets,
            regions,
            stakeholder,
            out_dir,
            fault_seed,
            fault_rate,
            geocode_fail_rate,
        } => run(
            &data,
            &streets,
            &regions,
            stakeholder,
            &out_dir,
            fault_seed,
            fault_rate,
            geocode_fail_rate,
        ),
        Command::Clean { data, streets, out } => {
            let dataset = load_dataset(&data)?;
            let street_text =
                fs::read_to_string(&streets).map_err(|e| format!("reading {streets}: {e}"))?;
            let street_map = StreetMap::from_text(&street_text)?;
            let result = indice::preprocess::preprocess_with_runtime(
                dataset,
                &street_map,
                &IndiceConfig::default(),
                &epc_runtime::RuntimeConfig::from_env(),
            )
            .map_err(|e| format!("cleaning failed: {e}"))?;
            fs::write(&out, epc_model::csv::to_csv(&result.dataset))
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "cleaned {} records ({} resolved by reference, {} by geocoder, {} unresolved); \
removed {} outliers; wrote {} rows to {out}",
                result.cleaning.total,
                result.cleaning.by_reference,
                result.cleaning.by_geocoder,
                result.cleaning.unresolved,
                result.removed_rows.len(),
                result.dataset.n_rows(),
            );
            Ok(ExitCode::SUCCESS)
        }
        Command::SuggestConfig { data } => {
            let dataset = load_dataset(&data)?;
            let advice = suggest_config(&dataset, &IndiceConfig::default());
            println!("auto-configuration advice ({} records):", dataset.n_rows());
            for a in &advice.attribute_advice {
                println!(
                    "  {:<18} -> {:<8} ({})",
                    a.attribute,
                    a.method.name(),
                    a.rationale
                );
            }
            println!(
                "  K sweep: {:?}; min rule support: {}; geocoder quota: {}",
                advice.config.analytics.k,
                advice.config.rule_stage.rules.min_support,
                advice.config.geocoder_quota
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn generate(records: usize, seed: u64, noise: NoisePreset, out_dir: &str) -> Result<(), String> {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: records,
        seed,
        ..SynthConfig::default()
    })
    .generate();
    match noise {
        NoisePreset::None => {}
        NoisePreset::Default => apply_noise(&mut collection, &NoiseConfig::default()),
        NoisePreset::Heavy => apply_noise(
            &mut collection,
            &NoiseConfig {
                typo_rate: 0.35,
                abbreviation_rate: 0.2,
                zip_missing_rate: 0.12,
                coord_missing_rate: 0.1,
                coord_wrong_rate: 0.06,
                ..NoiseConfig::default()
            },
        ),
    }
    let dir = Path::new(out_dir);
    fs::create_dir_all(dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    fs::write(
        dir.join("epcs.csv"),
        epc_model::csv::to_csv(&collection.dataset),
    )
    .map_err(|e| format!("writing epcs.csv: {e}"))?;
    fs::write(
        dir.join("street_map.txt"),
        collection.city.street_map.to_text()?,
    )
    .map_err(|e| format!("writing street_map.txt: {e}"))?;
    let regions = serde_json::to_string_pretty(&collection.city.hierarchy)
        .map_err(|e| format!("serializing regions: {e}"))?;
    fs::write(dir.join("regions.json"), regions)
        .map_err(|e| format!("writing regions.json: {e}"))?;
    println!(
        "wrote {} certificates, {} street entries, {} regions to {out_dir}/",
        collection.dataset.n_rows(),
        collection.city.street_map.len(),
        collection.city.hierarchy.districts.len() + collection.city.hierarchy.neighbourhoods.len()
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run(
    data: &str,
    streets: &str,
    regions: &str,
    stakeholder: epc_query::Stakeholder,
    out_dir: &str,
    fault_seed: u64,
    fault_rate: f64,
    geocode_fail_rate: f64,
) -> Result<ExitCode, String> {
    // Lenient load: unparsable CSV rows are quarantined, not fatal.
    let (dataset, mut quarantine) = load_dataset_lenient(data)?;
    let street_text = fs::read_to_string(streets).map_err(|e| format!("reading {streets}: {e}"))?;
    let street_map = StreetMap::from_text(&street_text)?;
    let regions_text =
        fs::read_to_string(regions).map_err(|e| format!("reading {regions}: {e}"))?;
    let hierarchy: RegionHierarchy =
        serde_json::from_str(&regions_text).map_err(|e| format!("parsing {regions}: {e}"))?;

    let mut config = IndiceConfig::default();
    // Retry budget for transient geocoder failures: INDICE_GEOCODE_RETRIES.
    config.fault_tolerance.geocode_retries = epc_geo::geocode::geocode_retries_from_env();

    // Thread budget comes from INDICE_THREADS (default: all hardware
    // threads); outputs are identical either way, only wall time changes.
    let engine = Indice::new(dataset, street_map, hierarchy, config)
        .with_runtime(epc_runtime::RuntimeConfig::from_env());

    let injector = if fault_rate > 0.0 || geocode_fail_rate > 0.0 {
        Some(
            DeterministicInjector::new(fault_seed)
                .with_record_rate(fault_rate)
                .with_corruption(Corruption::NonFinite {
                    attribute: epc_model::wellknown::ASPECT_RATIO.to_owned(),
                })
                .with_geocode_rate(geocode_fail_rate),
        )
    } else {
        None
    };
    let output = match &injector {
        Some(inj) => engine.run_supervised_with_faults(stakeholder, inj),
        None => engine.run_supervised(stakeholder),
    };
    quarantine.merge(output.quarantine);

    if let RunOutcome::Failed(e) = &output.outcome {
        print!("{}", output.report);
        eprintln!("pipeline failed: {e}");
        return Ok(ExitCode::FAILURE);
    }

    let dir = Path::new(out_dir);
    fs::create_dir_all(dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    if let Some(dashboard) = &output.dashboard {
        fs::write(dir.join("dashboard.html"), dashboard.render_html())
            .map_err(|e| format!("writing dashboard: {e}"))?;
    }
    for (name, content) in &output.artifacts {
        fs::write(dir.join(name), content).map_err(|e| format!("writing {name}: {e}"))?;
    }
    print!("{}", output.report);
    let kept = output
        .preprocess
        .as_ref()
        .map(|p| p.dataset.n_rows())
        .unwrap_or(0);
    match &output.analytics {
        Some(analytics) => println!(
            "pipeline done: {kept} records kept, K = {}, {} rules; dashboard + {} artifacts in {out_dir}/",
            analytics.chosen_k,
            analytics.rules.len(),
            output.artifacts.len()
        ),
        None => println!(
            "pipeline done: {kept} records kept, analytics unavailable; dashboard + {} artifacts in {out_dir}/",
            output.artifacts.len()
        ),
    }
    // Fault-tolerance summary: what was diverted, degraded, or skipped.
    println!("{quarantine}");
    if let Some(p) = &output.preprocess {
        if p.cleaning.degraded > 0 {
            println!(
                "degraded records: {} geocoded to district centroids after {} retries",
                p.cleaning.degraded,
                engine.config().fault_tolerance.geocode_retries
            );
        }
    }
    if !output.degraded_stages.is_empty() {
        println!("degraded stages: {}", output.degraded_stages.join(", "));
    }
    println!("outcome: {}", output.outcome);
    Ok(ExitCode::from(output.outcome.exit_code()))
}

/// Writes to stdout ignoring broken pipes (`indice describe | head` must
/// not panic).
fn print_out(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = epc_model::schema::standard_epc_schema();
    epc_model::csv::from_csv(schema, &text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Like [`load_dataset`], but unparsable rows are quarantined instead of
/// failing the whole load.
fn load_dataset_lenient(path: &str) -> Result<(Dataset, Quarantine), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = epc_model::schema::standard_epc_schema();
    let mut quarantine = Quarantine::new();
    let dataset = epc_model::csv::from_csv_lenient(schema, &text, &mut quarantine)
        .map_err(|e| format!("parsing {path}: {e}"))?;
    Ok((dataset, quarantine))
}
