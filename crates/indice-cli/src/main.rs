//! `indice` — the command-line interface of the INDICE reproduction.
//!
//! ```sh
//! indice generate --records 25000 --out-dir data/
//! indice describe --data data/epcs.csv
//! indice run --data data/epcs.csv --streets data/street_map.txt \
//!            --regions data/regions.json --stakeholder pa --out-dir out/
//! indice suggest-config --data data/epcs.csv
//! ```

mod args;

use args::{parse_args, Command, NoisePreset, USAGE};
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_model::Dataset;
use epc_synth::noise::{apply_noise, NoiseConfig};
use epc_synth::{EpcGenerator, SynthConfig};
use indice::autoconfig::suggest_config;
use indice::config::IndiceConfig;
use indice::engine::Indice;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match execute(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn execute(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Generate {
            records,
            seed,
            noise,
            out_dir,
        } => generate(records, seed, noise, &out_dir),
        Command::Describe { data } => {
            let dataset = load_dataset(&data)?;
            print_out(&epc_query::report::describe_text(&dataset));
            Ok(())
        }
        Command::Run {
            data,
            streets,
            regions,
            stakeholder,
            out_dir,
        } => run(&data, &streets, &regions, stakeholder, &out_dir),
        Command::Clean { data, streets, out } => {
            let dataset = load_dataset(&data)?;
            let street_text =
                fs::read_to_string(&streets).map_err(|e| format!("reading {streets}: {e}"))?;
            let street_map = StreetMap::from_text(&street_text)?;
            let result = indice::preprocess::preprocess_with_runtime(
                dataset,
                &street_map,
                &IndiceConfig::default(),
                &epc_runtime::RuntimeConfig::from_env(),
            )
            .map_err(|e| format!("cleaning failed: {e}"))?;
            fs::write(&out, epc_model::csv::to_csv(&result.dataset))
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "cleaned {} records ({} resolved by reference, {} by geocoder, {} unresolved); \
removed {} outliers; wrote {} rows to {out}",
                result.cleaning.total,
                result.cleaning.by_reference,
                result.cleaning.by_geocoder,
                result.cleaning.unresolved,
                result.removed_rows.len(),
                result.dataset.n_rows(),
            );
            Ok(())
        }
        Command::SuggestConfig { data } => {
            let dataset = load_dataset(&data)?;
            let advice = suggest_config(&dataset, &IndiceConfig::default());
            println!("auto-configuration advice ({} records):", dataset.n_rows());
            for a in &advice.attribute_advice {
                println!(
                    "  {:<18} -> {:<8} ({})",
                    a.attribute,
                    a.method.name(),
                    a.rationale
                );
            }
            println!(
                "  K sweep: {:?}; min rule support: {}; geocoder quota: {}",
                advice.config.analytics.k,
                advice.config.rule_stage.rules.min_support,
                advice.config.geocoder_quota
            );
            Ok(())
        }
    }
}

fn generate(records: usize, seed: u64, noise: NoisePreset, out_dir: &str) -> Result<(), String> {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: records,
        seed,
        ..SynthConfig::default()
    })
    .generate();
    match noise {
        NoisePreset::None => {}
        NoisePreset::Default => apply_noise(&mut collection, &NoiseConfig::default()),
        NoisePreset::Heavy => apply_noise(
            &mut collection,
            &NoiseConfig {
                typo_rate: 0.35,
                abbreviation_rate: 0.2,
                zip_missing_rate: 0.12,
                coord_missing_rate: 0.1,
                coord_wrong_rate: 0.06,
                ..NoiseConfig::default()
            },
        ),
    }
    let dir = Path::new(out_dir);
    fs::create_dir_all(dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    fs::write(
        dir.join("epcs.csv"),
        epc_model::csv::to_csv(&collection.dataset),
    )
    .map_err(|e| format!("writing epcs.csv: {e}"))?;
    fs::write(
        dir.join("street_map.txt"),
        collection.city.street_map.to_text()?,
    )
    .map_err(|e| format!("writing street_map.txt: {e}"))?;
    let regions = serde_json::to_string_pretty(&collection.city.hierarchy)
        .map_err(|e| format!("serializing regions: {e}"))?;
    fs::write(dir.join("regions.json"), regions)
        .map_err(|e| format!("writing regions.json: {e}"))?;
    println!(
        "wrote {} certificates, {} street entries, {} regions to {out_dir}/",
        collection.dataset.n_rows(),
        collection.city.street_map.len(),
        collection.city.hierarchy.districts.len() + collection.city.hierarchy.neighbourhoods.len()
    );
    Ok(())
}

fn run(
    data: &str,
    streets: &str,
    regions: &str,
    stakeholder: epc_query::Stakeholder,
    out_dir: &str,
) -> Result<(), String> {
    let dataset = load_dataset(data)?;
    let street_text = fs::read_to_string(streets).map_err(|e| format!("reading {streets}: {e}"))?;
    let street_map = StreetMap::from_text(&street_text)?;
    let regions_text =
        fs::read_to_string(regions).map_err(|e| format!("reading {regions}: {e}"))?;
    let hierarchy: RegionHierarchy =
        serde_json::from_str(&regions_text).map_err(|e| format!("parsing {regions}: {e}"))?;

    // Thread budget comes from INDICE_THREADS (default: all hardware
    // threads); outputs are identical either way, only wall time changes.
    let engine = Indice::new(dataset, street_map, hierarchy, IndiceConfig::default())
        .with_runtime(epc_runtime::RuntimeConfig::from_env());
    let (output, report) = engine
        .run_detailed(stakeholder)
        .map_err(|e| format!("pipeline failed: {e}"))?;

    let dir = Path::new(out_dir);
    fs::create_dir_all(dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    fs::write(dir.join("dashboard.html"), output.dashboard.render_html())
        .map_err(|e| format!("writing dashboard: {e}"))?;
    for (name, content) in &output.artifacts {
        fs::write(dir.join(name), content).map_err(|e| format!("writing {name}: {e}"))?;
    }
    print!("{report}");
    println!(
        "pipeline done: {} records kept, K = {}, {} rules; dashboard + {} artifacts in {out_dir}/",
        output.preprocess.dataset.n_rows(),
        output.analytics.chosen_k,
        output.analytics.rules.len(),
        output.artifacts.len()
    );
    Ok(())
}

/// Writes to stdout ignoring broken pipes (`indice describe | head` must
/// not panic).
fn print_out(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = epc_model::schema::standard_epc_schema();
    epc_model::csv::from_csv(schema, &text).map_err(|e| format!("parsing {path}: {e}"))
}
