//! `indice` — the command-line interface of the INDICE reproduction.
//!
//! ```sh
//! indice generate --records 25000 --out-dir data/
//! indice describe --data data/epcs.csv
//! indice run --data data/epcs.csv --streets data/street_map.txt \
//!            --regions data/regions.json --stakeholder pa --out-dir out/
//! indice suggest-config --data data/epcs.csv
//! ```

mod args;

use args::{parse_args, Command, NoisePreset, STAGE_DEADLINE_ENV_VAR, USAGE};
use epc_coord::{CoordCrash, RetryPolicy, ShardStatus};
use epc_faults::{
    CityFaultSpec, Corruption, CrashSpec, DeterministicInjector, FleetFaults, StageKillSpec,
};
use epc_geo::region::RegionHierarchy;
use epc_geo::streetmap::StreetMap;
use epc_journal::write_atomic_path;
use epc_model::{Dataset, Quarantine};
use epc_synth::noise::{apply_noise, NoiseConfig};
use epc_synth::{EpcGenerator, FleetConfig, SynthConfig};
use indice::autoconfig::suggest_config;
use indice::config::IndiceConfig;
use indice::durable::DurableOptions;
use indice::engine::Indice;
use indice::pipeline::{RunOutcome, StageDeadline};
use indice::IndiceError;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// Exit code of a run killed by an injected crash point (`--crash-at`).
const CRASH_EXIT_CODE: u8 = 70;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match execute(command) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn execute(command: Command) -> Result<ExitCode, String> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Generate {
            records,
            seed,
            noise,
            out_dir,
        } => generate(records, seed, noise, &out_dir).map(|()| ExitCode::SUCCESS),
        Command::Describe { data } => {
            let dataset = load_dataset(&data)?;
            print_out(&epc_query::report::describe_text(&dataset));
            Ok(ExitCode::SUCCESS)
        }
        Command::Run {
            data,
            streets,
            regions,
            stakeholder,
            out_dir,
            resume,
            fault_seed,
            fault_rate,
            geocode_fail_rate,
            max_quarantine_frac,
            crash_at,
            metrics_out,
            trace_out,
        } => run(
            &data,
            &streets,
            &regions,
            stakeholder,
            &out_dir,
            resume,
            fault_seed,
            fault_rate,
            geocode_fail_rate,
            max_quarantine_frac,
            crash_at.as_ref(),
            metrics_out.as_deref(),
            trace_out.as_deref(),
        ),
        Command::Ingest {
            append,
            streets,
            regions,
            stakeholder,
            run_dir,
            resume,
            recompute,
            crash_at_batch,
            fault_seed,
            fault_rate,
            corrupt_batches,
        } => ingest(
            &append,
            &streets,
            &regions,
            stakeholder,
            &run_dir,
            resume,
            recompute,
            crash_at_batch.as_ref(),
            fault_seed,
            fault_rate,
            corrupt_batches.as_ref(),
        ),
        Command::Fleet {
            cities,
            records,
            seed,
            out_dir,
            resume,
            stakeholder,
            max_failed_cities,
            retry_budget,
            kill_city,
            kill_stage,
            kill_attempt,
            corrupt_city,
            fault_rate,
            fault_seed,
            crash_at_city,
        } => fleet(
            cities,
            records,
            seed,
            &out_dir,
            resume,
            stakeholder,
            max_failed_cities,
            retry_budget,
            kill_city,
            &kill_stage,
            kill_attempt,
            corrupt_city,
            fault_rate,
            fault_seed,
            crash_at_city,
        ),
        Command::Bench {
            records,
            seed,
            engines,
            out,
        } => bench(&records, seed, &engines, &out),
        Command::Clean { data, streets, out } => {
            let runtime = epc_runtime::RuntimeConfig::try_from_env()?;
            let dataset = load_dataset(&data)?;
            let street_text =
                fs::read_to_string(&streets).map_err(|e| format!("reading {streets}: {e}"))?;
            let street_map = StreetMap::from_text(&street_text)?;
            let result = indice::preprocess::preprocess_with_runtime(
                dataset,
                &street_map,
                &IndiceConfig::default(),
                &runtime,
            )
            .map_err(|e| format!("cleaning failed: {e}"))?;
            write_atomic_path(
                Path::new(&out),
                epc_model::csv::to_csv(&result.dataset).as_bytes(),
            )
            .map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "cleaned {} records ({} resolved by reference, {} by geocoder, {} unresolved); \
removed {} outliers; wrote {} rows to {out}",
                result.cleaning.total,
                result.cleaning.by_reference,
                result.cleaning.by_geocoder,
                result.cleaning.unresolved,
                result.removed_rows.len(),
                result.dataset.n_rows(),
            );
            Ok(ExitCode::SUCCESS)
        }
        Command::SuggestConfig { data } => {
            let dataset = load_dataset(&data)?;
            let advice = suggest_config(&dataset, &IndiceConfig::default());
            println!("auto-configuration advice ({} records):", dataset.n_rows());
            for a in &advice.attribute_advice {
                println!(
                    "  {:<18} -> {:<8} ({})",
                    a.attribute,
                    a.method.name(),
                    a.rationale
                );
            }
            println!(
                "  K sweep: {:?}; min rule support: {}; geocoder quota: {}",
                advice.config.analytics.k,
                advice.config.rule_stage.rules.min_support,
                advice.config.geocoder_quota
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn generate(records: usize, seed: u64, noise: NoisePreset, out_dir: &str) -> Result<(), String> {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: records,
        seed,
        ..SynthConfig::default()
    })
    .generate();
    match noise {
        NoisePreset::None => {}
        NoisePreset::Default => apply_noise(&mut collection, &NoiseConfig::default()),
        NoisePreset::Heavy => apply_noise(
            &mut collection,
            &NoiseConfig {
                typo_rate: 0.35,
                abbreviation_rate: 0.2,
                zip_missing_rate: 0.12,
                coord_missing_rate: 0.1,
                coord_wrong_rate: 0.06,
                ..NoiseConfig::default()
            },
        ),
    }
    let dir = Path::new(out_dir);
    write_atomic_path(
        &dir.join("epcs.csv"),
        epc_model::csv::to_csv(&collection.dataset).as_bytes(),
    )
    .map_err(|e| format!("writing epcs.csv: {e}"))?;
    write_atomic_path(
        &dir.join("street_map.txt"),
        collection.city.street_map.to_text()?.as_bytes(),
    )
    .map_err(|e| format!("writing street_map.txt: {e}"))?;
    let regions = serde_json::to_string_pretty(&collection.city.hierarchy)
        .map_err(|e| format!("serializing regions: {e}"))?;
    write_atomic_path(&dir.join("regions.json"), regions.as_bytes())
        .map_err(|e| format!("writing regions.json: {e}"))?;
    println!(
        "wrote {} certificates, {} street entries, {} regions to {out_dir}/",
        collection.dataset.n_rows(),
        collection.city.street_map.len(),
        collection.city.hierarchy.districts.len() + collection.city.hierarchy.neighbourhoods.len()
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run(
    data: &str,
    streets: &str,
    regions: &str,
    stakeholder: epc_query::Stakeholder,
    out_dir: &str,
    resume: bool,
    fault_seed: u64,
    fault_rate: f64,
    geocode_fail_rate: f64,
    max_quarantine_frac: Option<f64>,
    crash_at: Option<&CrashSpec>,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> Result<ExitCode, String> {
    // Strict environment validation: a typo in a tuning knob must fail
    // loudly up front, not silently fall back to a default.
    let runtime = epc_runtime::RuntimeConfig::try_from_env()?;
    let geocode_retries = epc_geo::geocode::try_geocode_retries_from_env()?;
    let deadline_ms =
        args::parse_stage_deadline_ms(std::env::var(STAGE_DEADLINE_ENV_VAR).ok().as_deref())?;

    // Lenient load: unparsable CSV rows are quarantined, not fatal.
    let (dataset, mut quarantine) = load_dataset_lenient(data)?;
    let input_rows = dataset.n_rows() + quarantine.len();
    let street_text = fs::read_to_string(streets).map_err(|e| format!("reading {streets}: {e}"))?;
    let street_map = StreetMap::from_text(&street_text)?;
    let regions_text =
        fs::read_to_string(regions).map_err(|e| format!("reading {regions}: {e}"))?;
    let hierarchy: RegionHierarchy =
        serde_json::from_str(&regions_text).map_err(|e| format!("parsing {regions}: {e}"))?;

    let mut config = IndiceConfig::default();
    // Retry budget for transient geocoder failures: INDICE_GEOCODE_RETRIES.
    config.fault_tolerance.geocode_retries = geocode_retries;

    // Thread budget comes from INDICE_THREADS (default: all hardware
    // threads); outputs are identical either way, only wall time changes.
    let engine = Indice::new(dataset, street_map, hierarchy, config).with_runtime(runtime);

    let injector = if fault_rate > 0.0 || geocode_fail_rate > 0.0 {
        Some(
            DeterministicInjector::new(fault_seed)
                .with_record_rate(fault_rate)
                .with_corruption(Corruption::NonFinite {
                    attribute: epc_model::wellknown::ASPECT_RATIO.to_owned(),
                })
                .with_geocode_rate(geocode_fail_rate),
        )
    } else {
        None
    };

    // Every `run` is durable: stages are checkpointed into the run
    // directory and journaled, so an interrupted run resumes with
    // `--resume` and finishes byte-identical to an uninterrupted one.
    let clock = epc_runtime::WallClock::new();
    let obs = epc_obs::Obs::new(&clock);
    let mut opts = DurableOptions::new(out_dir).with_obs(&obs);
    if resume {
        opts = opts.resuming();
    }
    if let Some(budget_ms) = deadline_ms {
        opts = opts.with_deadline(StageDeadline {
            budget_ms,
            clock: &clock,
        });
    }
    if let Some(spec) = crash_at {
        opts = opts.with_crash(spec);
    }
    if let Some(inj) = &injector {
        opts = opts.with_injector(inj);
    }
    let output = match engine.run_durable(stakeholder, &opts) {
        Ok(output) => output,
        Err(IndiceError::CrashInjected { stage, point }) => {
            eprintln!(
                "injected crash fired at stage '{stage}' ({point} commit); \
                 resume with `indice run --resume {out_dir} ...`"
            );
            return Ok(ExitCode::from(CRASH_EXIT_CODE));
        }
        Err(e) => return Err(format!("durable run failed: {e}")),
    };
    // Observability snapshots are written for every non-crashed run,
    // including failed ones — that is when they matter most.
    if let Some(path) = metrics_out {
        write_metrics(path, &obs)?;
    }
    if let Some(path) = trace_out {
        write_atomic_path(Path::new(path), obs.tracer().to_jsonl().as_bytes())
            .map_err(|e| format!("writing {path}: {e}"))?;
    }
    quarantine.merge(output.quarantine.clone());

    if output.recovered_torn_tail {
        eprintln!(
            "warning: run journal in {out_dir}/ had a torn trailing line (crash during \
             append); it was discarded and the affected stage replayed"
        );
    }

    if let RunOutcome::Failed(e) = &output.outcome {
        print!("{}", output.report);
        eprintln!("pipeline failed: {e}");
        return Ok(ExitCode::FAILURE);
    }

    // Data-quality circuit breaker: refuse to bless a run that diverted
    // more than the allowed fraction of its input.
    if let Some(max) = max_quarantine_frac {
        let frac = if input_rows == 0 {
            0.0
        } else {
            quarantine.len() as f64 / input_rows as f64
        };
        if frac > max {
            print!("{}", output.report);
            eprintln!(
                "quarantine fraction {frac:.4} ({} of {input_rows} input records) exceeds \
                 --max-quarantine-frac {max}; failing the run",
                quarantine.len()
            );
            return Ok(ExitCode::FAILURE);
        }
    }

    if !output.journal_hits.is_empty() {
        println!(
            "resumed from journal: {} stage(s) validated and skipped ({}), {} replayed",
            output.journal_hits.len(),
            output.journal_hits.join(", "),
            output.replayed.len()
        );
    }
    print!("{}", output.report);
    let kept = output
        .preprocess
        .as_ref()
        .map(|p| p.dataset.n_rows())
        .unwrap_or(0);
    match &output.analytics {
        Some(analytics) => println!(
            "pipeline done: {kept} records kept, K = {}, {} rules; dashboard + {} artifacts in {out_dir}/",
            analytics.chosen_k,
            analytics.rules.len(),
            output.artifacts.len()
        ),
        None => println!(
            "pipeline done: {kept} records kept, analytics unavailable; dashboard + {} artifacts in {out_dir}/",
            output.artifacts.len()
        ),
    }
    // Fault-tolerance summary: what was diverted, degraded, or skipped.
    println!("{quarantine}");
    if let Some(p) = &output.preprocess {
        if p.cleaning.degraded > 0 {
            println!(
                "degraded records: {} geocoded to district centroids after {} retries",
                p.cleaning.degraded,
                engine.config().fault_tolerance.geocode_retries
            );
        }
    }
    if !output.degraded_stages.is_empty() {
        println!("degraded stages: {}", output.degraded_stages.join(", "));
    }
    println!("outcome: {}", output.outcome);
    Ok(ExitCode::from(output.outcome.exit_code()))
}

/// Folds micro-batches into a generation-journaled ingest directory.
#[allow(clippy::too_many_arguments)]
fn ingest(
    append: &[String],
    streets: &str,
    regions: &str,
    stakeholder: epc_query::Stakeholder,
    run_dir: &str,
    resume: bool,
    recompute: indice::RecomputeMode,
    crash_at_batch: Option<&epc_faults::IngestCrash>,
    fault_seed: u64,
    fault_rate: f64,
    corrupt_batches: Option<&epc_faults::BatchScope>,
) -> Result<ExitCode, String> {
    let runtime = epc_runtime::RuntimeConfig::try_from_env()?;
    let geocode_retries = epc_geo::geocode::try_geocode_retries_from_env()?;

    // Lenient batch loads: unparsable CSV rows are quarantined per batch,
    // not fatal — the batch still ingests whatever survives.
    let mut parse_quarantine = Quarantine::new();
    let mut batches = Vec::with_capacity(append.len());
    for path in append {
        let (dataset, q) = load_dataset_lenient(path)?;
        parse_quarantine.merge(q);
        batches.push(indice::IngestBatch::new(path.clone(), dataset));
    }
    let street_text = fs::read_to_string(streets).map_err(|e| format!("reading {streets}: {e}"))?;
    let street_map = StreetMap::from_text(&street_text)?;
    let regions_text =
        fs::read_to_string(regions).map_err(|e| format!("reading {regions}: {e}"))?;
    let hierarchy: RegionHierarchy =
        serde_json::from_str(&regions_text).map_err(|e| format!("parsing {regions}: {e}"))?;

    let mut config = IndiceConfig::default();
    config.fault_tolerance.geocode_retries = geocode_retries;

    let injector = (fault_rate > 0.0).then(|| {
        DeterministicInjector::new(fault_seed)
            .with_record_rate(fault_rate)
            .with_corruption(Corruption::NonFinite {
                attribute: epc_model::wellknown::ASPECT_RATIO.to_owned(),
            })
    });

    let clock = epc_runtime::WallClock::new();
    let obs = epc_obs::Obs::new(&clock);
    let mut opts = indice::IngestOptions::new(run_dir)
        .with_recompute(recompute)
        .with_obs(&obs);
    if resume {
        opts = opts.resuming();
    }
    if let Some(spec) = crash_at_batch {
        opts = opts.with_crash(spec);
    }
    if let Some(inj) = &injector {
        opts = opts.with_injector(inj);
    }
    if let Some(scope) = corrupt_batches {
        opts = opts.scoped_to(scope);
    }

    let inputs = indice::IngestInputs {
        street_map: &street_map,
        hierarchy: &hierarchy,
        config,
        runtime,
    };
    let output = match indice::ingest(&batches, inputs, stakeholder, &opts) {
        Ok(output) => output,
        Err(IndiceError::CrashInjected { stage, point }) => {
            eprintln!(
                "injected crash fired at '{stage}' ({point} commit); \
                 resume with `indice ingest --resume {run_dir} ...`"
            );
            return Ok(ExitCode::from(CRASH_EXIT_CODE));
        }
        Err(e) => return Err(format!("ingest failed: {e}")),
    };

    if output.recovered_torn_tail {
        eprintln!(
            "warning: generation manifest in {run_dir}/ had a torn trailing line (crash \
             during append); it was discarded and the affected batch re-ingested"
        );
    }
    if let Some(why) = &output.resume_rejection {
        eprintln!("resume: {why}");
    }
    if !output.sealed_skipped.is_empty() {
        println!(
            "resumed from generation manifest: {} batch(es) sealed and skipped ({}), {} folded",
            output.sealed_skipped.len(),
            output.sealed_skipped.join(", "),
            output.processed.len()
        );
    }
    for entry in &output.entries {
        let outcome = match entry.outcome {
            epc_ingest::GenerationOutcome::Complete => "complete",
            epc_ingest::GenerationOutcome::Degraded => "degraded",
            epc_ingest::GenerationOutcome::Abandoned => "ABANDONED",
        };
        println!(
            "  gen {:>3} {}: {outcome} — {} in, {} kept, {} quarantined; \
             {} artifact(s) written, {} carried",
            entry.seq,
            entry.batch,
            entry.records_in,
            entry.records_kept,
            entry.quarantined,
            entry.artifacts_written,
            entry.artifacts_carried
        );
        for reason in &entry.reasons {
            println!("        {reason}");
        }
    }
    if !parse_quarantine.is_empty() {
        println!("{parse_quarantine}");
    }
    match &output.outcome {
        indice::IngestOutcome::Complete => println!(
            "ingest complete: {} generation(s) sealed; cumulative artifacts in {run_dir}/current/",
            output.entries.len()
        ),
        indice::IngestOutcome::Degraded(reasons) => println!(
            "ingest degraded: {}; partial analytics in {run_dir}/current/",
            reasons.join("; ")
        ),
        indice::IngestOutcome::Failed(reasons) => {
            eprintln!("ingest failed: {}", reasons.join("; "))
        }
    }
    Ok(ExitCode::from(output.outcome.exit_code()))
}

/// Runs a multi-city fleet under the shard coordinator.
#[allow(clippy::too_many_arguments)]
fn fleet(
    cities: usize,
    records: usize,
    seed: u64,
    out_dir: &str,
    resume: bool,
    stakeholder: epc_query::Stakeholder,
    max_failed_cities: Option<usize>,
    retry_budget: u32,
    kill_city: Option<usize>,
    kill_stage: &str,
    kill_attempt: Option<u32>,
    corrupt_city: Option<usize>,
    fault_rate: f64,
    fault_seed: u64,
    crash_at_city: Option<(usize, String)>,
) -> Result<ExitCode, String> {
    let runtime = epc_runtime::RuntimeConfig::try_from_env()?;
    let plan = FleetConfig {
        n_cities: cities,
        records_per_city: records,
        seed,
    };

    // Chaos flags build a per-city fault plan; kill and corrupt specs
    // aimed at the same city compose into one spec.
    let mut specs: std::collections::BTreeMap<usize, CityFaultSpec> =
        std::collections::BTreeMap::new();
    if let Some(idx) = kill_city {
        specs.entry(idx).or_default().kill = Some(StageKillSpec {
            stage: kill_stage.to_owned(),
            attempt: kill_attempt,
        });
    }
    if let Some(idx) = corrupt_city {
        specs.entry(idx).or_default().record_rate = fault_rate;
    }
    let faults = if specs.is_empty() {
        None
    } else {
        let mut plan_faults = FleetFaults::new(fault_seed);
        for (idx, spec) in specs {
            plan_faults = plan_faults.with_city(&plan.city(idx).id, spec);
        }
        Some(plan_faults)
    };

    let crash = crash_at_city.map(|(idx, point)| {
        if point == "before" {
            CoordCrash::BeforeCity(idx)
        } else {
            CoordCrash::AfterCommit(idx)
        }
    });

    let clock = epc_runtime::WallClock::new();
    let mut opts = indice::FleetRunOptions::new(out_dir, plan, &clock);
    opts.resume = resume;
    opts.stakeholder = stakeholder;
    opts.policy = RetryPolicy {
        max_attempts: retry_budget,
        ..RetryPolicy::default()
    };
    opts.max_failed = max_failed_cities;
    opts.faults = faults.as_ref();
    opts.crash = crash;
    opts.runtime = runtime;

    let output = match indice::run_fleet(&opts) {
        Ok(output) => output,
        Err(IndiceError::CrashInjected { point, .. }) => {
            eprintln!(
                "injected coordinator crash fired ({point}); resume with \
                 `indice fleet run --cities {cities} --resume {out_dir}`"
            );
            return Ok(ExitCode::from(CRASH_EXIT_CODE));
        }
        Err(e) => return Err(format!("fleet run failed: {e}")),
    };

    let result = &output.result;
    if !result.journal_hits.is_empty() {
        println!(
            "resumed from fleet journal: {} city(ies) validated and skipped ({}), {} replayed",
            result.journal_hits.len(),
            result.journal_hits.join(", "),
            result.replayed.len()
        );
    }
    for shard in &result.shards {
        match &shard.status {
            ShardStatus::Committed => {
                let dash = "-".to_owned();
                let kept = shard.summary.get("kept").unwrap_or(&dash);
                let k = shard.summary.get("chosen_k").unwrap_or(&dash);
                let degraded = if shard.degraded { ", degraded" } else { "" };
                println!(
                    "  {}: committed after {} attempt(s){degraded} — {kept} records kept, K = {k}",
                    shard.city, shard.attempts
                );
            }
            ShardStatus::Abandoned { reason } => println!(
                "  {}: UNAVAILABLE after {} attempt(s) — {reason}",
                shard.city, shard.attempts
            ),
        }
    }
    match &result.outcome {
        epc_coord::FleetOutcome::Complete => println!(
            "fleet complete: {} cities committed; merged metrics + dashboard in {out_dir}/",
            result.shards.len()
        ),
        epc_coord::FleetOutcome::Degraded { failed_cities, .. } => println!(
            "fleet degraded: {} of {} cities unavailable ({}); partial merge in {out_dir}/",
            failed_cities.len(),
            result.shards.len(),
            failed_cities.join(", ")
        ),
        epc_coord::FleetOutcome::Failed(reason) => eprintln!("fleet failed: {reason}"),
    }
    Ok(ExitCode::from(result.outcome.exit_code()))
}

/// Writes the metrics snapshot: `.json` selects the JSON codec, anything
/// else the Prometheus-style text exposition.
fn write_metrics(path: &str, obs: &epc_obs::Obs<'_>) -> Result<(), String> {
    let body = if path.ends_with(".json") {
        obs.metrics().to_json()
    } else {
        obs.metrics().expose_text()
    };
    write_atomic_path(Path::new(path), body.as_bytes())
        .map(|_| ())
        .map_err(|e| format!("writing {path}: {e}"))
}

/// One engine's measured numbers at one collection size, plus the
/// deterministic output fingerprint the cross-engine gate compares.
struct BenchRun {
    json: String,
    exit_code: u8,
    fingerprint: String,
    artifacts: std::collections::BTreeMap<String, String>,
    threads: usize,
    total_ms: u64,
    records_per_sec: f64,
}

/// Runs the observed pipeline once for `engine` at `records` and formats
/// its per-stage snapshot block.
fn bench_one(records: usize, seed: u64, engine: epc_runtime::Engine) -> Result<BenchRun, String> {
    let runtime = epc_runtime::RuntimeConfig::try_from_env()?.with_engine(engine);
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: records,
        seed,
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut collection, &NoiseConfig::default());

    let indice = Indice::from_collection(collection, IndiceConfig::default()).with_runtime(runtime);
    let clock = epc_runtime::WallClock::new();
    let obs = epc_obs::Obs::new(&clock);
    let output = indice.run_observed(epc_query::Stakeholder::PublicAdministration, &obs);

    let total_ms = output.report.total_wall().as_millis() as u64;
    let per_sec = |n: usize, ms: u64| {
        if ms == 0 {
            0.0
        } else {
            n as f64 * 1000.0 / ms as f64
        }
    };
    let records_per_sec = per_sec(records, total_ms);
    // Peak shard imbalance of the deterministic chunking: largest shard
    // over the mean shard (1.0 = perfectly even split).
    let shards = epc_runtime::shard_sizes(&runtime, records);
    let peak_shard_imbalance = if shards.is_empty() {
        1.0
    } else {
        let mean = shards.iter().sum::<usize>() as f64 / shards.len() as f64;
        shards.iter().copied().max().unwrap_or(0) as f64 / mean
    };

    let mut stages = String::new();
    for (i, s) in output.report.stages.iter().enumerate() {
        if i > 0 {
            stages.push_str(",\n");
        }
        let wall_ms = s.wall.as_millis() as u64;
        stages.push_str(&format!(
            "        {{\"name\": \"{}\", \"records_in\": {}, \"records_out\": {}, \
             \"wall_ms\": {wall_ms}, \"records_per_sec\": {:.1}}}",
            s.name,
            s.records_in,
            s.records_out,
            per_sec(s.records_in, wall_ms),
        ));
    }
    let kept = output
        .preprocess
        .as_ref()
        .map(|p| p.dataset.n_rows())
        .unwrap_or(0);
    let chosen_k = output.analytics.as_ref().map(|a| a.chosen_k).unwrap_or(0);
    let rules = output
        .analytics
        .as_ref()
        .map(|a| a.rules.len())
        .unwrap_or(0);
    // Everything in the fingerprint (and the artifact bytes, compared
    // separately) must be engine-independent; wall times must not.
    let fingerprint = format!(
        "{{\n\
         \x20       \"artifacts\": {artifacts},\n\
         \x20       \"chosen_k\": {chosen_k},\n\
         \x20       \"kept_records\": {kept},\n\
         \x20       \"outcome\": \"{outcome}\",\n\
         \x20       \"quarantined\": {quarantined},\n\
         \x20       \"rules\": {rules}\n\
         \x20     }}",
        artifacts = output.artifacts.len(),
        outcome = output.outcome,
        quarantined = output.quarantine.len(),
    );
    let json = format!(
        "      {{\n\
         \x20       \"engine\": \"{engine}\",\n\
         \x20       \"stages\": [\n{stages}\n      ],\n\
         \x20       \"total_wall_ms\": {total_ms},\n\
         \x20       \"records_per_sec\": {records_per_sec:.1},\n\
         \x20       \"peak_shard_imbalance\": {peak_shard_imbalance:.4},\n\
         \x20       \"deterministic\": {fingerprint}\n\
         \x20     }}",
        engine = engine.label(),
    );
    Ok(BenchRun {
        json,
        exit_code: output.outcome.exit_code(),
        fingerprint,
        artifacts: output.artifacts,
        threads: output.report.threads,
        total_ms,
        records_per_sec,
    })
}

/// Runs the full observed pipeline over in-memory synthetic collections —
/// once per (size, engine) pair — and writes an indice-bench/2 snapshot.
/// With several engines, every pair of runs at the same size must produce
/// an identical deterministic fingerprint and byte-identical artifacts;
/// a divergence fails the command.
fn bench(
    records_list: &[usize],
    seed: u64,
    engines: &[epc_runtime::Engine],
    out: &str,
) -> Result<ExitCode, String> {
    let mut worst_exit = 0u8;
    let mut threads = 0usize;
    let mut runs = String::new();
    for (ri, &records) in records_list.iter().enumerate() {
        if ri > 0 {
            runs.push_str(",\n");
        }
        let mut blocks = String::new();
        let mut baseline: Option<BenchRun> = None;
        for (ei, &engine) in engines.iter().enumerate() {
            if ei > 0 {
                blocks.push_str(",\n");
            }
            let run = bench_one(records, seed, engine)?;
            threads = run.threads;
            worst_exit = worst_exit.max(run.exit_code);
            println!(
                "bench: {records} records, engine {}, {} threads, {} ms total \
                 ({:.1} records/sec)",
                engine.label(),
                run.threads,
                run.total_ms,
                run.records_per_sec
            );
            blocks.push_str(&run.json);
            match &baseline {
                None => baseline = Some(run),
                Some(base) => {
                    if base.fingerprint != run.fingerprint || base.artifacts != run.artifacts {
                        return Err(format!(
                            "engine divergence at {records} records: {} and {} \
                             produced different outputs",
                            engines[0].label(),
                            engine.label()
                        ));
                    }
                }
            }
        }
        runs.push_str(&format!(
            "    {{\n      \"records\": {records},\n      \"engines\": [\n{blocks}\n      ]\n    }}"
        ));
    }
    let snapshot = format!(
        "{{\n\
         \x20 \"schema\": \"indice-bench/2\",\n\
         \x20 \"seed\": {seed},\n\
         \x20 \"threads\": {threads},\n\
         \x20 \"engines_match\": true,\n\
         \x20 \"runs\": [\n{runs}\n  ]\n\
         }}\n"
    );
    write_atomic_path(Path::new(out), snapshot.as_bytes())
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("bench: snapshot written to {out}");
    Ok(ExitCode::from(worst_exit))
}

/// Writes to stdout ignoring broken pipes (`indice describe | head` must
/// not panic).
fn print_out(s: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = epc_model::schema::standard_epc_schema();
    epc_model::csv::from_csv(schema, &text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Like [`load_dataset`], but unparsable rows are quarantined instead of
/// failing the whole load.
fn load_dataset_lenient(path: &str) -> Result<(Dataset, Quarantine), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = epc_model::schema::standard_epc_schema();
    let mut quarantine = Quarantine::new();
    let dataset = epc_model::csv::from_csv_lenient(schema, &text, &mut quarantine)
        .map_err(|e| format!("parsing {path}: {e}"))?;
    Ok((dataset, quarantine))
}
