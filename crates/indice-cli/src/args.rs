//! Dependency-free command-line argument parsing for the `indice` binary.

use epc_faults::{BatchScope, CrashSpec, IngestCrash};
use epc_query::Stakeholder;
use indice::generations::RecomputeMode;
use std::collections::HashMap;

/// Environment variable holding the per-stage deadline budget (ms).
pub const STAGE_DEADLINE_ENV_VAR: &str = "INDICE_STAGE_DEADLINE_MS";

/// Noise presets for `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePreset {
    /// No corruption (clean collection).
    None,
    /// The default corruption mix.
    Default,
    /// Typo-heavy corruption for cleaning experiments.
    Heavy,
}

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic collection to disk.
    Generate {
        /// Number of certificates.
        records: usize,
        /// RNG seed.
        seed: u64,
        /// Corruption preset.
        noise: NoisePreset,
        /// Output directory.
        out_dir: String,
    },
    /// Print per-attribute summary statistics of a CSV collection.
    Describe {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run the full pipeline and write the dashboards.
    Run {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Path to the region-hierarchy JSON.
        regions: String,
        /// Target stakeholder.
        stakeholder: Stakeholder,
        /// The run directory (journal, checkpoints, and artifacts).
        out_dir: String,
        /// Resume from the run directory's journal instead of starting
        /// over (`--resume DIR` instead of `--out-dir DIR`).
        resume: bool,
        /// Seed of the deterministic fault injector (chaos testing).
        fault_seed: u64,
        /// Fraction of records the injector corrupts (0 disables).
        fault_rate: f64,
        /// Fraction of geocoder calls the injector fails transiently.
        geocode_fail_rate: f64,
        /// Abort (exit 1) when more than this fraction of input records
        /// ends up quarantined.
        max_quarantine_frac: Option<f64>,
        /// Injected crash point for durability testing (`stage:point`).
        crash_at: Option<CrashSpec>,
        /// Write a metrics snapshot here after the run (`.json` selects
        /// the JSON codec, anything else the Prometheus-style text).
        metrics_out: Option<String>,
        /// Write the structured span/point trace here (JSON Lines).
        trace_out: Option<String>,
    },
    /// Run an in-memory synthetic pipeline and emit a benchmark snapshot.
    Bench {
        /// Collection sizes to benchmark (from `--records N[,M...]`).
        records: Vec<usize>,
        /// RNG seed for the synthetic collection.
        seed: u64,
        /// Engines to run at each size (from `--engines row[,columnar]`).
        /// With more than one, the snapshot carries a side-by-side
        /// comparison and the run fails if their outputs diverge.
        engines: Vec<epc_runtime::Engine>,
        /// Output path for the indice-bench/2 snapshot.
        out: String,
    },
    /// Print the auto-configuration advice for a collection.
    SuggestConfig {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run only the pre-processing stage and write the cleaned CSV.
    Clean {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Output CSV path.
        out: String,
    },
    /// Fold micro-batches into a generation-journaled run directory.
    Ingest {
        /// Batch CSV paths in ingest order (from `--append a.csv,b.csv`).
        append: Vec<String>,
        /// Path to the referenced street map.
        streets: String,
        /// Path to the region-hierarchy JSON.
        regions: String,
        /// Target stakeholder.
        stakeholder: Stakeholder,
        /// The ingest run directory (`gens/`, manifest, and `current/`).
        run_dir: String,
        /// Fold into a directory that already holds sealed generations
        /// (`--resume DIR` instead of `--into DIR`).
        resume: bool,
        /// Analytics recompute mode across generations.
        recompute: RecomputeMode,
        /// Injected crash at a batch boundary (`N:before|after|torn`).
        crash_at_batch: Option<IngestCrash>,
        /// Seed of the deterministic fault injector (chaos testing).
        fault_seed: u64,
        /// Fraction of records the injector corrupts (0 disables).
        fault_rate: f64,
        /// Restrict the injector to these batch indices (`all` or
        /// `0,2-4`); `None` corrupts every batch when a rate is set.
        corrupt_batches: Option<BatchScope>,
    },
    /// Run a multi-city fleet under the shard coordinator.
    Fleet {
        /// Number of cities in the fleet plan.
        cities: usize,
        /// Base records per city (scaled by each city's size class).
        records: usize,
        /// Fleet seed (city plans and synthesis derive from it).
        seed: u64,
        /// The fleet directory (fleet journal, per-city run dirs, merged
        /// artifacts).
        out_dir: String,
        /// Resume from the fleet journal instead of starting fresh.
        resume: bool,
        /// Target stakeholder for every shard.
        stakeholder: Stakeholder,
        /// Tolerate at most this many abandoned cities before the fleet
        /// fails outright (exit 1 instead of 3).
        max_failed_cities: Option<usize>,
        /// Shard attempts per city (>= 1).
        retry_budget: u32,
        /// Kill a stage of this city's shard (chaos testing).
        kill_city: Option<usize>,
        /// Stage to kill (`preprocess`/`analytics`/`dashboard`).
        kill_stage: String,
        /// Kill only on this attempt; `None` kills every attempt.
        kill_attempt: Option<u32>,
        /// Corrupt only this city's records (chaos testing).
        corrupt_city: Option<usize>,
        /// Record-corruption rate for the corrupted city.
        fault_rate: f64,
        /// Fault-plan seed.
        fault_seed: u64,
        /// Crash the coordinator at a city boundary
        /// (`IDX:before` / `IDX:after`; durability testing, exit 70).
        crash_at_city: Option<(usize, String)>,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
indice — INformative DynamiC dashboard Engine (EPC analysis)

USAGE:
  indice generate --records N [--seed S] [--noise none|default|heavy] --out-dir DIR
  indice describe --data epcs.csv
  indice run --data epcs.csv --streets street_map.txt --regions regions.json \\
             [--stakeholder pa|citizen|scientist] (--out-dir DIR | --resume DIR) \\
             [--max-quarantine-frac F] [--fault-seed S] [--fault-rate R] \\
             [--geocode-fail-rate R] [--crash-at STAGE:POINT] \\
             [--metrics-out FILE] [--trace-out FILE]
  indice ingest --append a.csv,b.csv,... --streets street_map.txt \\
             --regions regions.json (--into DIR | --resume DIR) \\
             [--stakeholder pa|citizen|scientist] [--recompute exact|warm] \\
             [--crash-at-batch N:before|after|torn] \\
             [--fault-seed S] [--fault-rate R] [--corrupt-batches all|0,2-4]
  indice fleet run --cities N [--records N] [--seed S] \\
             (--out-dir DIR | --resume DIR) [--stakeholder pa|citizen|scientist] \\
             [--max-failed-cities K] [--retry-budget N] \\
             [--kill-city IDX [--kill-stage STAGE] [--kill-attempt N|all]] \\
             [--corrupt-city IDX [--fault-rate R]] [--fault-seed S] \\
             [--crash-at-city IDX:before|after]
  indice bench --records N[,M...] [--seed S] \\
             [--engines row[,columnar]] --out bench.json
  indice suggest-config --data epcs.csv
  indice clean --data epcs.csv --streets street_map.txt --out cleaned.csv
  indice help

`run` executes under a stage supervisor: malformed records are diverted
into a quarantine, transient geocoder failures are retried with
deterministic backoff (district-centroid fallback once the budget is
exhausted), and an analytics failure degrades the dashboard instead of
aborting. Exit codes: 0 complete, 3 degraded (partial output written),
1 failed, 70 injected crash.

`run` is durable: every completed stage is checkpointed into the run
directory with atomic writes and journaled in run.manifest.jsonl. After
an interruption, `--resume DIR` validates the journal, skips every stage
whose checkpoints verify, replays the rest, and finishes with artifacts
byte-identical to an uninterrupted run.

`--max-quarantine-frac F` aborts the run (exit 1) when more than the
given fraction of input records ends up quarantined — a data-quality
circuit breaker for unattended pipelines.

`--metrics-out FILE` writes a metrics snapshot after the run: counters,
gauges, and histograms from every stage (quarantine rules, geocoder
retries, K-means rounds, Apriori levels, dashboard markers, checkpoint
bytes). A `.json` extension selects the JSON codec; any other extension
the Prometheus-style text exposition. `--trace-out FILE` writes the
structured span/point trace as JSON Lines; every event carries a logical
sequence number, so the stream (minus wall-clock fields) is bitwise
identical at any thread count.

`ingest` folds micro-batches into a crash-safe incremental run: each
batch becomes a sealed *generation*, committed by an append-fsync'd line
in generations.manifest.jsonl only after its cleaning delta and
the regenerated `current/` artifacts are durably checkpointed. Killing
an ingest at any batch boundary and re-running with `--resume DIR`
finishes byte-identical to an uninterrupted ingest, and the final
`current/` directory is byte-identical to a one-shot `indice run` over
the concatenated input (`--recompute warm` relaxes only the K-means
seeding to a bounded-drift warm start; everything else stays exact).
A batch whose records cannot be selected or cleaned is *abandoned*:
recorded in the manifest, skipped, and the sealed generations before it
stay untouched.

  exit code  meaning
  ---------  -------------------------------------------------------
  0          complete — every batch sealed cleanly
  3          degraded — all batches sealed, some with degraded
             cleaning or analytics
  1          failed — at least one batch abandoned or a required
             stage failed
  70         injected crash at a batch boundary (resume with
             --resume DIR)

`fleet run` expands a seeded multi-city plan and runs every city's full
durable pipeline as a supervised shard: a panicking or failing shard is
retried within `--retry-budget` attempts (deterministic backoff), a city
that exhausts its budget degrades the fleet to a partial result instead
of sinking it, and shard lifecycle events are journaled so a crashed
fleet resumes replaying only unfinished cities — byte-identical to an
uninterrupted run. Merged cross-city metrics land in fleet.metrics.json
and the comparison dashboard in fleet_dashboard.html (failed cities as
explicit \"unavailable\" panels).

  exit code  meaning
  ---------  -------------------------------------------------------
  0          complete — every city committed
  3          degraded — some cities unavailable, partial fleet output
  1          failed — all cities failed, or more than
             --max-failed-cities were abandoned
  70         injected coordinator crash (resume with --resume DIR)

`bench` generates a synthetic collection in memory, runs the full
observed pipeline at each `--records` size, and writes a benchmark
snapshot (per-stage wall milliseconds and records/sec, peak shard
imbalance) to `--out`. With `--engines row,columnar` every size runs
once per engine; the snapshot carries the side-by-side numbers and the
command fails if the engines' outputs are not identical.

`--fault-seed` / `--fault-rate` / `--geocode-fail-rate` attach a
deterministic fault injector for chaos testing: the same seed and rates
reproduce the same faults, quarantine, and outputs at any thread count.
`--crash-at <stage>:<before|after|torn>` kills the run at the named
commit point (durability testing; exit 70).

ENVIRONMENT:
  INDICE_THREADS           thread budget for run/clean (default: all
                           hardware threads); outputs are identical for
                           any value
  INDICE_ENGINE            execution engine, `row` (default) or
                           `columnar`; outputs are byte-identical for
                           either — the columnar engine only changes how
                           scans, group-bys, cleaning, and clustering
                           gather their data
  INDICE_GEOCODE_RETRIES   retry budget for transient geocoder failures
                           (default: 3)
  INDICE_STAGE_DEADLINE_MS per-stage wall-clock budget in milliseconds;
                           an overrunning stage degrades the run
                           (default: unlimited)
";

/// Parses `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    // `fleet` takes a sub-command word before its flags.
    if cmd == "fleet" {
        return parse_fleet(&args[1..]);
    }
    let flags = parse_flags(&args[1..])?;
    let get = |name: &str| -> Result<&String, String> {
        flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let records: usize = get("records")?
                .parse()
                .map_err(|e| format!("--records: {e}"))?;
            if records == 0 {
                return Err("--records must be positive".into());
            }
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let noise = match flags.get("noise").map(String::as_str) {
                None | Some("default") => NoisePreset::Default,
                Some("none") => NoisePreset::None,
                Some("heavy") => NoisePreset::Heavy,
                Some(other) => return Err(format!("unknown --noise preset {other:?}")),
            };
            Ok(Command::Generate {
                records,
                seed,
                noise,
                out_dir: get("out-dir")?.clone(),
            })
        }
        "describe" => Ok(Command::Describe {
            data: get("data")?.clone(),
        }),
        "run" => {
            let stakeholder = match flags.get("stakeholder").map(String::as_str) {
                None | Some("pa") | Some("public-administration") => {
                    Stakeholder::PublicAdministration
                }
                Some("citizen") => Stakeholder::Citizen,
                Some("scientist") | Some("energy-scientist") => Stakeholder::EnergyScientist,
                Some(other) => return Err(format!("unknown --stakeholder {other:?}")),
            };
            let fault_seed: u64 = flags
                .get("fault-seed")
                .map(|s| s.parse().map_err(|e| format!("--fault-seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let fault_rate = parse_rate(&flags, "fault-rate")?;
            let geocode_fail_rate = parse_rate(&flags, "geocode-fail-rate")?;
            let (out_dir, resume) = match (flags.get("out-dir"), flags.get("resume")) {
                (Some(_), Some(_)) => {
                    return Err(
                        "--out-dir and --resume are mutually exclusive (both name the run \
                         directory; --resume continues from its journal)"
                            .into(),
                    )
                }
                (Some(dir), None) => (dir.clone(), false),
                (None, Some(dir)) => (dir.clone(), true),
                (None, None) => {
                    return Err("missing required flag --out-dir (or --resume DIR)".into())
                }
            };
            let max_quarantine_frac = match flags.get("max-quarantine-frac") {
                Some(_) => Some(parse_rate(&flags, "max-quarantine-frac")?),
                None => None,
            };
            let crash_at = flags
                .get("crash-at")
                .map(|raw| CrashSpec::parse(raw).map_err(|e| format!("--crash-at: {e}")))
                .transpose()?;
            Ok(Command::Run {
                data: get("data")?.clone(),
                streets: get("streets")?.clone(),
                regions: get("regions")?.clone(),
                stakeholder,
                out_dir,
                resume,
                fault_seed,
                fault_rate,
                geocode_fail_rate,
                max_quarantine_frac,
                crash_at,
                metrics_out: flags.get("metrics-out").cloned(),
                trace_out: flags.get("trace-out").cloned(),
            })
        }
        "bench" => {
            let records: Vec<usize> = get("records")?
                .split(',')
                .map(|s| s.trim().parse().map_err(|e| format!("--records: {e}")))
                .collect::<Result<_, _>>()?;
            if records.is_empty() || records.contains(&0) {
                return Err("--records must be a comma list of positive sizes".into());
            }
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let engines: Vec<epc_runtime::Engine> = match flags.get("engines") {
                None => vec![epc_runtime::Engine::Row],
                Some(raw) => {
                    let engines: Vec<epc_runtime::Engine> = raw
                        .split(',')
                        .map(|s| {
                            epc_runtime::Engine::parse(Some(s.trim()))
                                .map_err(|e| format!("--engines: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if engines.is_empty() {
                        return Err("--engines must name at least one engine".into());
                    }
                    engines
                }
            };
            Ok(Command::Bench {
                records,
                seed,
                engines,
                out: get("out")?.clone(),
            })
        }
        "ingest" => {
            let append: Vec<String> = get("append")?
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if append.is_empty() {
                return Err("--append needs at least one batch CSV path".into());
            }
            let stakeholder = match flags.get("stakeholder").map(String::as_str) {
                None | Some("pa") | Some("public-administration") => {
                    Stakeholder::PublicAdministration
                }
                Some("citizen") => Stakeholder::Citizen,
                Some("scientist") | Some("energy-scientist") => Stakeholder::EnergyScientist,
                Some(other) => return Err(format!("unknown --stakeholder {other:?}")),
            };
            let (run_dir, resume) = match (flags.get("into"), flags.get("resume")) {
                (Some(_), Some(_)) => {
                    return Err(
                        "--into and --resume are mutually exclusive (both name the ingest \
                         directory; --resume folds onto its sealed generations)"
                            .into(),
                    )
                }
                (Some(dir), None) => (dir.clone(), false),
                (None, Some(dir)) => (dir.clone(), true),
                (None, None) => return Err("missing required flag --into (or --resume DIR)".into()),
            };
            let recompute = match flags.get("recompute") {
                None => RecomputeMode::Exact,
                Some(raw) => RecomputeMode::parse(raw).map_err(|e| format!("--recompute: {e}"))?,
            };
            let crash_at_batch = flags
                .get("crash-at-batch")
                .map(|raw| IngestCrash::parse(raw).map_err(|e| format!("--crash-at-batch: {e}")))
                .transpose()?;
            let fault_seed: u64 = flags
                .get("fault-seed")
                .map(|s| s.parse().map_err(|e| format!("--fault-seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let corrupt_batches = flags
                .get("corrupt-batches")
                .map(|raw| BatchScope::parse(raw).map_err(|e| format!("--corrupt-batches: {e}")))
                .transpose()?;
            // `--corrupt-batches` alone turns a default rate on, mirroring
            // the fleet's `--corrupt-city`.
            let fault_rate = if flags.contains_key("fault-rate") {
                parse_rate(&flags, "fault-rate")?
            } else if corrupt_batches.is_some() {
                0.2
            } else {
                0.0
            };
            Ok(Command::Ingest {
                append,
                streets: get("streets")?.clone(),
                regions: get("regions")?.clone(),
                stakeholder,
                run_dir,
                resume,
                recompute,
                crash_at_batch,
                fault_seed,
                fault_rate,
                corrupt_batches,
            })
        }
        "suggest-config" => Ok(Command::SuggestConfig {
            data: get("data")?.clone(),
        }),
        "clean" => Ok(Command::Clean {
            data: get("data")?.clone(),
            streets: get("streets")?.clone(),
            out: get("out")?.clone(),
        }),
        other => Err(format!("unknown command {other:?}; try `indice help`")),
    }
}

/// Parses the `fleet` sub-commands (`args` starts at the sub-command
/// word).
fn parse_fleet(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("run") => {}
        Some(other) => {
            return Err(format!(
                "unknown fleet sub-command {other:?}; try `indice fleet run`"
            ))
        }
        None => return Err("fleet needs a sub-command: `indice fleet run ...`".into()),
    }
    let flags = parse_flags(&args[1..])?;
    let cities: usize = flags
        .get("cities")
        .ok_or("missing required flag --cities")?
        .parse()
        .map_err(|e| format!("--cities: {e}"))?;
    if cities == 0 {
        return Err("--cities must be positive".into());
    }
    let records: usize = flags
        .get("records")
        .map(|s| s.parse().map_err(|e| format!("--records: {e}")))
        .transpose()?
        .unwrap_or(1200);
    if records == 0 {
        return Err("--records must be positive".into());
    }
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(2024);
    let stakeholder = match flags.get("stakeholder").map(String::as_str) {
        None | Some("pa") | Some("public-administration") => Stakeholder::PublicAdministration,
        Some("citizen") => Stakeholder::Citizen,
        Some("scientist") | Some("energy-scientist") => Stakeholder::EnergyScientist,
        Some(other) => return Err(format!("unknown --stakeholder {other:?}")),
    };
    let (out_dir, resume) = match (flags.get("out-dir"), flags.get("resume")) {
        (Some(_), Some(_)) => {
            return Err(
                "--out-dir and --resume are mutually exclusive (both name the fleet \
                 directory; --resume continues from its journal)"
                    .into(),
            )
        }
        (Some(dir), None) => (dir.clone(), false),
        (None, Some(dir)) => (dir.clone(), true),
        (None, None) => return Err("missing required flag --out-dir (or --resume DIR)".into()),
    };
    let max_failed_cities = flags
        .get("max-failed-cities")
        .map(|s| s.parse().map_err(|e| format!("--max-failed-cities: {e}")))
        .transpose()?;
    let retry_budget: u32 = flags
        .get("retry-budget")
        .map(|s| s.parse().map_err(|e| format!("--retry-budget: {e}")))
        .transpose()?
        .unwrap_or(2);
    if retry_budget == 0 {
        return Err("--retry-budget must be at least 1".into());
    }
    let kill_city: Option<usize> = flags
        .get("kill-city")
        .map(|s| s.parse().map_err(|e| format!("--kill-city: {e}")))
        .transpose()?;
    let kill_stage = flags
        .get("kill-stage")
        .cloned()
        .unwrap_or_else(|| "preprocess".to_owned());
    if !matches!(
        kill_stage.as_str(),
        "preprocess" | "analytics" | "dashboard"
    ) {
        return Err(format!(
            "--kill-stage must be preprocess, analytics, or dashboard, got {kill_stage:?}"
        ));
    }
    let kill_attempt = match flags.get("kill-attempt").map(String::as_str) {
        None | Some("all") => None,
        Some(raw) => Some(raw.parse().map_err(|e| format!("--kill-attempt: {e}"))?),
    };
    if kill_city.is_none()
        && (flags.contains_key("kill-stage") || flags.contains_key("kill-attempt"))
    {
        return Err("--kill-stage/--kill-attempt need --kill-city".into());
    }
    let corrupt_city: Option<usize> = flags
        .get("corrupt-city")
        .map(|s| s.parse().map_err(|e| format!("--corrupt-city: {e}")))
        .transpose()?;
    let fault_rate = if flags.contains_key("fault-rate") {
        if corrupt_city.is_none() {
            return Err("--fault-rate needs --corrupt-city".into());
        }
        parse_rate(&flags, "fault-rate")?
    } else if corrupt_city.is_some() {
        0.2
    } else {
        0.0
    };
    let fault_seed: u64 = flags
        .get("fault-seed")
        .map(|s| s.parse().map_err(|e| format!("--fault-seed: {e}")))
        .transpose()?
        .unwrap_or(2024);
    let crash_at_city = flags
        .get("crash-at-city")
        .map(|raw| -> Result<(usize, String), String> {
            let (idx, point) = raw.split_once(':').ok_or_else(|| {
                format!("--crash-at-city: expected IDX:before|after, got {raw:?}")
            })?;
            let idx: usize = idx
                .parse()
                .map_err(|e| format!("--crash-at-city index: {e}"))?;
            if !matches!(point, "before" | "after") {
                return Err(format!(
                    "--crash-at-city point must be before or after, got {point:?}"
                ));
            }
            Ok((idx, point.to_owned()))
        })
        .transpose()?;
    for (flag, idx) in [
        ("kill-city", kill_city),
        ("corrupt-city", corrupt_city),
        ("crash-at-city", crash_at_city.as_ref().map(|(i, _)| *i)),
    ] {
        if idx.is_some_and(|i| i >= cities) {
            return Err(format!(
                "--{flag} index out of range (fleet has {cities} cities, indices 0..{})",
                cities - 1
            ));
        }
    }
    Ok(Command::Fleet {
        cities,
        records,
        seed,
        out_dir,
        resume,
        stakeholder,
        max_failed_cities,
        retry_budget,
        kill_city,
        kill_stage,
        kill_attempt,
        corrupt_city,
        fault_rate,
        fault_seed,
        crash_at_city,
    })
}

/// Strictly validates an `INDICE_STAGE_DEADLINE_MS` value: `None` (unset)
/// means no deadline, anything set must parse as a positive integer —
/// a typo must fail loudly, not silently disable the watchdog.
pub fn parse_stage_deadline_ms(raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) if ms >= 1 => Ok(Some(ms)),
        Ok(_) => Err(format!(
            "{STAGE_DEADLINE_ENV_VAR} must be a positive integer (milliseconds), got 0"
        )),
        Err(_) => Err(format!(
            "{STAGE_DEADLINE_ENV_VAR} must be a positive integer (milliseconds), got {raw:?}"
        )),
    }
}

/// Parses an optional `[0, 1]` rate flag, defaulting to `0.0`.
fn parse_rate(flags: &HashMap<String, String>, name: &str) -> Result<f64, String> {
    let Some(raw) = flags.get(name) else {
        return Ok(0.0);
    };
    let rate: f64 = raw.parse().map_err(|e| format!("--{name}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--{name} must be in [0, 1], got {rate}"));
    }
    Ok(rate)
}

/// Parses `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {arg:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        if flags.insert(name.to_owned(), value.clone()).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults() {
        let cmd = parse_args(&v(&["generate", "--records", "500", "--out-dir", "out"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 500,
                seed: 2024,
                noise: NoisePreset::Default,
                out_dir: "out".into(),
            }
        );
    }

    #[test]
    fn generate_with_all_flags() {
        let cmd = parse_args(&v(&[
            "generate",
            "--records",
            "100",
            "--seed",
            "7",
            "--noise",
            "heavy",
            "--out-dir",
            "d",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 100,
                seed: 7,
                noise: NoisePreset::Heavy,
                out_dir: "d".into(),
            }
        );
    }

    #[test]
    fn generate_rejects_bad_values() {
        assert!(parse_args(&v(&["generate", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "abc", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "0", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&[
            "generate",
            "--records",
            "5",
            "--noise",
            "nope",
            "--out-dir",
            "d"
        ]))
        .is_err());
    }

    #[test]
    fn run_parses_stakeholders() {
        for (flag, expected) in [
            ("pa", Stakeholder::PublicAdministration),
            ("citizen", Stakeholder::Citizen),
            ("scientist", Stakeholder::EnergyScientist),
        ] {
            let cmd = parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--stakeholder",
                flag,
                "--out-dir",
                "o",
            ]))
            .unwrap();
            match cmd {
                Command::Run { stakeholder, .. } => assert_eq!(stakeholder, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn run_default_stakeholder_is_pa() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Run {
                stakeholder: Stakeholder::PublicAdministration,
                ..
            }
        ));
    }

    #[test]
    fn run_parses_fault_flags() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
            "--fault-seed",
            "99",
            "--fault-rate",
            "0.2",
            "--geocode-fail-rate",
            "0.1",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_seed,
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_seed, 99);
                assert_eq!(fault_rate, 0.2);
                assert_eq!(geocode_fail_rate, 0.1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_fault_flags_default_to_off() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_rate, 0.0);
                assert_eq!(geocode_fail_rate, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected() {
        for bad in ["1.5", "-0.1", "abc"] {
            assert!(parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--out-dir",
                "o",
                "--fault-rate",
                bad,
            ]))
            .is_err());
        }
    }

    #[test]
    fn flag_errors() {
        assert!(parse_args(&v(&["describe"])).is_err(), "missing --data");
        assert!(parse_args(&v(&["describe", "positional"])).is_err());
        assert!(
            parse_args(&v(&["describe", "--data"])).is_err(),
            "dangling flag"
        );
        assert!(
            parse_args(&v(&["describe", "--data", "a", "--data", "b"])).is_err(),
            "duplicate flag"
        );
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn clean_parses() {
        let cmd = parse_args(&v(&[
            "clean",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--out",
            "c.csv",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Clean {
                data: "e.csv".into(),
                streets: "s.txt".into(),
                out: "c.csv".into(),
            }
        );
        assert!(parse_args(&v(&["clean", "--data", "e.csv"])).is_err());
    }

    fn run_args(extra: &[&str]) -> Vec<String> {
        let mut base = v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
        ]);
        base.extend(extra.iter().map(|s| s.to_string()));
        base
    }

    #[test]
    fn run_resume_and_out_dir_are_exclusive() {
        let err = parse_args(&run_args(&["--out-dir", "o", "--resume", "o"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_args(&run_args(&[])).unwrap_err();
        assert!(err.contains("--out-dir"), "{err}");
    }

    #[test]
    fn run_resume_sets_the_run_dir() {
        match parse_args(&run_args(&["--resume", "runs/x"])).unwrap() {
            Command::Run {
                out_dir, resume, ..
            } => {
                assert_eq!(out_dir, "runs/x");
                assert!(resume);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "runs/y"])).unwrap() {
            Command::Run {
                out_dir, resume, ..
            } => {
                assert_eq!(out_dir, "runs/y");
                assert!(!resume);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_parses_max_quarantine_frac() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--max-quarantine-frac",
            "0.25",
        ]))
        .unwrap()
        {
            Command::Run {
                max_quarantine_frac,
                ..
            } => assert_eq!(max_quarantine_frac, Some(0.25)),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "o"])).unwrap() {
            Command::Run {
                max_quarantine_frac,
                ..
            } => assert_eq!(max_quarantine_frac, None),
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["1.5", "-0.1", "abc"] {
            assert!(
                parse_args(&run_args(&["--out-dir", "o", "--max-quarantine-frac", bad])).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn run_parses_crash_at() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--crash-at",
            "analytics:torn",
        ]))
        .unwrap()
        {
            Command::Run { crash_at, .. } => {
                assert_eq!(
                    crash_at,
                    Some(CrashSpec::Torn {
                        stage: "analytics".into()
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--crash-at",
            "analytics:during",
        ]))
        .unwrap_err();
        assert!(err.contains("--crash-at"), "{err}");
        assert!(err.contains("invalid crash spec"), "{err}");
    }

    #[test]
    fn stage_deadline_env_is_strictly_validated() {
        assert_eq!(parse_stage_deadline_ms(None).unwrap(), None);
        assert_eq!(parse_stage_deadline_ms(Some("250")).unwrap(), Some(250));
        assert_eq!(
            parse_stage_deadline_ms(Some(" 90000 ")).unwrap(),
            Some(90_000)
        );
        for bad in ["0", "-5", "fast", "1.5", ""] {
            let err = parse_stage_deadline_ms(Some(bad)).unwrap_err();
            assert!(err.contains(STAGE_DEADLINE_ENV_VAR), "{bad:?}: {err}");
        }
    }

    #[test]
    fn run_parses_observability_outputs() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.jsonl",
        ]))
        .unwrap()
        {
            Command::Run {
                metrics_out,
                trace_out,
                ..
            } => {
                assert_eq!(metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(trace_out.as_deref(), Some("t.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "o"])).unwrap() {
            Command::Run {
                metrics_out,
                trace_out,
                ..
            } => {
                assert_eq!(metrics_out, None);
                assert_eq!(trace_out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bench_parses() {
        let cmd = parse_args(&v(&["bench", "--records", "800", "--out", "b.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                records: vec![800],
                seed: 2024,
                engines: vec![epc_runtime::Engine::Row],
                out: "b.json".into(),
            }
        );
        let cmd = parse_args(&v(&[
            "bench",
            "--records",
            "100,2500",
            "--seed",
            "9",
            "--engines",
            "row,columnar",
            "--out",
            "b.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                records: vec![100, 2500],
                seed: 9,
                engines: vec![epc_runtime::Engine::Row, epc_runtime::Engine::Columnar],
                out: "b.json".into(),
            }
        );
        assert!(parse_args(&v(&["bench", "--out", "b.json"])).is_err());
        assert!(parse_args(&v(&["bench", "--records", "0", "--out", "b.json"])).is_err());
        assert!(parse_args(&v(&["bench", "--records", "10,0", "--out", "b.json"])).is_err());
        assert!(parse_args(&v(&["bench", "--records", "10"])).is_err());
        assert!(parse_args(&v(&[
            "bench",
            "--records",
            "10",
            "--engines",
            "vector",
            "--out",
            "b.json"
        ]))
        .is_err());
    }

    #[test]
    fn fleet_run_parses_with_defaults() {
        let cmd = parse_args(&v(&["fleet", "run", "--cities", "3", "--out-dir", "f"])).unwrap();
        assert_eq!(
            cmd,
            Command::Fleet {
                cities: 3,
                records: 1200,
                seed: 2024,
                out_dir: "f".into(),
                resume: false,
                stakeholder: Stakeholder::PublicAdministration,
                max_failed_cities: None,
                retry_budget: 2,
                kill_city: None,
                kill_stage: "preprocess".into(),
                kill_attempt: None,
                corrupt_city: None,
                fault_rate: 0.0,
                fault_seed: 2024,
                crash_at_city: None,
            }
        );
    }

    #[test]
    fn fleet_run_parses_chaos_flags() {
        let cmd = parse_args(&v(&[
            "fleet",
            "run",
            "--cities",
            "4",
            "--resume",
            "f",
            "--retry-budget",
            "3",
            "--max-failed-cities",
            "1",
            "--kill-city",
            "2",
            "--kill-stage",
            "analytics",
            "--kill-attempt",
            "1",
            "--corrupt-city",
            "3",
            "--crash-at-city",
            "1:after",
        ]))
        .unwrap();
        match cmd {
            Command::Fleet {
                resume,
                retry_budget,
                max_failed_cities,
                kill_city,
                kill_stage,
                kill_attempt,
                corrupt_city,
                fault_rate,
                crash_at_city,
                ..
            } => {
                assert!(resume);
                assert_eq!(retry_budget, 3);
                assert_eq!(max_failed_cities, Some(1));
                assert_eq!(kill_city, Some(2));
                assert_eq!(kill_stage, "analytics");
                assert_eq!(kill_attempt, Some(1));
                assert_eq!(corrupt_city, Some(3));
                assert_eq!(fault_rate, 0.2, "corrupt-city defaults the rate on");
                assert_eq!(crash_at_city, Some((1, "after".into())));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fleet_run_rejects_bad_flags() {
        let f = |extra: &[&str]| {
            let mut base = v(&["fleet", "run", "--cities", "3", "--out-dir", "f"]);
            base.extend(extra.iter().map(|s| s.to_string()));
            parse_args(&base)
        };
        assert!(parse_args(&v(&["fleet"])).is_err(), "missing sub-command");
        assert!(parse_args(&v(&["fleet", "stop"])).is_err());
        assert!(parse_args(&v(&["fleet", "run", "--out-dir", "f"])).is_err());
        assert!(parse_args(&v(&["fleet", "run", "--cities", "0", "--out-dir", "f"])).is_err());
        assert!(f(&["--resume", "f"]).is_err(), "out-dir xor resume");
        assert!(f(&["--retry-budget", "0"]).is_err());
        assert!(
            f(&["--kill-stage", "analytics"]).is_err(),
            "needs kill-city"
        );
        assert!(f(&["--kill-city", "1", "--kill-stage", "geocode"]).is_err());
        assert!(f(&["--fault-rate", "0.5"]).is_err(), "needs corrupt-city");
        assert!(f(&["--kill-city", "7"]).is_err(), "index out of range");
        assert!(f(&["--crash-at-city", "1"]).is_err());
        assert!(f(&["--crash-at-city", "1:during"]).is_err());
        assert!(f(&["--crash-at-city", "9:after"]).is_err());
    }

    fn ingest_args(extra: &[&str]) -> Vec<String> {
        let mut base = v(&[
            "ingest",
            "--append",
            "a.csv,b.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
        ]);
        base.extend(extra.iter().map(|s| s.to_string()));
        base
    }

    #[test]
    fn ingest_parses_with_defaults() {
        let cmd = parse_args(&ingest_args(&["--into", "runs/x"])).unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                append: vec!["a.csv".into(), "b.csv".into()],
                streets: "s.txt".into(),
                regions: "r.json".into(),
                stakeholder: Stakeholder::PublicAdministration,
                run_dir: "runs/x".into(),
                resume: false,
                recompute: RecomputeMode::Exact,
                crash_at_batch: None,
                fault_seed: 2024,
                fault_rate: 0.0,
                corrupt_batches: None,
            }
        );
    }

    #[test]
    fn ingest_parses_chaos_and_resume_flags() {
        match parse_args(&ingest_args(&[
            "--resume",
            "runs/x",
            "--recompute",
            "warm",
            "--crash-at-batch",
            "2:torn",
            "--corrupt-batches",
            "1-2",
        ]))
        .unwrap()
        {
            Command::Ingest {
                resume,
                recompute,
                crash_at_batch,
                fault_rate,
                corrupt_batches,
                ..
            } => {
                assert!(resume);
                assert_eq!(recompute, RecomputeMode::Warm);
                assert_eq!(crash_at_batch, Some(IngestCrash::TornBatch { batch: 2 }));
                assert_eq!(fault_rate, 0.2, "corrupt-batches defaults the rate on");
                assert_eq!(corrupt_batches, Some(BatchScope::Only(vec![1, 2])));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ingest_rejects_bad_flags() {
        assert!(parse_args(&ingest_args(&[])).is_err(), "needs --into");
        assert!(
            parse_args(&ingest_args(&["--into", "x", "--resume", "x"])).is_err(),
            "into xor resume"
        );
        assert!(
            parse_args(&ingest_args(&["--into", "x", "--recompute", "lazy"])).is_err(),
            "bad recompute mode"
        );
        assert!(
            parse_args(&ingest_args(&[
                "--into",
                "x",
                "--crash-at-batch",
                "1:during"
            ]))
            .is_err(),
            "bad crash point"
        );
        assert!(
            parse_args(&ingest_args(&["--into", "x", "--corrupt-batches", "4-1"])).is_err(),
            "bad scope"
        );
        let mut empty = v(&[
            "ingest",
            "--append",
            " , ",
            "--streets",
            "s",
            "--regions",
            "r",
        ]);
        empty.extend(v(&["--into", "x"]));
        assert!(parse_args(&empty).is_err(), "empty append list");
    }

    #[test]
    fn suggest_config_parses() {
        let cmd = parse_args(&v(&["suggest-config", "--data", "e.csv"])).unwrap();
        assert_eq!(
            cmd,
            Command::SuggestConfig {
                data: "e.csv".into()
            }
        );
    }
}
