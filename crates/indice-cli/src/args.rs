//! Dependency-free command-line argument parsing for the `indice` binary.

use epc_query::Stakeholder;
use std::collections::HashMap;

/// Noise presets for `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePreset {
    /// No corruption (clean collection).
    None,
    /// The default corruption mix.
    Default,
    /// Typo-heavy corruption for cleaning experiments.
    Heavy,
}

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic collection to disk.
    Generate {
        /// Number of certificates.
        records: usize,
        /// RNG seed.
        seed: u64,
        /// Corruption preset.
        noise: NoisePreset,
        /// Output directory.
        out_dir: String,
    },
    /// Print per-attribute summary statistics of a CSV collection.
    Describe {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run the full pipeline and write the dashboards.
    Run {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Path to the region-hierarchy JSON.
        regions: String,
        /// Target stakeholder.
        stakeholder: Stakeholder,
        /// Output directory.
        out_dir: String,
        /// Seed of the deterministic fault injector (chaos testing).
        fault_seed: u64,
        /// Fraction of records the injector corrupts (0 disables).
        fault_rate: f64,
        /// Fraction of geocoder calls the injector fails transiently.
        geocode_fail_rate: f64,
    },
    /// Print the auto-configuration advice for a collection.
    SuggestConfig {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run only the pre-processing stage and write the cleaned CSV.
    Clean {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Output CSV path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
indice — INformative DynamiC dashboard Engine (EPC analysis)

USAGE:
  indice generate --records N [--seed S] [--noise none|default|heavy] --out-dir DIR
  indice describe --data epcs.csv
  indice run --data epcs.csv --streets street_map.txt --regions regions.json \\
             [--stakeholder pa|citizen|scientist] --out-dir DIR \\
             [--fault-seed S] [--fault-rate R] [--geocode-fail-rate R]
  indice suggest-config --data epcs.csv
  indice clean --data epcs.csv --streets street_map.txt --out cleaned.csv
  indice help

`run` executes under a stage supervisor: malformed records are diverted
into a quarantine, transient geocoder failures are retried with
deterministic backoff (district-centroid fallback once the budget is
exhausted), and an analytics failure degrades the dashboard instead of
aborting. Exit codes: 0 complete, 3 degraded (partial output written),
1 failed.

`--fault-seed` / `--fault-rate` / `--geocode-fail-rate` attach a
deterministic fault injector for chaos testing: the same seed and rates
reproduce the same faults, quarantine, and outputs at any thread count.

ENVIRONMENT:
  INDICE_THREADS           thread budget for run/clean (default: all
                           hardware threads); outputs are identical for
                           any value
  INDICE_GEOCODE_RETRIES   retry budget for transient geocoder failures
                           (default: 3)
";

/// Parses `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = parse_flags(&args[1..])?;
    let get = |name: &str| -> Result<&String, String> {
        flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let records: usize = get("records")?
                .parse()
                .map_err(|e| format!("--records: {e}"))?;
            if records == 0 {
                return Err("--records must be positive".into());
            }
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let noise = match flags.get("noise").map(String::as_str) {
                None | Some("default") => NoisePreset::Default,
                Some("none") => NoisePreset::None,
                Some("heavy") => NoisePreset::Heavy,
                Some(other) => return Err(format!("unknown --noise preset {other:?}")),
            };
            Ok(Command::Generate {
                records,
                seed,
                noise,
                out_dir: get("out-dir")?.clone(),
            })
        }
        "describe" => Ok(Command::Describe {
            data: get("data")?.clone(),
        }),
        "run" => {
            let stakeholder = match flags.get("stakeholder").map(String::as_str) {
                None | Some("pa") | Some("public-administration") => {
                    Stakeholder::PublicAdministration
                }
                Some("citizen") => Stakeholder::Citizen,
                Some("scientist") | Some("energy-scientist") => Stakeholder::EnergyScientist,
                Some(other) => return Err(format!("unknown --stakeholder {other:?}")),
            };
            let fault_seed: u64 = flags
                .get("fault-seed")
                .map(|s| s.parse().map_err(|e| format!("--fault-seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let fault_rate = parse_rate(&flags, "fault-rate")?;
            let geocode_fail_rate = parse_rate(&flags, "geocode-fail-rate")?;
            Ok(Command::Run {
                data: get("data")?.clone(),
                streets: get("streets")?.clone(),
                regions: get("regions")?.clone(),
                stakeholder,
                out_dir: get("out-dir")?.clone(),
                fault_seed,
                fault_rate,
                geocode_fail_rate,
            })
        }
        "suggest-config" => Ok(Command::SuggestConfig {
            data: get("data")?.clone(),
        }),
        "clean" => Ok(Command::Clean {
            data: get("data")?.clone(),
            streets: get("streets")?.clone(),
            out: get("out")?.clone(),
        }),
        other => Err(format!("unknown command {other:?}; try `indice help`")),
    }
}

/// Parses an optional `[0, 1]` rate flag, defaulting to `0.0`.
fn parse_rate(flags: &HashMap<String, String>, name: &str) -> Result<f64, String> {
    let Some(raw) = flags.get(name) else {
        return Ok(0.0);
    };
    let rate: f64 = raw.parse().map_err(|e| format!("--{name}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--{name} must be in [0, 1], got {rate}"));
    }
    Ok(rate)
}

/// Parses `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {arg:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        if flags.insert(name.to_owned(), value.clone()).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults() {
        let cmd = parse_args(&v(&["generate", "--records", "500", "--out-dir", "out"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 500,
                seed: 2024,
                noise: NoisePreset::Default,
                out_dir: "out".into(),
            }
        );
    }

    #[test]
    fn generate_with_all_flags() {
        let cmd = parse_args(&v(&[
            "generate",
            "--records",
            "100",
            "--seed",
            "7",
            "--noise",
            "heavy",
            "--out-dir",
            "d",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 100,
                seed: 7,
                noise: NoisePreset::Heavy,
                out_dir: "d".into(),
            }
        );
    }

    #[test]
    fn generate_rejects_bad_values() {
        assert!(parse_args(&v(&["generate", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "abc", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "0", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&[
            "generate",
            "--records",
            "5",
            "--noise",
            "nope",
            "--out-dir",
            "d"
        ]))
        .is_err());
    }

    #[test]
    fn run_parses_stakeholders() {
        for (flag, expected) in [
            ("pa", Stakeholder::PublicAdministration),
            ("citizen", Stakeholder::Citizen),
            ("scientist", Stakeholder::EnergyScientist),
        ] {
            let cmd = parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--stakeholder",
                flag,
                "--out-dir",
                "o",
            ]))
            .unwrap();
            match cmd {
                Command::Run { stakeholder, .. } => assert_eq!(stakeholder, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn run_default_stakeholder_is_pa() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Run {
                stakeholder: Stakeholder::PublicAdministration,
                ..
            }
        ));
    }

    #[test]
    fn run_parses_fault_flags() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
            "--fault-seed",
            "99",
            "--fault-rate",
            "0.2",
            "--geocode-fail-rate",
            "0.1",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_seed,
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_seed, 99);
                assert_eq!(fault_rate, 0.2);
                assert_eq!(geocode_fail_rate, 0.1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_fault_flags_default_to_off() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_rate, 0.0);
                assert_eq!(geocode_fail_rate, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected() {
        for bad in ["1.5", "-0.1", "abc"] {
            assert!(parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--out-dir",
                "o",
                "--fault-rate",
                bad,
            ]))
            .is_err());
        }
    }

    #[test]
    fn flag_errors() {
        assert!(parse_args(&v(&["describe"])).is_err(), "missing --data");
        assert!(parse_args(&v(&["describe", "positional"])).is_err());
        assert!(
            parse_args(&v(&["describe", "--data"])).is_err(),
            "dangling flag"
        );
        assert!(
            parse_args(&v(&["describe", "--data", "a", "--data", "b"])).is_err(),
            "duplicate flag"
        );
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn clean_parses() {
        let cmd = parse_args(&v(&[
            "clean",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--out",
            "c.csv",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Clean {
                data: "e.csv".into(),
                streets: "s.txt".into(),
                out: "c.csv".into(),
            }
        );
        assert!(parse_args(&v(&["clean", "--data", "e.csv"])).is_err());
    }

    #[test]
    fn suggest_config_parses() {
        let cmd = parse_args(&v(&["suggest-config", "--data", "e.csv"])).unwrap();
        assert_eq!(
            cmd,
            Command::SuggestConfig {
                data: "e.csv".into()
            }
        );
    }
}
