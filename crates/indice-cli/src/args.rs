//! Dependency-free command-line argument parsing for the `indice` binary.

use epc_faults::CrashSpec;
use epc_query::Stakeholder;
use std::collections::HashMap;

/// Environment variable holding the per-stage deadline budget (ms).
pub const STAGE_DEADLINE_ENV_VAR: &str = "INDICE_STAGE_DEADLINE_MS";

/// Noise presets for `generate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePreset {
    /// No corruption (clean collection).
    None,
    /// The default corruption mix.
    Default,
    /// Typo-heavy corruption for cleaning experiments.
    Heavy,
}

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic collection to disk.
    Generate {
        /// Number of certificates.
        records: usize,
        /// RNG seed.
        seed: u64,
        /// Corruption preset.
        noise: NoisePreset,
        /// Output directory.
        out_dir: String,
    },
    /// Print per-attribute summary statistics of a CSV collection.
    Describe {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run the full pipeline and write the dashboards.
    Run {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Path to the region-hierarchy JSON.
        regions: String,
        /// Target stakeholder.
        stakeholder: Stakeholder,
        /// The run directory (journal, checkpoints, and artifacts).
        out_dir: String,
        /// Resume from the run directory's journal instead of starting
        /// over (`--resume DIR` instead of `--out-dir DIR`).
        resume: bool,
        /// Seed of the deterministic fault injector (chaos testing).
        fault_seed: u64,
        /// Fraction of records the injector corrupts (0 disables).
        fault_rate: f64,
        /// Fraction of geocoder calls the injector fails transiently.
        geocode_fail_rate: f64,
        /// Abort (exit 1) when more than this fraction of input records
        /// ends up quarantined.
        max_quarantine_frac: Option<f64>,
        /// Injected crash point for durability testing (`stage:point`).
        crash_at: Option<CrashSpec>,
        /// Write a metrics snapshot here after the run (`.json` selects
        /// the JSON codec, anything else the Prometheus-style text).
        metrics_out: Option<String>,
        /// Write the structured span/point trace here (JSON Lines).
        trace_out: Option<String>,
    },
    /// Run an in-memory synthetic pipeline and emit a benchmark snapshot.
    Bench {
        /// Number of synthetic certificates.
        records: usize,
        /// RNG seed for the synthetic collection.
        seed: u64,
        /// Output path for the BENCH_5.json-shaped snapshot.
        out: String,
    },
    /// Print the auto-configuration advice for a collection.
    SuggestConfig {
        /// Path to the EPC CSV.
        data: String,
    },
    /// Run only the pre-processing stage and write the cleaned CSV.
    Clean {
        /// Path to the EPC CSV.
        data: String,
        /// Path to the referenced street map.
        streets: String,
        /// Output CSV path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
indice — INformative DynamiC dashboard Engine (EPC analysis)

USAGE:
  indice generate --records N [--seed S] [--noise none|default|heavy] --out-dir DIR
  indice describe --data epcs.csv
  indice run --data epcs.csv --streets street_map.txt --regions regions.json \\
             [--stakeholder pa|citizen|scientist] (--out-dir DIR | --resume DIR) \\
             [--max-quarantine-frac F] [--fault-seed S] [--fault-rate R] \\
             [--geocode-fail-rate R] [--crash-at STAGE:POINT] \\
             [--metrics-out FILE] [--trace-out FILE]
  indice bench --records N [--seed S] --out bench.json
  indice suggest-config --data epcs.csv
  indice clean --data epcs.csv --streets street_map.txt --out cleaned.csv
  indice help

`run` executes under a stage supervisor: malformed records are diverted
into a quarantine, transient geocoder failures are retried with
deterministic backoff (district-centroid fallback once the budget is
exhausted), and an analytics failure degrades the dashboard instead of
aborting. Exit codes: 0 complete, 3 degraded (partial output written),
1 failed, 70 injected crash.

`run` is durable: every completed stage is checkpointed into the run
directory with atomic writes and journaled in run.manifest.jsonl. After
an interruption, `--resume DIR` validates the journal, skips every stage
whose checkpoints verify, replays the rest, and finishes with artifacts
byte-identical to an uninterrupted run.

`--max-quarantine-frac F` aborts the run (exit 1) when more than the
given fraction of input records ends up quarantined — a data-quality
circuit breaker for unattended pipelines.

`--metrics-out FILE` writes a metrics snapshot after the run: counters,
gauges, and histograms from every stage (quarantine rules, geocoder
retries, K-means rounds, Apriori levels, dashboard markers, checkpoint
bytes). A `.json` extension selects the JSON codec; any other extension
the Prometheus-style text exposition. `--trace-out FILE` writes the
structured span/point trace as JSON Lines; every event carries a logical
sequence number, so the stream (minus wall-clock fields) is bitwise
identical at any thread count.

`bench` generates a synthetic collection in memory, runs the full
observed pipeline, and writes a benchmark snapshot (per-stage wall
milliseconds, records/sec, peak shard imbalance) to `--out`.

`--fault-seed` / `--fault-rate` / `--geocode-fail-rate` attach a
deterministic fault injector for chaos testing: the same seed and rates
reproduce the same faults, quarantine, and outputs at any thread count.
`--crash-at <stage>:<before|after|torn>` kills the run at the named
commit point (durability testing; exit 70).

ENVIRONMENT:
  INDICE_THREADS           thread budget for run/clean (default: all
                           hardware threads); outputs are identical for
                           any value
  INDICE_GEOCODE_RETRIES   retry budget for transient geocoder failures
                           (default: 3)
  INDICE_STAGE_DEADLINE_MS per-stage wall-clock budget in milliseconds;
                           an overrunning stage degrades the run
                           (default: unlimited)
";

/// Parses `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let flags = parse_flags(&args[1..])?;
    let get = |name: &str| -> Result<&String, String> {
        flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let records: usize = get("records")?
                .parse()
                .map_err(|e| format!("--records: {e}"))?;
            if records == 0 {
                return Err("--records must be positive".into());
            }
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let noise = match flags.get("noise").map(String::as_str) {
                None | Some("default") => NoisePreset::Default,
                Some("none") => NoisePreset::None,
                Some("heavy") => NoisePreset::Heavy,
                Some(other) => return Err(format!("unknown --noise preset {other:?}")),
            };
            Ok(Command::Generate {
                records,
                seed,
                noise,
                out_dir: get("out-dir")?.clone(),
            })
        }
        "describe" => Ok(Command::Describe {
            data: get("data")?.clone(),
        }),
        "run" => {
            let stakeholder = match flags.get("stakeholder").map(String::as_str) {
                None | Some("pa") | Some("public-administration") => {
                    Stakeholder::PublicAdministration
                }
                Some("citizen") => Stakeholder::Citizen,
                Some("scientist") | Some("energy-scientist") => Stakeholder::EnergyScientist,
                Some(other) => return Err(format!("unknown --stakeholder {other:?}")),
            };
            let fault_seed: u64 = flags
                .get("fault-seed")
                .map(|s| s.parse().map_err(|e| format!("--fault-seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            let fault_rate = parse_rate(&flags, "fault-rate")?;
            let geocode_fail_rate = parse_rate(&flags, "geocode-fail-rate")?;
            let (out_dir, resume) = match (flags.get("out-dir"), flags.get("resume")) {
                (Some(_), Some(_)) => {
                    return Err(
                        "--out-dir and --resume are mutually exclusive (both name the run \
                         directory; --resume continues from its journal)"
                            .into(),
                    )
                }
                (Some(dir), None) => (dir.clone(), false),
                (None, Some(dir)) => (dir.clone(), true),
                (None, None) => {
                    return Err("missing required flag --out-dir (or --resume DIR)".into())
                }
            };
            let max_quarantine_frac = match flags.get("max-quarantine-frac") {
                Some(_) => Some(parse_rate(&flags, "max-quarantine-frac")?),
                None => None,
            };
            let crash_at = flags
                .get("crash-at")
                .map(|raw| CrashSpec::parse(raw).map_err(|e| format!("--crash-at: {e}")))
                .transpose()?;
            Ok(Command::Run {
                data: get("data")?.clone(),
                streets: get("streets")?.clone(),
                regions: get("regions")?.clone(),
                stakeholder,
                out_dir,
                resume,
                fault_seed,
                fault_rate,
                geocode_fail_rate,
                max_quarantine_frac,
                crash_at,
                metrics_out: flags.get("metrics-out").cloned(),
                trace_out: flags.get("trace-out").cloned(),
            })
        }
        "bench" => {
            let records: usize = get("records")?
                .parse()
                .map_err(|e| format!("--records: {e}"))?;
            if records == 0 {
                return Err("--records must be positive".into());
            }
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
                .transpose()?
                .unwrap_or(2024);
            Ok(Command::Bench {
                records,
                seed,
                out: get("out")?.clone(),
            })
        }
        "suggest-config" => Ok(Command::SuggestConfig {
            data: get("data")?.clone(),
        }),
        "clean" => Ok(Command::Clean {
            data: get("data")?.clone(),
            streets: get("streets")?.clone(),
            out: get("out")?.clone(),
        }),
        other => Err(format!("unknown command {other:?}; try `indice help`")),
    }
}

/// Strictly validates an `INDICE_STAGE_DEADLINE_MS` value: `None` (unset)
/// means no deadline, anything set must parse as a positive integer —
/// a typo must fail loudly, not silently disable the watchdog.
pub fn parse_stage_deadline_ms(raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) if ms >= 1 => Ok(Some(ms)),
        Ok(_) => Err(format!(
            "{STAGE_DEADLINE_ENV_VAR} must be a positive integer (milliseconds), got 0"
        )),
        Err(_) => Err(format!(
            "{STAGE_DEADLINE_ENV_VAR} must be a positive integer (milliseconds), got {raw:?}"
        )),
    }
}

/// Parses an optional `[0, 1]` rate flag, defaulting to `0.0`.
fn parse_rate(flags: &HashMap<String, String>, name: &str) -> Result<f64, String> {
    let Some(raw) = flags.get(name) else {
        return Ok(0.0);
    };
    let rate: f64 = raw.parse().map_err(|e| format!("--{name}: {e}"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--{name} must be in [0, 1], got {rate}"));
    }
    Ok(rate)
}

/// Parses `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {arg:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        if flags.insert(name.to_owned(), value.clone()).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn generate_with_defaults() {
        let cmd = parse_args(&v(&["generate", "--records", "500", "--out-dir", "out"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 500,
                seed: 2024,
                noise: NoisePreset::Default,
                out_dir: "out".into(),
            }
        );
    }

    #[test]
    fn generate_with_all_flags() {
        let cmd = parse_args(&v(&[
            "generate",
            "--records",
            "100",
            "--seed",
            "7",
            "--noise",
            "heavy",
            "--out-dir",
            "d",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                records: 100,
                seed: 7,
                noise: NoisePreset::Heavy,
                out_dir: "d".into(),
            }
        );
    }

    #[test]
    fn generate_rejects_bad_values() {
        assert!(parse_args(&v(&["generate", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "abc", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&["generate", "--records", "0", "--out-dir", "d"])).is_err());
        assert!(parse_args(&v(&[
            "generate",
            "--records",
            "5",
            "--noise",
            "nope",
            "--out-dir",
            "d"
        ]))
        .is_err());
    }

    #[test]
    fn run_parses_stakeholders() {
        for (flag, expected) in [
            ("pa", Stakeholder::PublicAdministration),
            ("citizen", Stakeholder::Citizen),
            ("scientist", Stakeholder::EnergyScientist),
        ] {
            let cmd = parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--stakeholder",
                flag,
                "--out-dir",
                "o",
            ]))
            .unwrap();
            match cmd {
                Command::Run { stakeholder, .. } => assert_eq!(stakeholder, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn run_default_stakeholder_is_pa() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Run {
                stakeholder: Stakeholder::PublicAdministration,
                ..
            }
        ));
    }

    #[test]
    fn run_parses_fault_flags() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
            "--fault-seed",
            "99",
            "--fault-rate",
            "0.2",
            "--geocode-fail-rate",
            "0.1",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_seed,
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_seed, 99);
                assert_eq!(fault_rate, 0.2);
                assert_eq!(geocode_fail_rate, 0.1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_fault_flags_default_to_off() {
        let cmd = parse_args(&v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
            "--out-dir",
            "o",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                fault_rate,
                geocode_fail_rate,
                ..
            } => {
                assert_eq!(fault_rate, 0.0);
                assert_eq!(geocode_fail_rate, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rates_outside_unit_interval_are_rejected() {
        for bad in ["1.5", "-0.1", "abc"] {
            assert!(parse_args(&v(&[
                "run",
                "--data",
                "e.csv",
                "--streets",
                "s.txt",
                "--regions",
                "r.json",
                "--out-dir",
                "o",
                "--fault-rate",
                bad,
            ]))
            .is_err());
        }
    }

    #[test]
    fn flag_errors() {
        assert!(parse_args(&v(&["describe"])).is_err(), "missing --data");
        assert!(parse_args(&v(&["describe", "positional"])).is_err());
        assert!(
            parse_args(&v(&["describe", "--data"])).is_err(),
            "dangling flag"
        );
        assert!(
            parse_args(&v(&["describe", "--data", "a", "--data", "b"])).is_err(),
            "duplicate flag"
        );
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn clean_parses() {
        let cmd = parse_args(&v(&[
            "clean",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--out",
            "c.csv",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Clean {
                data: "e.csv".into(),
                streets: "s.txt".into(),
                out: "c.csv".into(),
            }
        );
        assert!(parse_args(&v(&["clean", "--data", "e.csv"])).is_err());
    }

    fn run_args(extra: &[&str]) -> Vec<String> {
        let mut base = v(&[
            "run",
            "--data",
            "e.csv",
            "--streets",
            "s.txt",
            "--regions",
            "r.json",
        ]);
        base.extend(extra.iter().map(|s| s.to_string()));
        base
    }

    #[test]
    fn run_resume_and_out_dir_are_exclusive() {
        let err = parse_args(&run_args(&["--out-dir", "o", "--resume", "o"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse_args(&run_args(&[])).unwrap_err();
        assert!(err.contains("--out-dir"), "{err}");
    }

    #[test]
    fn run_resume_sets_the_run_dir() {
        match parse_args(&run_args(&["--resume", "runs/x"])).unwrap() {
            Command::Run {
                out_dir, resume, ..
            } => {
                assert_eq!(out_dir, "runs/x");
                assert!(resume);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "runs/y"])).unwrap() {
            Command::Run {
                out_dir, resume, ..
            } => {
                assert_eq!(out_dir, "runs/y");
                assert!(!resume);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_parses_max_quarantine_frac() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--max-quarantine-frac",
            "0.25",
        ]))
        .unwrap()
        {
            Command::Run {
                max_quarantine_frac,
                ..
            } => assert_eq!(max_quarantine_frac, Some(0.25)),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "o"])).unwrap() {
            Command::Run {
                max_quarantine_frac,
                ..
            } => assert_eq!(max_quarantine_frac, None),
            other => panic!("unexpected {other:?}"),
        }
        for bad in ["1.5", "-0.1", "abc"] {
            assert!(
                parse_args(&run_args(&["--out-dir", "o", "--max-quarantine-frac", bad])).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn run_parses_crash_at() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--crash-at",
            "analytics:torn",
        ]))
        .unwrap()
        {
            Command::Run { crash_at, .. } => {
                assert_eq!(
                    crash_at,
                    Some(CrashSpec::Torn {
                        stage: "analytics".into()
                    })
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--crash-at",
            "analytics:during",
        ]))
        .unwrap_err();
        assert!(err.contains("--crash-at"), "{err}");
        assert!(err.contains("invalid crash spec"), "{err}");
    }

    #[test]
    fn stage_deadline_env_is_strictly_validated() {
        assert_eq!(parse_stage_deadline_ms(None).unwrap(), None);
        assert_eq!(parse_stage_deadline_ms(Some("250")).unwrap(), Some(250));
        assert_eq!(
            parse_stage_deadline_ms(Some(" 90000 ")).unwrap(),
            Some(90_000)
        );
        for bad in ["0", "-5", "fast", "1.5", ""] {
            let err = parse_stage_deadline_ms(Some(bad)).unwrap_err();
            assert!(err.contains(STAGE_DEADLINE_ENV_VAR), "{bad:?}: {err}");
        }
    }

    #[test]
    fn run_parses_observability_outputs() {
        match parse_args(&run_args(&[
            "--out-dir",
            "o",
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "t.jsonl",
        ]))
        .unwrap()
        {
            Command::Run {
                metrics_out,
                trace_out,
                ..
            } => {
                assert_eq!(metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(trace_out.as_deref(), Some("t.jsonl"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&run_args(&["--out-dir", "o"])).unwrap() {
            Command::Run {
                metrics_out,
                trace_out,
                ..
            } => {
                assert_eq!(metrics_out, None);
                assert_eq!(trace_out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bench_parses() {
        let cmd = parse_args(&v(&["bench", "--records", "800", "--out", "b.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                records: 800,
                seed: 2024,
                out: "b.json".into(),
            }
        );
        let cmd = parse_args(&v(&[
            "bench",
            "--records",
            "100",
            "--seed",
            "9",
            "--out",
            "b.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                records: 100,
                seed: 9,
                out: "b.json".into(),
            }
        );
        assert!(parse_args(&v(&["bench", "--out", "b.json"])).is_err());
        assert!(parse_args(&v(&["bench", "--records", "0", "--out", "b.json"])).is_err());
        assert!(parse_args(&v(&["bench", "--records", "10"])).is_err());
    }

    #[test]
    fn suggest_config_parses() {
        let cmd = parse_args(&v(&["suggest-config", "--data", "e.csv"])).unwrap();
        assert_eq!(
            cmd,
            Command::SuggestConfig {
                data: "e.csv".into()
            }
        );
    }
}
