//! Property tests: every parallel primitive must agree with its serial
//! equivalent — element-for-element, and bit-for-bit for floats — across
//! arbitrary inputs, thread budgets, and chunk sizes.

use epc_runtime::RuntimeConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_matches_serial_map(
        items in prop::collection::vec(-1_000i64..1_000, 0..300),
        threads in 1usize..9,
    ) {
        let expected: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(3) - 7).collect();
        let got = epc_runtime::par_map(&RuntimeConfig::new(threads), &items, |&x| {
            x.wrapping_mul(3) - 7
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn par_map_indexed_matches_enumerated_map(
        items in prop::collection::vec(0u32..10_000, 0..300),
        threads in 1usize..9,
    ) {
        let expected: Vec<(usize, u32)> =
            items.iter().enumerate().map(|(i, &x)| (i, x + 1)).collect();
        let got = epc_runtime::par_map_indexed(&RuntimeConfig::new(threads), &items, |i, &x| {
            (i, x + 1)
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn par_map_coarse_matches_serial_map(
        items in prop::collection::vec(-50.0f64..50.0, 0..40),
        threads in 1usize..9,
    ) {
        let expected: Vec<u64> = items.iter().map(|&x| (x * x + 1.0).to_bits()).collect();
        let got = epc_runtime::par_map_coarse(&RuntimeConfig::new(threads), &items, |&x| {
            (x * x + 1.0).to_bits()
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn par_reduce_float_sum_is_bitwise_stable_across_threads(
        items in prop::collection::vec(-1.0e6f64..1.0e6, 0..400),
        threads in 2usize..9,
        chunk_size in 1usize..64,
    ) {
        // Chunk boundaries depend only on chunk_size, so the operation
        // tree — and therefore every rounding step — is thread-invariant.
        let serial = epc_runtime::par_reduce(
            &RuntimeConfig::sequential(),
            &items,
            chunk_size,
            || 0.0f64,
            |acc, &x| acc + x,
            |a, b| a + b,
        );
        let parallel = epc_runtime::par_reduce(
            &RuntimeConfig::new(threads),
            &items,
            chunk_size,
            || 0.0f64,
            |acc, &x| acc + x,
            |a, b| a + b,
        );
        prop_assert_eq!(parallel.to_bits(), serial.to_bits());
    }

    #[test]
    fn par_reduce_histogram_matches_serial_fold(
        items in prop::collection::vec(0usize..16, 0..400),
        threads in 1usize..9,
        chunk_size in 1usize..64,
    ) {
        let mut expected = vec![0usize; 16];
        for &x in &items {
            expected[x] += 1;
        }
        let got = epc_runtime::par_reduce(
            &RuntimeConfig::new(threads),
            &items,
            chunk_size,
            || vec![0usize; 16],
            |mut acc, &x| {
                acc[x] += 1;
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        prop_assert_eq!(got, expected);
    }
}
