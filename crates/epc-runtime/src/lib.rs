//! # epc-runtime
//!
//! The execution-runtime layer of INDICE: deterministic data-parallel
//! primitives plus per-stage pipeline instrumentation.
//!
//! The paper's Figure-1 architecture is three sequential blocks
//! (pre-processing → analytics → dashboards). Scaling that architecture to
//! production traffic means running each block's hot loops data-parallel —
//! but visual-analytics outputs must stay *reproducible*: the same
//! collection must yield byte-identical dashboards regardless of how many
//! worker threads happen to be available.
//!
//! This crate guarantees that with two rules:
//!
//! 1. **Order-preserving maps** — [`par_map`] / [`par_map_indexed`] split
//!    the input into contiguous chunks, process chunks on scoped threads,
//!    and reassemble results in input order. A pure per-item function
//!    therefore produces exactly the sequential result.
//! 2. **Fixed-shape reductions** — [`par_reduce`] folds *fixed-size*
//!    chunks (the chunk boundaries depend only on `chunk_size`, never on
//!    the thread count) and combines the partials strictly in chunk-index
//!    order. Even non-associative float accumulation is then bitwise
//!    identical for any `threads`, including the sequential fallback at
//!    `threads = 1`, because the operation tree never changes shape.
//!
//! [`StageTimer`] and [`PipelineReport`] capture per-stage wall time and
//! record counts so benches and the CLI can report where time goes.

mod report;

pub use report::{
    wall_clock, Clock, ManualClock, PipelineReport, StageReport, StageTimer, WallClock,
};

use std::num::NonZeroUsize;

/// Environment variable consulted by [`RuntimeConfig::from_env`].
pub const THREADS_ENV_VAR: &str = "INDICE_THREADS";

/// Environment variable selecting the storage engine ([`Engine`]).
pub const ENGINE_ENV_VAR: &str = "INDICE_ENGINE";

/// Which storage layout the pipeline's hot loops iterate.
///
/// Like the thread budget, the engine is an *execution* knob: outputs must
/// be bitwise identical under either value (gated by the differential
/// harness in `tests/columnar.rs`), so it lives beside `threads` rather
/// than in the serialized pipeline configuration — it must never leak into
/// checkpoints, journals, or artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Row-shaped iteration over `epc-model` datasets (the default).
    #[default]
    Row,
    /// Columnar iteration over an `epc-columnar` store: dictionary-encoded
    /// categoricals, compressed numeric blocks, zone-map block skipping.
    Columnar,
}

impl Engine {
    /// Strictly validates an `INDICE_ENGINE` value: `None` (unset) selects
    /// the row engine, anything set must be `row` or `columnar`. Pure, so
    /// rejection paths are unit-testable without touching process state.
    pub fn parse(raw: Option<&str>) -> Result<Self, String> {
        let Some(raw) = raw else {
            return Ok(Engine::Row);
        };
        match raw.trim() {
            "row" => Ok(Engine::Row),
            "columnar" => Ok(Engine::Columnar),
            other => Err(format!(
                "{ENGINE_ENV_VAR} must be \"row\" or \"columnar\", got {other:?}"
            )),
        }
    }

    /// Like [`Engine::parse`] over the process environment, with malformed
    /// values reported as errors.
    pub fn try_from_env() -> Result<Self, String> {
        let raw = std::env::var(ENGINE_ENV_VAR).ok();
        Engine::parse(raw.as_deref())
    }

    /// Stable lower-case name, as accepted by [`Engine::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Engine::Row => "row",
            Engine::Columnar => "columnar",
        }
    }
}

/// Execution configuration shared by every parallel kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker-thread budget; `1` means fully sequential execution.
    pub threads: usize,
    /// Storage engine the pipeline iterates ([`Engine::Row`] by default).
    pub engine: Engine,
}

impl RuntimeConfig {
    /// Configuration with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        RuntimeConfig {
            threads: threads.max(1),
            engine: Engine::Row,
        }
    }

    /// Fully sequential execution.
    pub fn sequential() -> Self {
        RuntimeConfig::new(1)
    }

    /// The same thread budget with a different storage engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Reads the thread budget from the `INDICE_THREADS` environment
    /// variable; unset, empty, or unparsable values fall back to the
    /// machine default. `INDICE_THREADS=1` forces sequential execution.
    /// The storage engine is read from `INDICE_ENGINE` the same way,
    /// falling back to the row engine on malformed values.
    ///
    /// Prefer [`RuntimeConfig::try_from_env`] in user-facing entry points:
    /// it reports malformed values instead of silently ignoring them.
    pub fn from_env() -> Self {
        let base = match std::env::var(THREADS_ENV_VAR) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => RuntimeConfig::new(n),
                _ => RuntimeConfig::default(),
            },
            Err(_) => RuntimeConfig::default(),
        };
        base.with_engine(Engine::try_from_env().unwrap_or_default())
    }

    /// Strictly validates an `INDICE_THREADS` value: `None` (unset) is the
    /// machine default, anything set must be a positive integer. Pure, so
    /// rejection paths are unit-testable without touching process state.
    pub fn parse_threads(raw: Option<&str>) -> Result<Self, String> {
        let Some(raw) = raw else {
            return Ok(RuntimeConfig::default());
        };
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(RuntimeConfig::new(n)),
            Ok(0) => Err(format!(
                "{THREADS_ENV_VAR} must be a positive integer, got 0"
            )),
            _ => Err(format!(
                "{THREADS_ENV_VAR} must be a positive integer, got {raw:?}"
            )),
        }
    }

    /// Like [`RuntimeConfig::from_env`], but malformed values (for either
    /// `INDICE_THREADS` or `INDICE_ENGINE`) are an error instead of a
    /// silent fallback.
    pub fn try_from_env() -> Result<Self, String> {
        let raw = std::env::var(THREADS_ENV_VAR).ok();
        let base = RuntimeConfig::parse_threads(raw.as_deref())?;
        Ok(base.with_engine(Engine::try_from_env()?))
    }

    /// `true` when no worker threads will be spawned.
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for RuntimeConfig {
    /// One worker per available hardware thread (capped at 16 — the
    /// pipeline's kernels stop scaling well past that on one collection).
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        RuntimeConfig::new(hw.min(16))
    }
}

/// Joins a worker, propagating its panic into the caller.
fn join_worker<U>(handle: std::thread::ScopedJoinHandle<'_, U>) -> U {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Maps `f` over `items`, preserving input order in the output.
///
/// The input is split into `threads` contiguous chunks processed on scoped
/// threads ([`std::thread::scope`]), and chunk results are concatenated in
/// chunk order — so for a pure `f` the output is exactly
/// `items.iter().map(f).collect()` regardless of the thread budget.
pub fn par_map<T, U, F>(config: &RuntimeConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(config, items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(join_worker(handle));
        }
    });
    out
}

/// Order-preserving map for *coarse* tasks: few items, each expensive
/// (a region to mine, a dashboard zoom level to render).
///
/// Unlike [`par_map`], no per-thread minimum item count applies — up to
/// `threads` items run concurrently even when the input holds only a
/// handful. Results are still concatenated in input order, so a pure `f`
/// yields exactly the sequential output.
pub fn par_map_coarse<T, U, F>(config: &RuntimeConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = config.threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(join_worker(handle));
        }
    });
    out
}

/// Like [`par_map`], passing each item's input index to `f`.
pub fn par_map_indexed<T, U, F>(config: &RuntimeConfig, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = effective_threads(config, items.len());
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let base = chunk_idx * chunk_len;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, t)| f(base + offset, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(join_worker(handle));
        }
    });
    out
}

/// Reduces `items` through fixed-size chunk partials combined in chunk
/// order.
///
/// Each chunk of `chunk_size` consecutive items is folded independently
/// (`init()` then `fold` per item, left to right); the partials are then
/// combined left to right in chunk-index order. Because the chunk
/// decomposition depends only on `chunk_size`, the full operation tree —
/// and therefore the result, even for non-associative float math — is
/// identical for every thread budget, including `threads = 1`.
pub fn par_reduce<T, A, I, F, C>(
    config: &RuntimeConfig,
    items: &[T],
    chunk_size: usize,
    init: I,
    fold: F,
    combine: C,
) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let chunk_size = chunk_size.max(1);
    if items.is_empty() {
        return init();
    }
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let partials = par_map(config, &chunks, |chunk| chunk.iter().fold(init(), &fold));
    partials
        .into_iter()
        .reduce(combine)
        .expect("non-empty input yields at least one partial")
}

/// The chunk sizes [`par_map`] would use for `len` items under `config`.
///
/// Exposes the decomposition for observability: the ratio of the largest
/// shard to the mean is the *shard imbalance* reported by `indice bench`
/// (a perfectly balanced split reports 1.0). Returns one entry per chunk
/// actually spawned; a sequential run yields a single chunk of `len`.
pub fn shard_sizes(config: &RuntimeConfig, len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let threads = effective_threads(config, len);
    let chunk_len = len.div_ceil(threads);
    let full = len / chunk_len;
    let mut sizes = vec![chunk_len; full];
    if !len.is_multiple_of(chunk_len) {
        sizes.push(len % chunk_len);
    }
    sizes
}

/// Thread count actually worth spawning for `len` items.
fn effective_threads(config: &RuntimeConfig, len: usize) -> usize {
    // Spawning a thread for a handful of items costs more than it saves.
    const MIN_ITEMS_PER_THREAD: usize = 16;
    config
        .threads
        .min(len / MIN_ITEMS_PER_THREAD)
        .clamp(1, len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs() -> Vec<RuntimeConfig> {
        vec![
            RuntimeConfig::sequential(),
            RuntimeConfig::new(2),
            RuntimeConfig::new(3),
            RuntimeConfig::new(8),
        ]
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(
            RuntimeConfig::parse_threads(Some("4")).unwrap(),
            RuntimeConfig::new(4)
        );
        assert_eq!(
            RuntimeConfig::parse_threads(Some(" 1 ")).unwrap(),
            RuntimeConfig::sequential()
        );
        assert_eq!(
            RuntimeConfig::parse_threads(None).unwrap(),
            RuntimeConfig::default()
        );
    }

    #[test]
    fn parse_threads_rejects_malformed_values() {
        for bad in ["0", "-2", "abc", "", "4.5", "4 threads"] {
            let err = RuntimeConfig::parse_threads(Some(bad)).unwrap_err();
            assert!(err.contains(THREADS_ENV_VAR), "{err}");
        }
    }

    #[test]
    fn parse_engine_accepts_known_names_and_rejects_others() {
        assert_eq!(Engine::parse(None).unwrap(), Engine::Row);
        assert_eq!(Engine::parse(Some("row")).unwrap(), Engine::Row);
        assert_eq!(Engine::parse(Some(" columnar ")).unwrap(), Engine::Columnar);
        for bad in ["", "ROW", "col", "columnar engine", "0"] {
            let err = Engine::parse(Some(bad)).unwrap_err();
            assert!(err.contains(ENGINE_ENV_VAR), "{err}");
        }
        assert_eq!(Engine::Row.label(), "row");
        assert_eq!(Engine::Columnar.label(), "columnar");
    }

    #[test]
    fn with_engine_only_changes_the_engine() {
        let cfg = RuntimeConfig::new(4).with_engine(Engine::Columnar);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.engine, Engine::Columnar);
        assert_eq!(RuntimeConfig::new(4).engine, Engine::Row);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for cfg in cfgs() {
            assert_eq!(par_map(&cfg, &items, |x| x * 3 + 1), expected, "{cfg:?}");
        }
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let items: Vec<u32> = vec![7; 777];
        for cfg in cfgs() {
            let out = par_map_indexed(&cfg, &items, |i, &v| i as u32 + v);
            let expected: Vec<u32> = (0..777).map(|i| i + 7).collect();
            assert_eq!(out, expected, "{cfg:?}");
        }
    }

    #[test]
    fn par_map_coarse_runs_tiny_inputs_in_parallel() {
        // 4 items is below par_map's per-thread minimum, but coarse maps
        // must still distribute them.
        let items: Vec<u64> = vec![10, 20, 30, 40];
        for cfg in cfgs() {
            let out = par_map_coarse(&cfg, &items, |x| x + 1);
            assert_eq!(out, vec![11, 21, 31, 41], "{cfg:?}");
        }
        assert!(par_map_coarse(&RuntimeConfig::new(8), &Vec::<u8>::new(), |x| *x).is_empty());
    }

    #[test]
    fn par_reduce_is_bitwise_stable_for_floats() {
        // Values chosen so naive reassociation visibly changes the sum.
        let items: Vec<f64> = (0..10_000)
            .map(|i| (i as f64).sin() * 1e10 + 1e-10 * i as f64)
            .collect();
        let reference = par_reduce(
            &RuntimeConfig::sequential(),
            &items,
            512,
            || 0.0f64,
            |a, x| a + x,
            |a, b| a + b,
        );
        for cfg in cfgs() {
            let got = par_reduce(&cfg, &items, 512, || 0.0f64, |a, x| a + x, |a, b| a + b);
            assert_eq!(got.to_bits(), reference.to_bits(), "{cfg:?}");
        }
    }

    #[test]
    fn par_reduce_empty_returns_init() {
        let items: Vec<u64> = vec![];
        let got = par_reduce(
            &RuntimeConfig::new(4),
            &items,
            64,
            || 42u64,
            |a, x| a + x,
            |a, b| a + b,
        );
        assert_eq!(got, 42);
    }

    #[test]
    fn par_map_empty_and_tiny_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(&RuntimeConfig::new(8), &empty, |x| *x).is_empty());
        let tiny = vec![1u8, 2, 3];
        assert_eq!(
            par_map(&RuntimeConfig::new(8), &tiny, |x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..1000).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&RuntimeConfig::new(4), &items, |&x| {
                assert!(x != 500, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn shard_sizes_match_par_map_chunking() {
        assert!(shard_sizes(&RuntimeConfig::new(4), 0).is_empty());
        // Below the per-thread minimum: one sequential chunk.
        assert_eq!(shard_sizes(&RuntimeConfig::new(4), 10), vec![10]);
        // 100 items at 4 threads → ceil(100/4) = 25 per chunk.
        assert_eq!(shard_sizes(&RuntimeConfig::new(4), 100), vec![25; 4]);
        // Uneven tail chunk.
        assert_eq!(
            shard_sizes(&RuntimeConfig::new(4), 99),
            vec![25, 25, 25, 24]
        );
        for (cfg, len) in [(RuntimeConfig::new(3), 1000), (RuntimeConfig::new(8), 77)] {
            assert_eq!(shard_sizes(&cfg, len).iter().sum::<usize>(), len);
        }
    }

    #[test]
    fn config_parsing() {
        assert_eq!(RuntimeConfig::new(0).threads, 1);
        assert!(RuntimeConfig::sequential().is_sequential());
        assert!(RuntimeConfig::default().threads >= 1);
    }
}
