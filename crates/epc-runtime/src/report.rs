//! Per-stage instrumentation: wall time, record counts, and quarantine
//! accounting — plus the clock abstraction behind the stage deadline
//! watchdog.
//!
//! This module is the one deliberate exemption from lint rule D2 (no
//! wall-clock reads in chaos-hashed crates): timing here is
//! instrumentation only and never reaches a hashed artifact. The
//! [`Clock`] trait lets deadline enforcement stay deterministic under
//! test — production uses [`WallClock`], tests script a [`ManualClock`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic millisecond clock. The pipeline's deadline watchdog only
/// ever *samples* the clock at stage boundaries, so any monotone source
/// works — including a scripted one.
pub trait Clock: Sync {
    /// Milliseconds elapsed since an arbitrary (fixed) origin.
    fn now_ms(&self) -> u64;
}

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// The process-wide shared [`WallClock`] (origin fixed at first use).
///
/// Default time source for [`StageTimer::start`] — having one shared
/// instance keeps every uninjected sample on a single origin, so readings
/// from different call sites are mutually comparable.
pub fn wall_clock() -> &'static WallClock {
    static WALL: OnceLock<WallClock> = OnceLock::new();
    WALL.get_or_init(WallClock::new)
}

/// A deterministic scripted clock: every [`Clock::now_ms`] call returns
/// the current reading, then advances it by a fixed step. Two samples
/// around a stage therefore always observe exactly `step_ms` of elapsed
/// time — which makes deadline overruns reproducible in tests.
#[derive(Debug)]
pub struct ManualClock {
    now: AtomicU64,
    step_ms: u64,
}

impl ManualClock {
    /// A clock starting at 0 that advances `step_ms` per sample.
    pub fn advancing(step_ms: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(0),
            step_ms,
        }
    }

    /// A frozen clock (never advances) — stages appear instantaneous.
    pub fn frozen() -> Self {
        ManualClock::advancing(0)
    }

    /// Jumps the clock to an absolute reading.
    pub fn set(&self, now_ms: u64) {
        self.now.store(now_ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now.fetch_add(self.step_ms, Ordering::SeqCst)
    }
}

/// Timing and throughput of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (e.g. `preprocess`).
    pub name: String,
    /// Wall-clock duration of the stage.
    pub wall: Duration,
    /// Records entering the stage.
    pub records_in: usize,
    /// Records leaving the stage (after filtering/aggregation).
    pub records_out: usize,
    /// Records diverted to the quarantine by this stage.
    pub quarantined: usize,
    /// Fault histogram of the quarantined records: fault kind → count.
    pub faults: BTreeMap<String, usize>,
}

/// Running stopwatch for one stage; finish it into a [`StageReport`].
///
/// Time is sampled exclusively through the [`Clock`] trait — once at
/// start, once at finish. [`StageTimer::start`] uses the process-wide
/// [`wall_clock`]; [`StageTimer::start_with`] injects any clock, so
/// stage timing, the deadline watchdog, and trace events can share one
/// scripted [`ManualClock`] in determinism tests.
pub struct StageTimer<'a> {
    name: String,
    clock: &'a dyn Clock,
    started_ms: u64,
}

impl fmt::Debug for StageTimer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageTimer")
            .field("name", &self.name)
            .field("started_ms", &self.started_ms)
            .finish_non_exhaustive()
    }
}

impl StageTimer<'static> {
    /// Starts timing a stage against the process-wide wall clock.
    pub fn start(name: impl Into<String>) -> Self {
        StageTimer::start_with(name, wall_clock())
    }
}

impl<'a> StageTimer<'a> {
    /// Starts timing a stage against an injected clock.
    pub fn start_with(name: impl Into<String>, clock: &'a dyn Clock) -> Self {
        StageTimer {
            name: name.into(),
            clock,
            started_ms: clock.now_ms(),
        }
    }

    /// Stops the clock and records throughput.
    pub fn finish(self, records_in: usize, records_out: usize) -> StageReport {
        self.finish_detailed(records_in, records_out, 0, BTreeMap::new())
    }

    /// Stops the clock, also recording quarantine accounting.
    pub fn finish_detailed(
        self,
        records_in: usize,
        records_out: usize,
        quarantined: usize,
        faults: BTreeMap<String, usize>,
    ) -> StageReport {
        let wall = Duration::from_millis(self.clock.now_ms().saturating_sub(self.started_ms));
        StageReport {
            name: self.name,
            wall,
            records_in,
            records_out,
            quarantined,
            faults,
        }
    }
}

/// Ordered collection of stage reports for one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Thread budget the run executed with.
    pub threads: usize,
    /// Stage reports in execution order.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// Empty report for a run at the given thread budget.
    pub fn new(threads: usize) -> Self {
        PipelineReport {
            threads,
            stages: Vec::new(),
        }
    }

    /// Appends a finished stage.
    pub fn push(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Sum of stage wall times.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Total records quarantined across all stages.
    pub fn total_quarantined(&self) -> usize {
        self.stages.iter().map(|s| s.quarantined).sum()
    }

    /// The merged fault histogram across all stages: fault kind → count.
    pub fn fault_histogram(&self) -> BTreeMap<String, usize> {
        let mut merged = BTreeMap::new();
        for s in &self.stages {
            for (kind, n) in &s.faults {
                *merged.entry(kind.clone()).or_insert(0) += n;
            }
        }
        merged
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline report (threads = {}, total = {:.1?}):",
            self.threads,
            self.total_wall()
        )?;
        for s in &self.stages {
            write!(
                f,
                "  {:<12} {:>10.1?}   {:>7} in → {:>7} out",
                s.name, s.wall, s.records_in, s.records_out
            )?;
            if s.quarantined > 0 {
                let kinds: Vec<String> =
                    s.faults.iter().map(|(k, n)| format!("{k}: {n}")).collect();
                write!(
                    f,
                    "   [{} quarantined — {}]",
                    s.quarantined,
                    kinds.join(", ")
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_produces_report() {
        let t = StageTimer::start("preprocess");
        std::thread::sleep(Duration::from_millis(2));
        let r = t.finish(100, 90);
        assert_eq!(r.name, "preprocess");
        assert!(r.wall >= Duration::from_millis(2));
        assert_eq!((r.records_in, r.records_out), (100, 90));
    }

    #[test]
    fn report_accumulates_and_displays() {
        let mut rep = PipelineReport::new(4);
        rep.push(StageReport {
            name: "a".into(),
            wall: Duration::from_millis(5),
            records_in: 10,
            records_out: 8,
            quarantined: 0,
            faults: BTreeMap::new(),
        });
        rep.push(StageReport {
            name: "b".into(),
            wall: Duration::from_millis(7),
            records_in: 8,
            records_out: 8,
            quarantined: 0,
            faults: BTreeMap::new(),
        });
        assert_eq!(rep.total_wall(), Duration::from_millis(12));
        assert_eq!(rep.stage("b").unwrap().records_in, 8);
        let text = rep.to_string();
        assert!(text.contains("threads = 4"));
        assert!(text.contains('a') && text.contains('b'));
        assert!(
            !text.contains("quarantined"),
            "zero quarantine stays silent"
        );
    }

    #[test]
    fn quarantine_accounting_shows_in_display_and_totals() {
        let t = StageTimer::start("preprocess");
        let mut faults = BTreeMap::new();
        faults.insert("non_finite".to_owned(), 3usize);
        faults.insert("csv_parse".to_owned(), 1usize);
        let mut rep = PipelineReport::new(2);
        rep.push(t.finish_detailed(100, 96, 4, faults));
        assert_eq!(rep.total_quarantined(), 4);
        assert_eq!(rep.fault_histogram()["non_finite"], 3);
        let text = rep.to_string();
        assert!(text.contains("4 quarantined"), "{text}");
        assert!(text.contains("non_finite: 3"), "{text}");
    }

    #[test]
    fn finish_is_finish_detailed_with_no_quarantine() {
        let r = StageTimer::start("x").finish(5, 5);
        assert_eq!(r.quarantined, 0);
        assert!(r.faults.is_empty());
    }

    #[test]
    fn manual_clock_advances_per_sample() {
        let c = ManualClock::advancing(250);
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.now_ms(), 250);
        assert_eq!(c.now_ms(), 500);
        c.set(10_000);
        assert_eq!(c.now_ms(), 10_000);
        let frozen = ManualClock::frozen();
        assert_eq!(frozen.now_ms(), frozen.now_ms());
    }

    #[test]
    fn timer_reads_through_injected_clock() {
        let clock = ManualClock::advancing(125);
        let r = StageTimer::start_with("analytics", &clock).finish(10, 10);
        // advancing(125): start samples 0, finish samples 125.
        assert_eq!(r.wall, Duration::from_millis(125));
    }

    #[test]
    fn shared_wall_clock_is_single_origin_and_monotone() {
        let a = wall_clock().now_ms();
        let b = wall_clock().now_ms();
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }
}
