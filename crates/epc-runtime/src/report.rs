//! Per-stage instrumentation: wall time and record counts.

use std::fmt;
use std::time::{Duration, Instant};

/// Timing and throughput of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (e.g. `preprocess`).
    pub name: String,
    /// Wall-clock duration of the stage.
    pub wall: Duration,
    /// Records entering the stage.
    pub records_in: usize,
    /// Records leaving the stage (after filtering/aggregation).
    pub records_out: usize,
}

/// Running stopwatch for one stage; finish it into a [`StageReport`].
#[derive(Debug)]
pub struct StageTimer {
    name: String,
    start: Instant,
}

impl StageTimer {
    /// Starts timing a stage.
    pub fn start(name: impl Into<String>) -> Self {
        StageTimer {
            name: name.into(),
            start: Instant::now(),
        }
    }

    /// Stops the clock and records throughput.
    pub fn finish(self, records_in: usize, records_out: usize) -> StageReport {
        StageReport {
            name: self.name,
            wall: self.start.elapsed(),
            records_in,
            records_out,
        }
    }
}

/// Ordered collection of stage reports for one pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineReport {
    /// Thread budget the run executed with.
    pub threads: usize,
    /// Stage reports in execution order.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// Empty report for a run at the given thread budget.
    pub fn new(threads: usize) -> Self {
        PipelineReport {
            threads,
            stages: Vec::new(),
        }
    }

    /// Appends a finished stage.
    pub fn push(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Sum of stage wall times.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Looks up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline report (threads = {}, total = {:.1?}):",
            self.threads,
            self.total_wall()
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "  {:<12} {:>10.1?}   {:>7} in → {:>7} out",
                s.name, s.wall, s.records_in, s.records_out
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_produces_report() {
        let t = StageTimer::start("preprocess");
        std::thread::sleep(Duration::from_millis(2));
        let r = t.finish(100, 90);
        assert_eq!(r.name, "preprocess");
        assert!(r.wall >= Duration::from_millis(2));
        assert_eq!((r.records_in, r.records_out), (100, 90));
    }

    #[test]
    fn report_accumulates_and_displays() {
        let mut rep = PipelineReport::new(4);
        rep.push(StageReport {
            name: "a".into(),
            wall: Duration::from_millis(5),
            records_in: 10,
            records_out: 8,
        });
        rep.push(StageReport {
            name: "b".into(),
            wall: Duration::from_millis(7),
            records_in: 8,
            records_out: 8,
        });
        assert_eq!(rep.total_wall(), Duration::from_millis(12));
        assert_eq!(rep.stage("b").unwrap().records_in, 8);
        let text = rep.to_string();
        assert!(text.contains("threads = 4"));
        assert!(text.contains('a') && text.contains('b'));
    }
}
