//! The supervising fleet coordinator.
//!
//! `run_fleet` drives one shard per city through a bounded, deterministic
//! retry loop, journaling every lifecycle transition. Cities run in plan
//! order — parallelism lives *inside* each shard (the pipeline's
//! deterministic runtime), so the fleet result is invariant to thread
//! count by construction and the journal needs no interleaving rules.
//!
//! Crash safety: a city's `committed` journal line is its commit point.
//! On resume, a city is a *journal hit* only if its event group is
//! grammar-valid, ends in `committed`, carries the current fleet
//! fingerprint, and every recorded checkpoint hash-verifies on disk;
//! anything else — abandoned, unfinished, torn, stale — replays from
//! scratch. After the fleet completes, the journal is rewritten in
//! canonical plan order so a resumed run's journal is byte-identical to
//! an uninterrupted run's.

use crate::backoff::RetryPolicy;
use crate::journal::{FleetEvent, FleetJournal};
use epc_journal::ArtifactRecord;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// One attempt's verdict, as reported by the [`ShardRunner`].
#[derive(Debug, Clone, PartialEq)]
pub enum ShardAttempt {
    /// The shard ran to a committed product. `checkpoints` (paths
    /// relative to the fleet directory) must already be durable on disk —
    /// the coordinator journals them as the city's commit point.
    Committed {
        /// The shard's own supervisor degraded one or more stages.
        degraded: bool,
        /// Per-stage degradation reasons, if any.
        reasons: Vec<String>,
        /// Provenance surfaced into the fleet report and dashboard.
        summary: BTreeMap<String, String>,
        /// Hash-recorded artifacts a resume must verify.
        checkpoints: Vec<ArtifactRecord>,
    },
    /// The shard failed cleanly (stage error, corrupt inputs, …).
    Failed {
        /// Human-readable failure reason, journaled with the retry.
        reason: String,
    },
}

/// Runs one deterministic attempt of one city's shard. Implementations
/// must be attempt-idempotent: the coordinator may call `run_attempt` for
/// the same city again (fresh attempt number) after a failure, and a
/// resumed coordinator will re-call it for cities that never committed.
pub trait ShardRunner {
    /// Execute attempt `attempt` (1-based) of `city`'s pipeline. Panics
    /// are contained by the coordinator and count as failed attempts.
    fn run_attempt(&self, city: &str, attempt: u32) -> Result<ShardAttempt, CoordError>;
}

/// Terminal status of one city's shard.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardStatus {
    /// The shard committed (possibly with internal stage degradation).
    Committed,
    /// The shard exhausted its retry budget.
    Abandoned {
        /// Reason of the final failed attempt.
        reason: String,
    },
}

/// Per-city provenance in the fleet result.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// City id.
    pub city: String,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Terminal status.
    pub status: ShardStatus,
    /// `true` when the city was rehydrated from the journal instead of
    /// re-run (resume hit).
    pub from_journal: bool,
    /// Journaled backoff schedule actually consumed (one delay per retry).
    pub backoff_ms: Vec<u64>,
    /// Whether the committed shard degraded internally.
    pub degraded: bool,
    /// Degradation (committed) or failure (abandoned) reasons.
    pub reasons: Vec<String>,
    /// Shard summary provenance (committed shards only).
    pub summary: BTreeMap<String, String>,
    /// Committed checkpoints, relative to the fleet directory.
    pub checkpoints: Vec<ArtifactRecord>,
}

/// Fleet-level outcome ladder, mirroring the per-run
/// `RunOutcome {Complete | Degraded | Failed}`.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOutcome {
    /// Every city committed.
    Complete,
    /// Some cities were abandoned but the fleet still produced a partial
    /// result (within the `max_failed` tolerance, and at least one city
    /// committed).
    Degraded {
        /// Cities that exhausted their retry budget, in plan order.
        failed_cities: Vec<String>,
        /// One reason per failed city.
        reasons: Vec<String>,
    },
    /// The fleet produced no usable result (every city abandoned, or the
    /// abandonment count exceeded the configured tolerance).
    Failed(String),
}

impl FleetOutcome {
    /// Process exit code, matching the per-run matrix: 0 complete,
    /// 3 degraded, 1 failed.
    pub fn exit_code(&self) -> u8 {
        match self {
            FleetOutcome::Complete => 0,
            FleetOutcome::Degraded { .. } => 3,
            FleetOutcome::Failed(_) => 1,
        }
    }
}

/// Deterministic coordinator crash injection point, for chaos tests of
/// the fleet journal itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordCrash {
    /// Crash before the i-th city (plan order) is scheduled.
    BeforeCity(usize),
    /// Crash immediately after the i-th city's terminal journal line.
    AfterCommit(usize),
}

/// Coordinator-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordError {
    /// Journal or filesystem failure (message names the path involved).
    Io(String),
    /// An injected crash fired — the process should exit with the crash
    /// exit code; the journal is positioned for resume.
    CrashInjected {
        /// Where the crash fired, e.g. `city 1:before`.
        at: String,
    },
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Io(msg) => write!(f, "fleet i/o error: {msg}"),
            CoordError::CrashInjected { at } => write!(f, "injected coordinator crash at {at}"),
        }
    }
}

impl std::error::Error for CoordError {}

/// Options governing one `run_fleet` call.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Fleet run directory (created if absent); the fleet journal and all
    /// per-city artifacts live under it.
    pub dir: PathBuf,
    /// Replay the existing fleet journal instead of starting fresh.
    pub resume: bool,
    /// Retry budget and backoff schedule.
    pub policy: RetryPolicy,
    /// Fleet config fingerprint; journal groups with a different
    /// fingerprint are invalidated on resume.
    pub fingerprint: String,
    /// Maximum abandoned cities tolerated before the fleet fails
    /// outright. `None` tolerates any number as long as at least one
    /// city commits.
    pub max_failed: Option<usize>,
    /// Injected coordinator crash point (chaos tests only).
    pub crash: Option<CoordCrash>,
}

impl FleetOptions {
    /// Fresh-run options with the default retry policy and no tolerance
    /// limit.
    pub fn new(dir: &Path, fingerprint: &str) -> Self {
        FleetOptions {
            dir: dir.to_path_buf(),
            resume: false,
            policy: RetryPolicy::default(),
            fingerprint: fingerprint.to_owned(),
            max_failed: None,
            crash: None,
        }
    }
}

/// What `run_fleet` returns on a non-crashed run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Fleet-level outcome ladder.
    pub outcome: FleetOutcome,
    /// One report per city, in plan order.
    pub shards: Vec<ShardReport>,
    /// Cities rehydrated from the journal (resume hits), plan order.
    pub journal_hits: Vec<String>,
    /// Cities executed (or re-executed) by this call, plan order.
    pub replayed: Vec<String>,
}

fn io_err(e: std::io::Error) -> CoordError {
    CoordError::Io(e.to_string())
}

/// A validated, committed journal group for one city.
struct JournalHit {
    events: Vec<FleetEvent>,
    report: ShardReport,
}

/// Walks one city's event group against the lifecycle grammar; returns a
/// rehydrated report only for a valid, committed, checkpoint-verified
/// group.
fn validate_group(
    city: &str,
    events: &[FleetEvent],
    fingerprint: &str,
    fleet_dir: &Path,
) -> Option<ShardReport> {
    let (first, rest) = events.split_first()?;
    if first.kind != "scheduled" || first.fingerprint != fingerprint {
        return None;
    }
    let mut expected_attempt = 1u32;
    let mut awaiting = "started";
    let mut backoff_ms = Vec::new();
    let mut terminal: Option<&FleetEvent> = None;
    for event in rest {
        if terminal.is_some() || event.fingerprint != fingerprint {
            return None;
        }
        match (awaiting, event.kind.as_str()) {
            ("started", "started") if event.attempt == expected_attempt => {
                awaiting = "outcome";
            }
            ("outcome", "retried") if event.attempt == expected_attempt => {
                backoff_ms.push(event.backoff_ms);
                expected_attempt += 1;
                awaiting = "started";
            }
            ("outcome", "committed") | ("outcome", "abandoned")
                if event.attempt == expected_attempt =>
            {
                terminal = Some(event);
            }
            _ => return None,
        }
    }
    let terminal = terminal?;
    if terminal.kind != "committed" {
        return None; // abandoned groups replay on resume
    }
    for checkpoint in &terminal.checkpoints {
        if checkpoint.read_verified(fleet_dir).is_err() {
            return None;
        }
    }
    Some(ShardReport {
        city: city.to_owned(),
        attempts: terminal.attempt,
        status: ShardStatus::Committed,
        from_journal: true,
        backoff_ms,
        degraded: terminal.degraded,
        reasons: terminal.reasons.clone(),
        summary: terminal.summary.clone(),
        checkpoints: terminal.checkpoints.clone(),
    })
}

/// Partitions a loaded journal into per-city groups (order of first
/// appearance is irrelevant — lookups are by city id).
fn group_events(events: Vec<FleetEvent>) -> BTreeMap<String, Vec<FleetEvent>> {
    let mut groups: BTreeMap<String, Vec<FleetEvent>> = BTreeMap::new();
    for event in events {
        groups.entry(event.city.clone()).or_default().push(event);
    }
    groups
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "shard panicked".to_owned()
    }
}

/// Runs the fleet: one supervised, journaled retry loop per city in plan
/// order. Returns `Err(CoordError::CrashInjected)` only for injected
/// crash points; every shard-level failure (including panics) is
/// contained and folded into the [`FleetOutcome`].
pub fn run_fleet(
    cities: &[String],
    opts: &FleetOptions,
    runner: &dyn ShardRunner,
) -> Result<FleetResult, CoordError> {
    std::fs::create_dir_all(&opts.dir).map_err(|e| {
        CoordError::Io(format!(
            "creating fleet directory {}: {e}",
            opts.dir.display()
        ))
    })?;
    let journal = FleetJournal::at(&opts.dir);

    // Resume: validate committed groups, drop everything else.
    let mut hits: BTreeMap<String, JournalHit> = BTreeMap::new();
    if opts.resume {
        let mut groups = group_events(journal.load().map_err(io_err)?);
        for city in cities {
            if let Some(events) = groups.remove(city) {
                if let Some(report) = validate_group(city, &events, &opts.fingerprint, &opts.dir) {
                    hits.insert(city.clone(), JournalHit { events, report });
                }
            }
        }
        // Rewrite the journal down to the surviving groups (plan order)
        // before replaying, so a crash during replay resumes from a clean
        // prefix.
        let mut surviving = Vec::new();
        for city in cities {
            if let Some(hit) = hits.get(city) {
                surviving.extend(hit.events.iter().cloned());
            }
        }
        journal.rewrite(&surviving).map_err(io_err)?;
    } else {
        journal.rewrite(&[]).map_err(io_err)?;
    }

    let mut shards: Vec<ShardReport> = Vec::new();
    let mut journal_hits = Vec::new();
    let mut replayed = Vec::new();
    // Events appended by this call, kept for the final canonicalization.
    let mut fresh_events: BTreeMap<String, Vec<FleetEvent>> = BTreeMap::new();

    for (index, city) in cities.iter().enumerate() {
        if let Some(hit) = hits.get(city) {
            journal_hits.push(city.clone());
            shards.push(hit.report.clone());
            continue;
        }
        if opts.crash == Some(CoordCrash::BeforeCity(index)) {
            return Err(CoordError::CrashInjected {
                at: format!("city {index}:before"),
            });
        }
        replayed.push(city.clone());
        let mut events = Vec::new();
        let push = |journal: &FleetJournal,
                    events: &mut Vec<FleetEvent>,
                    event: FleetEvent|
         -> Result<(), CoordError> {
            journal.append(&event).map_err(io_err)?;
            events.push(event);
            Ok(())
        };
        push(
            &journal,
            &mut events,
            FleetEvent::scheduled(city, &opts.fingerprint),
        )?;

        let mut backoff_ms = Vec::new();
        let mut report: Option<ShardReport> = None;
        let max_attempts = opts.policy.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            push(
                &journal,
                &mut events,
                FleetEvent::started(city, &opts.fingerprint, attempt),
            )?;
            let outcome = catch_unwind(AssertUnwindSafe(|| runner.run_attempt(city, attempt)));
            let failure_reason = match outcome {
                Ok(Ok(ShardAttempt::Committed {
                    degraded,
                    reasons,
                    summary,
                    checkpoints,
                })) => {
                    push(
                        &journal,
                        &mut events,
                        FleetEvent::committed(
                            city,
                            &opts.fingerprint,
                            attempt,
                            degraded,
                            reasons.clone(),
                            summary.clone(),
                            checkpoints.clone(),
                        ),
                    )?;
                    report = Some(ShardReport {
                        city: city.clone(),
                        attempts: attempt,
                        status: ShardStatus::Committed,
                        from_journal: false,
                        backoff_ms: backoff_ms.clone(),
                        degraded,
                        reasons,
                        summary,
                        checkpoints,
                    });
                    break;
                }
                Ok(Ok(ShardAttempt::Failed { reason })) => reason,
                Ok(Err(crash @ CoordError::CrashInjected { .. })) => return Err(crash),
                Ok(Err(CoordError::Io(msg))) => msg,
                Err(payload) => format!("shard panicked: {}", panic_message(payload)),
            };
            if attempt < max_attempts {
                let delay = opts.policy.backoff.delay_ms(city, attempt);
                backoff_ms.push(delay);
                push(
                    &journal,
                    &mut events,
                    FleetEvent::retried(city, &opts.fingerprint, attempt, delay, &failure_reason),
                )?;
            } else {
                push(
                    &journal,
                    &mut events,
                    FleetEvent::abandoned(city, &opts.fingerprint, attempt, &failure_reason),
                )?;
                report = Some(ShardReport {
                    city: city.clone(),
                    attempts: attempt,
                    status: ShardStatus::Abandoned {
                        reason: failure_reason,
                    },
                    from_journal: false,
                    backoff_ms: backoff_ms.clone(),
                    degraded: false,
                    reasons: Vec::new(),
                    summary: BTreeMap::new(),
                    checkpoints: Vec::new(),
                });
            }
        }
        fresh_events.insert(city.clone(), events);
        shards.push(report.unwrap_or_else(|| ShardReport {
            city: city.clone(),
            attempts: 0,
            status: ShardStatus::Abandoned {
                reason: "retry budget was zero".to_owned(),
            },
            from_journal: false,
            backoff_ms: Vec::new(),
            degraded: false,
            reasons: Vec::new(),
            summary: BTreeMap::new(),
            checkpoints: Vec::new(),
        }));
        if opts.crash == Some(CoordCrash::AfterCommit(index)) {
            return Err(CoordError::CrashInjected {
                at: format!("city {index}:after"),
            });
        }
    }

    // Canonicalize: rewrite the journal grouped per city in plan order,
    // so resumed and uninterrupted fleets end with identical bytes.
    let mut canonical = Vec::new();
    for city in cities {
        if let Some(hit) = hits.get(city) {
            canonical.extend(hit.events.iter().cloned());
        } else if let Some(events) = fresh_events.get(city) {
            canonical.extend(events.iter().cloned());
        }
    }
    journal.rewrite(&canonical).map_err(io_err)?;

    let failed: Vec<&ShardReport> = shards
        .iter()
        .filter(|s| matches!(s.status, ShardStatus::Abandoned { .. }))
        .collect();
    let outcome = if failed.is_empty() {
        FleetOutcome::Complete
    } else if failed.len() == shards.len() {
        FleetOutcome::Failed(format!(
            "all {} cities exhausted their retry budget",
            failed.len()
        ))
    } else if opts.max_failed.is_some_and(|k| failed.len() > k) {
        FleetOutcome::Failed(format!(
            "{} cities abandoned, exceeding the tolerance of {}",
            failed.len(),
            opts.max_failed.unwrap_or(0)
        ))
    } else {
        FleetOutcome::Degraded {
            failed_cities: failed.iter().map(|s| s.city.clone()).collect(),
            reasons: failed
                .iter()
                .map(|s| match &s.status {
                    ShardStatus::Abandoned { reason } => format!("{}: {reason}", s.city),
                    ShardStatus::Committed => String::new(),
                })
                .collect(),
        }
    };

    Ok(FleetResult {
        outcome,
        shards,
        journal_hits,
        replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epc_journal::write_atomic_path;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "epc-coord-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// Deterministic mock: city behaviour is a pure function of
    /// `(city, attempt)`, like the real pipeline under injected faults.
    struct MockRunner {
        fleet_dir: PathBuf,
        /// City → number of leading attempts that fail.
        fail_first: BTreeMap<String, u32>,
        /// Cities whose failing attempts panic instead of erroring.
        panics: Vec<String>,
    }

    impl MockRunner {
        fn new(fleet_dir: &Path) -> Self {
            MockRunner {
                fleet_dir: fleet_dir.to_path_buf(),
                fail_first: BTreeMap::new(),
                panics: Vec::new(),
            }
        }
    }

    impl ShardRunner for MockRunner {
        fn run_attempt(&self, city: &str, attempt: u32) -> Result<ShardAttempt, CoordError> {
            let failures = self.fail_first.get(city).copied().unwrap_or(0);
            if attempt <= failures {
                if self.panics.iter().any(|c| c == city) {
                    panic!("injected panic in {city}");
                }
                return Ok(ShardAttempt::Failed {
                    reason: format!("injected failure on attempt {attempt}"),
                });
            }
            let rel = format!("cities/{city}/out.json");
            let content = format!("{{\"city\":\"{city}\"}}");
            let mut rec = write_atomic_path(&self.fleet_dir.join(&rel), content.as_bytes())
                .map_err(|e| CoordError::Io(e.to_string()))?;
            rec.file = rel;
            Ok(ShardAttempt::Committed {
                degraded: false,
                reasons: Vec::new(),
                summary: BTreeMap::from([("records".to_owned(), "9".to_owned())]),
                checkpoints: vec![rec],
            })
        }
    }

    fn cities(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn clean_fleet_completes() {
        let dir = temp_dir();
        let plan = cities(&["a", "b", "c"]);
        let result = run_fleet(
            &plan,
            &FleetOptions::new(&dir, "fp"),
            &MockRunner::new(&dir),
        )
        .unwrap();
        assert_eq!(result.outcome, FleetOutcome::Complete);
        assert_eq!(result.outcome.exit_code(), 0);
        assert_eq!(result.shards.len(), 3);
        assert!(result.journal_hits.is_empty());
        assert_eq!(result.replayed, plan);
        assert!(result.shards.iter().all(|s| s.attempts == 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_attempt_is_retried_within_budget() {
        let dir = temp_dir();
        let mut runner = MockRunner::new(&dir);
        runner.fail_first.insert("b".to_owned(), 1);
        let result = run_fleet(
            &cities(&["a", "b"]),
            &FleetOptions::new(&dir, "fp"),
            &runner,
        )
        .unwrap();
        assert_eq!(result.outcome, FleetOutcome::Complete);
        let b = &result.shards[1];
        assert_eq!(b.attempts, 2);
        assert_eq!(b.backoff_ms.len(), 1);
        let events = FleetJournal::at(&dir).load().unwrap();
        assert!(events.iter().any(|e| e.city == "b" && e.kind == "retried"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panicking_shard_is_contained_and_degrades_fleet() {
        let dir = temp_dir();
        let mut runner = MockRunner::new(&dir);
        runner.fail_first.insert("b".to_owned(), u32::MAX);
        runner.panics.push("b".to_owned());
        let result = run_fleet(
            &cities(&["a", "b", "c"]),
            &FleetOptions::new(&dir, "fp"),
            &runner,
        )
        .unwrap();
        match &result.outcome {
            FleetOutcome::Degraded {
                failed_cities,
                reasons,
            } => {
                assert_eq!(failed_cities, &["b"]);
                assert!(reasons[0].contains("injected panic in b"), "{reasons:?}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(result.outcome.exit_code(), 3);
        // Surviving cities are committed and their artifacts exist.
        assert!(dir.join("cities/a/out.json").exists());
        assert!(dir.join("cities/c/out.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_city_failing_fails_the_fleet() {
        let dir = temp_dir();
        let mut runner = MockRunner::new(&dir);
        runner.fail_first.insert("a".to_owned(), u32::MAX);
        runner.fail_first.insert("b".to_owned(), u32::MAX);
        let result = run_fleet(
            &cities(&["a", "b"]),
            &FleetOptions::new(&dir, "fp"),
            &runner,
        )
        .unwrap();
        assert!(matches!(result.outcome, FleetOutcome::Failed(_)));
        assert_eq!(result.outcome.exit_code(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_failed_tolerance_turns_degraded_into_failed() {
        let dir = temp_dir();
        let mut runner = MockRunner::new(&dir);
        runner.fail_first.insert("b".to_owned(), u32::MAX);
        runner.fail_first.insert("c".to_owned(), u32::MAX);
        let mut opts = FleetOptions::new(&dir, "fp");
        opts.max_failed = Some(1);
        let result = run_fleet(&cities(&["a", "b", "c", "d"]), &opts, &runner).unwrap();
        assert!(matches!(result.outcome, FleetOutcome::Failed(_)));
        opts.max_failed = Some(2);
        let result = run_fleet(&cities(&["a", "b", "c", "d"]), &opts, &runner).unwrap();
        assert!(matches!(result.outcome, FleetOutcome::Degraded { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_commit_resumes_byte_identically() {
        let baseline_dir = temp_dir();
        let crashed_dir = temp_dir();
        let plan = cities(&["a", "b", "c"]);

        let baseline = run_fleet(
            &plan,
            &FleetOptions::new(&baseline_dir, "fp"),
            &MockRunner::new(&baseline_dir),
        )
        .unwrap();
        assert_eq!(baseline.outcome, FleetOutcome::Complete);

        let mut opts = FleetOptions::new(&crashed_dir, "fp");
        opts.crash = Some(CoordCrash::AfterCommit(0));
        let err = run_fleet(&plan, &opts, &MockRunner::new(&crashed_dir)).unwrap_err();
        assert!(matches!(err, CoordError::CrashInjected { .. }));

        let mut resume_opts = FleetOptions::new(&crashed_dir, "fp");
        resume_opts.resume = true;
        let resumed = run_fleet(&plan, &resume_opts, &MockRunner::new(&crashed_dir)).unwrap();
        assert_eq!(resumed.outcome, FleetOutcome::Complete);
        assert_eq!(resumed.journal_hits, vec!["a".to_owned()]);
        assert_eq!(resumed.replayed, vec!["b".to_owned(), "c".to_owned()]);
        assert!(resumed.shards[0].from_journal);

        let a = fs::read(FleetJournal::at(&baseline_dir).path()).unwrap();
        let b = fs::read(FleetJournal::at(&crashed_dir).path()).unwrap();
        assert_eq!(a, b, "resumed fleet journal must match uninterrupted");
        fs::remove_dir_all(&baseline_dir).unwrap();
        fs::remove_dir_all(&crashed_dir).unwrap();
    }

    #[test]
    fn crash_before_city_replays_that_city_on_resume() {
        let dir = temp_dir();
        let plan = cities(&["a", "b"]);
        let mut opts = FleetOptions::new(&dir, "fp");
        opts.crash = Some(CoordCrash::BeforeCity(1));
        let err = run_fleet(&plan, &opts, &MockRunner::new(&dir)).unwrap_err();
        assert_eq!(
            err,
            CoordError::CrashInjected {
                at: "city 1:before".to_owned()
            }
        );
        let mut resume_opts = FleetOptions::new(&dir, "fp");
        resume_opts.resume = true;
        let resumed = run_fleet(&plan, &resume_opts, &MockRunner::new(&dir)).unwrap();
        assert_eq!(resumed.journal_hits, vec!["a".to_owned()]);
        assert_eq!(resumed.replayed, vec!["b".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_cities_replay_on_resume() {
        let dir = temp_dir();
        let plan = cities(&["a", "b"]);
        let mut runner = MockRunner::new(&dir);
        runner.fail_first.insert("b".to_owned(), u32::MAX);
        let first = run_fleet(&plan, &FleetOptions::new(&dir, "fp"), &runner).unwrap();
        assert!(matches!(first.outcome, FleetOutcome::Degraded { .. }));

        // The fault clears (fresh runner without the failure): resume
        // gives the abandoned city another budget.
        let mut resume_opts = FleetOptions::new(&dir, "fp");
        resume_opts.resume = true;
        let resumed = run_fleet(&plan, &resume_opts, &MockRunner::new(&dir)).unwrap();
        assert_eq!(resumed.outcome, FleetOutcome::Complete);
        assert_eq!(resumed.journal_hits, vec!["a".to_owned()]);
        assert_eq!(resumed.replayed, vec!["b".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_fingerprint_invalidates_journal_hits() {
        let dir = temp_dir();
        let plan = cities(&["a"]);
        run_fleet(
            &plan,
            &FleetOptions::new(&dir, "fp-1"),
            &MockRunner::new(&dir),
        )
        .unwrap();
        let mut opts = FleetOptions::new(&dir, "fp-2");
        opts.resume = true;
        let resumed = run_fleet(&plan, &opts, &MockRunner::new(&dir)).unwrap();
        assert!(resumed.journal_hits.is_empty());
        assert_eq!(resumed.replayed, vec!["a".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_checkpoint_forces_replay() {
        let dir = temp_dir();
        let plan = cities(&["a"]);
        run_fleet(
            &plan,
            &FleetOptions::new(&dir, "fp"),
            &MockRunner::new(&dir),
        )
        .unwrap();
        fs::write(dir.join("cities/a/out.json"), b"{\"city\":\"X\"}").unwrap();
        let mut opts = FleetOptions::new(&dir, "fp");
        opts.resume = true;
        let resumed = run_fleet(&plan, &opts, &MockRunner::new(&dir)).unwrap();
        assert!(resumed.journal_hits.is_empty());
        assert_eq!(resumed.replayed, vec!["a".to_owned()]);
        // The replay restores the checkpoint.
        assert_eq!(
            fs::read(dir.join("cities/a/out.json")).unwrap(),
            b"{\"city\":\"a\"}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
