//! # epc-coord
//!
//! The fleet coordinator: runs N per-city pipeline shards under
//! supervision, so one bad city degrades the fleet run instead of killing
//! it. The ROADMAP north-star is every region's registry at once; at that
//! scale shard failure is the common case, and the coordinator is the
//! layer that turns it into provenance instead of an abort.
//!
//! Three guarantees, mirroring the single-city pipeline's:
//!
//! * **Isolation** — each shard attempt runs behind `catch_unwind`; a
//!   panicking shard becomes a failed attempt, never a crashed fleet.
//! * **Bounded deterministic retry** — failed shards are retried up to a
//!   budget ([`RetryPolicy`]); the backoff schedule is a pure function of
//!   `(seed, city_id, attempt)` ([`Backoff::delay_ms`]), so chaos runs
//!   replay bit-for-bit at any thread count or shard order. Delays are
//!   *journaled, not slept*: in-process shards are deterministic, so
//!   waiting changes nothing — a multi-process transport would honour the
//!   recorded schedule.
//! * **Crash-safe partial results** — shard lifecycle events
//!   (`scheduled`/`started`/`retried`/`committed`/`abandoned`) are
//!   journaled through the same append-fsync discipline as
//!   [`epc_journal`]; a committed city's artifacts are hash-verified on
//!   resume and only abandoned/unfinished cities replay. Shards that
//!   exhaust the budget degrade the [`FleetOutcome`] to a partial result
//!   with per-city provenance instead of failing the run.
//!
//! The crate is engine-agnostic: the caller supplies a [`ShardRunner`]
//! that executes one deterministic attempt of one city. The `indice`
//! crate provides the EPC-pipeline runner and the cross-city dashboard.

mod backoff;
mod coordinator;
mod journal;

pub use backoff::{Backoff, RetryPolicy};
pub use coordinator::{
    run_fleet, CoordCrash, CoordError, FleetOptions, FleetOutcome, FleetResult, ShardAttempt,
    ShardReport, ShardRunner, ShardStatus,
};
pub use journal::{FleetEvent, FleetJournal, FLEET_MANIFEST_FILE};
