//! Deterministic seedable retry backoff, keyed on `(city_id, attempt)`.
//!
//! Same discipline as the geocoder's `RetryGeocoder` backoff: exponential
//! growth capped at a ceiling, with deterministic jitter drawn by hashing
//! the key — never from OS entropy or the clock. Two coordinators with the
//! same seed produce the same schedule for the same city, regardless of
//! thread count or the order cities are (re)tried in.

/// Retry budget and backoff schedule for shard supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per shard (1 = no retry). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff schedule between failed attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            backoff: Backoff::default(),
        }
    }
}

/// Deterministic backoff schedule: `delay(attempt) ≈ base · factor^(attempt-1)`
/// capped at `max_ms`, jittered into `[half, full]` by hashing
/// `(seed, city_id, attempt)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    /// Base delay in milliseconds. The default is 0: schedules are
    /// computed and journaled but never slept, which keeps chaos tests
    /// instant while still pinning the schedule bytes.
    pub base_ms: u64,
    /// Exponential growth factor per attempt.
    pub factor: u64,
    /// Ceiling on any single delay.
    pub max_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base_ms: 0,
            factor: 2,
            max_ms: 10_000,
            seed: 0x5eed,
        }
    }
}

impl Backoff {
    /// The delay before retrying `city_id` after its `attempt`-th failed
    /// attempt (1-based). A pure function of `(seed, city_id, attempt)`.
    pub fn delay_ms(&self, city_id: &str, attempt: u32) -> u64 {
        if self.base_ms == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let full = self
            .base_ms
            .saturating_mul(self.factor.saturating_pow(exp))
            .min(self.max_ms);
        let half = full / 2;
        let h = splitmix64(self.seed ^ fnv1a(city_id) ^ splitmix64(attempt as u64));
        half + h % (full - half + 1)
    }

    /// The full schedule for `city_id` under a budget of `max_attempts`:
    /// one delay per failed attempt that still has a retry left.
    pub fn schedule(&self, city_id: &str, max_attempts: u32) -> Vec<u64> {
        (1..max_attempts)
            .map(|attempt| self.delay_ms(city_id, attempt))
            .collect()
    }
}

/// FNV-1a over a city id.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 avalanche mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_base_zero_never_sleeps() {
        let b = Backoff::default();
        assert_eq!(b.delay_ms("torino", 1), 0);
        assert_eq!(b.schedule("torino", 4), vec![0, 0, 0]);
    }

    #[test]
    fn schedule_is_deterministic_per_city_and_attempt() {
        let b = Backoff {
            base_ms: 100,
            ..Backoff::default()
        };
        assert_eq!(b.delay_ms("milano", 2), b.delay_ms("milano", 2));
        assert_ne!(
            b.schedule("milano", 5),
            b.schedule("genova", 5),
            "different cities draw different jitter"
        );
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let b = Backoff {
            base_ms: 100,
            factor: 2,
            max_ms: 500,
            seed: 1,
        };
        for attempt in 1..10 {
            let d = b.delay_ms("x", attempt);
            let full = (100u64 * 2u64.pow(attempt.saturating_sub(1).min(20))).min(500);
            assert!(d >= full / 2 && d <= full, "attempt {attempt}: {d}");
        }
        assert!(b.delay_ms("x", 9) <= 500);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let b = Backoff {
            base_ms: u64::MAX / 2,
            factor: u64::MAX,
            max_ms: u64::MAX,
            seed: 0,
        };
        let _ = b.delay_ms("x", u32::MAX);
    }
}
