//! The append-only fleet journal (`fleet.manifest.jsonl`).
//!
//! One JSON line per shard lifecycle event, in the same append-fsync
//! discipline as the per-run `run.manifest.jsonl`: the `committed` line is
//! a city's commit point, written only after its checkpoints are durably
//! on disk. Loading tolerates a torn tail (a final half-written line is
//! discarded), and events carry no timestamps or host state, so the
//! journal of a resumed fleet is byte-identical to the journal of an
//! uninterrupted one once canonicalized.
//!
//! Per-city event grammar:
//!
//! ```text
//! scheduled → started(1) → [retried(a) → started(a+1)]* → committed | abandoned
//! ```

use epc_journal::{write_atomic, ArtifactRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File name of the fleet journal inside a fleet run directory.
pub const FLEET_MANIFEST_FILE: &str = "fleet.manifest.jsonl";

/// One shard lifecycle event. The `kind` field is one of `scheduled`,
/// `started`, `retried`, `committed`, `abandoned`; fields not meaningful
/// for a kind are left at their empty defaults so every line serializes
/// with the same shape (stable bytes for the chaos gate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// City id this event belongs to.
    pub city: String,
    /// Event kind (see module docs for the grammar).
    pub kind: String,
    /// Attempt number the event refers to (1-based; 0 for `scheduled`).
    pub attempt: u32,
    /// Fleet config fingerprint — a mismatch on resume invalidates the
    /// city's journal group (it describes a different computation).
    pub fingerprint: String,
    /// Journaled (not slept) backoff delay for `retried` events.
    pub backoff_ms: u64,
    /// Whether the committed shard itself degraded (per-stage reasons).
    pub degraded: bool,
    /// Degradation or failure reasons (`retried`/`committed`/`abandoned`).
    pub reasons: Vec<String>,
    /// Small provenance map for `committed` events (records kept, chosen
    /// k, outcome string, …) — merged into the fleet report on resume.
    pub summary: BTreeMap<String, String>,
    /// Checkpoint files (paths relative to the fleet directory) that a
    /// resume must hash-verify before trusting the commit.
    pub checkpoints: Vec<ArtifactRecord>,
}

impl FleetEvent {
    fn blank(city: &str, kind: &str, attempt: u32, fingerprint: &str) -> Self {
        FleetEvent {
            city: city.to_owned(),
            kind: kind.to_owned(),
            attempt,
            fingerprint: fingerprint.to_owned(),
            backoff_ms: 0,
            degraded: false,
            reasons: Vec::new(),
            summary: BTreeMap::new(),
            checkpoints: Vec::new(),
        }
    }

    /// The city has been admitted to the fleet plan.
    pub fn scheduled(city: &str, fingerprint: &str) -> Self {
        Self::blank(city, "scheduled", 0, fingerprint)
    }

    /// Attempt `attempt` of the city's shard is about to run.
    pub fn started(city: &str, fingerprint: &str, attempt: u32) -> Self {
        Self::blank(city, "started", attempt, fingerprint)
    }

    /// Attempt `attempt` failed and a retry is scheduled after
    /// `backoff_ms` (journaled, not slept).
    pub fn retried(
        city: &str,
        fingerprint: &str,
        attempt: u32,
        backoff_ms: u64,
        reason: &str,
    ) -> Self {
        let mut e = Self::blank(city, "retried", attempt, fingerprint);
        e.backoff_ms = backoff_ms;
        e.reasons = vec![reason.to_owned()];
        e
    }

    /// The city's shard committed on attempt `attempt`. The commit line —
    /// checkpoints must already be durable.
    pub fn committed(
        city: &str,
        fingerprint: &str,
        attempt: u32,
        degraded: bool,
        reasons: Vec<String>,
        summary: BTreeMap<String, String>,
        checkpoints: Vec<ArtifactRecord>,
    ) -> Self {
        let mut e = Self::blank(city, "committed", attempt, fingerprint);
        e.degraded = degraded;
        e.reasons = reasons;
        e.summary = summary;
        e.checkpoints = checkpoints;
        e
    }

    /// The city exhausted its retry budget; `attempt` is the last attempt.
    pub fn abandoned(city: &str, fingerprint: &str, attempt: u32, reason: &str) -> Self {
        let mut e = Self::blank(city, "abandoned", attempt, fingerprint);
        e.reasons = vec![reason.to_owned()];
        e
    }

    /// Whether this event terminates its city's group (`committed` or
    /// `abandoned`).
    pub fn is_terminal(&self) -> bool {
        self.kind == "committed" || self.kind == "abandoned"
    }
}

/// Handle to a fleet directory's journal file.
#[derive(Debug, Clone)]
pub struct FleetJournal {
    dir: PathBuf,
}

impl FleetJournal {
    /// The fleet journal of `fleet_dir` (the file may not exist yet).
    pub fn at(fleet_dir: &Path) -> Self {
        FleetJournal {
            dir: fleet_dir.to_path_buf(),
        }
    }

    /// Full path of the fleet manifest file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(FLEET_MANIFEST_FILE)
    }

    fn named(&self, what: &str, e: io::Error) -> io::Error {
        io::Error::new(e.kind(), format!("{what} {}: {e}", self.path().display()))
    }

    /// Loads all parsable events. A missing file is an empty journal; the
    /// first unparsable line truncates the result (torn tail).
    pub fn load(&self) -> io::Result<Vec<FleetEvent>> {
        let text = match std::fs::read_to_string(self.path()) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(self.named("reading fleet journal", e)),
        };
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<FleetEvent>(line) {
                Ok(event) => events.push(event),
                Err(_) => break,
            }
        }
        Ok(events)
    }

    /// Appends one event (one JSON line) and fsyncs.
    pub fn append(&self, event: &FleetEvent) -> io::Result<()> {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let append = || -> io::Result<()> {
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path())?;
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
            drop(f);
            sync_dir(&self.dir)
        };
        append().map_err(|e| self.named("appending to fleet journal", e))
    }

    /// Atomically replaces the journal with exactly `events` — used on
    /// resume to drop invalid groups and at fleet completion to
    /// canonicalize event order (grouped per city in plan order), so a
    /// resumed journal's bytes match an uninterrupted run's.
    pub fn rewrite(&self, events: &[FleetEvent]) -> io::Result<()> {
        let mut text = String::new();
        for event in events {
            let line = serde_json::to_string(event)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            text.push_str(&line);
            text.push('\n');
        }
        write_atomic(&self.dir, FLEET_MANIFEST_FILE, text.as_bytes())
            .map(|_| ())
            .map_err(|e| self.named("rewriting fleet journal", e))
    }
}

/// Fsyncs a directory so a completed rename survives power loss
/// (epc-journal's helper is crate-private; same no-op fallback).
fn sync_dir(dir: &Path) -> io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "epc-coord-journal-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir();
        let j = FleetJournal::at(&dir);
        assert!(j.load().unwrap().is_empty());
        j.append(&FleetEvent::scheduled("00-torino", "fp")).unwrap();
        j.append(&FleetEvent::started("00-torino", "fp", 1))
            .unwrap();
        let got = j.load().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], FleetEvent::scheduled("00-torino", "fp"));
        assert!(got[1].kind == "started" && got[1].attempt == 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = temp_dir();
        let j = FleetJournal::at(&dir);
        j.append(&FleetEvent::scheduled("a", "fp")).unwrap();
        j.append(&FleetEvent::started("a", "fp", 1)).unwrap();
        let text = fs::read_to_string(j.path()).unwrap();
        fs::write(j.path(), &text[..text.len() - 20]).unwrap();
        let got = j.load().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kind, "scheduled");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents() {
        let dir = temp_dir();
        let j = FleetJournal::at(&dir);
        j.append(&FleetEvent::scheduled("a", "fp")).unwrap();
        j.append(&FleetEvent::scheduled("b", "fp")).unwrap();
        let all = j.load().unwrap();
        j.rewrite(&all[..1]).unwrap();
        assert_eq!(j.load().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_bytes_are_deterministic() {
        let dirs = [temp_dir(), temp_dir()];
        for dir in &dirs {
            let j = FleetJournal::at(dir);
            j.append(&FleetEvent::scheduled("a", "fp")).unwrap();
            j.append(&FleetEvent::retried("a", "fp", 1, 120, "stage panicked"))
                .unwrap();
        }
        let a = fs::read(FleetJournal::at(&dirs[0]).path()).unwrap();
        let b = fs::read(FleetJournal::at(&dirs[1]).path()).unwrap();
        assert_eq!(a, b);
        for dir in &dirs {
            fs::remove_dir_all(dir).unwrap();
        }
    }

    #[test]
    fn load_error_names_journal_path() {
        let dir = temp_dir();
        // Make the journal path unreadable by making it a directory.
        fs::create_dir_all(dir.join(FLEET_MANIFEST_FILE)).unwrap();
        let err = FleetJournal::at(&dir).load().unwrap_err();
        assert!(
            err.to_string().contains(FLEET_MANIFEST_FILE),
            "error should name the journal file: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
