//! Comment- and string-aware token scanner for Rust sources.
//!
//! This is deliberately *not* a full lexer. The rules in [`crate::rules`]
//! only need four things a `grep` cannot give them reliably:
//!
//! 1. identifiers and punctuation with **no false matches inside string
//!    literals or comments** (`"thread_rng"` in a diagnostic message is
//!    not a violation; `// Instant::now` in prose is not a violation),
//! 2. accurate 1-based line numbers for diagnostics,
//! 3. the text of comments, so `lint:allow(...)` directives can be read,
//! 4. which tokens sit inside a `#[cfg(test)] mod` block (test code is
//!    exempt from every rule, mirroring clippy's `allow-unwrap-in-tests`).
//!
//! The scanner therefore understands line/block comments (nested), plain
//! and raw string literals (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`), char
//! literals vs. lifetimes, and numeric literals — just enough to never
//! mis-tokenize real Rust from this workspace.

/// The coarse token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `HashMap`, `mod`, …).
    Ident,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct,
    /// String / char / numeric literal (content never inspected by rules).
    Literal,
    /// `// …` comment, text preserved for `lint:allow` parsing.
    LineComment,
    /// `/* … */` comment (possibly nested), text preserved.
    BlockComment,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// `true` for tokens the rule engine matches on (non-comments).
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// Scans `src` into tokens. Never fails: unrecognized bytes become
/// single-character punctuation, which at worst makes a rule miss — the
/// auditor must not crash on any input file.
pub fn scan(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Plain (or byte, via the stray `b` ident) string literal.
        if c == '"' {
            let start_line = line;
            i = consume_string(&chars, i, &mut line);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: "\"…\"".into(),
                line: start_line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            if is_char_literal(&chars, i) {
                i = consume_char_literal(&chars, i);
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "'…'".into(),
                    line,
                });
            } else {
                // Lifetime / loop label: skip the quote; the name scans as
                // an identifier on the next iteration.
                i += 1;
            }
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            i = consume_number(&chars, i);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier — with raw-string lookahead for `r"…"` / `br#"…"#`.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            if (ident == "r" || ident == "br") && i < n && (chars[i] == '"' || chars[i] == '#') {
                // Capture the line *before* consuming: a multi-line raw
                // string must report its opening line, like plain strings.
                let start_line = line;
                if let Some(end) = raw_string_end(&chars, i, &mut line) {
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "r\"…\"".into(),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            continue;
        }
        // Anything else: single-character punctuation.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Consumes a `"…"` literal starting at the opening quote; returns the
/// index past the closing quote and advances `line` over embedded newlines.
fn consume_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut i = open + 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// `'` at `i` starts a char literal (vs. a lifetime) when the quoted
/// content is an escape, or a single char closed by another `'`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => chars.get(i + 2) == Some(&'\''),
        Some(_) => true, // punctuation chars like '(' are always literals
        None => false,
    }
}

/// Consumes a char literal starting at the opening quote.
fn consume_char_literal(chars: &[char], open: usize) -> usize {
    let n = chars.len();
    let mut i = open + 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Consumes a numeric literal (`0x1f`, `1_000`, `1.5e-3`, `2.0f64`) but
/// stops before `.method` so `0.unwrap()`-style token streams still
/// surface the method identifier.
fn consume_number(chars: &[char], start: usize) -> usize {
    let n = chars.len();
    let mut i = start;
    while i < n {
        let c = chars[i];
        let continues_number = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == '+' || c == '-')
                && i > start
                && matches!(chars[i - 1], 'e' | 'E')
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()));
        if continues_number {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// From `i` at `"` or `#` after an `r`/`br` prefix: if a raw string starts
/// here, consume it (advancing `line`) and return the end index.
fn raw_string_end(chars: &[char], i: usize, line: &mut u32) -> Option<usize> {
    let n = chars.len();
    let mut hashes = 0usize;
    let mut j = i;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None; // raw identifier (`r#try`) or stray `#`
    }
    j += 1;
    while j < n {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let tail = &chars[j + 1..];
            if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == '#') {
                return Some(j + 1 + hashes);
            }
        }
        j += 1;
    }
    Some(n)
}

/// Marks every token inside a `#[cfg(test)] mod … { … }` block.
///
/// Test code is exempt from all rules: determinism and panic-surface
/// invariants protect *shipped* results, and tests legitimately use
/// `unwrap`, `HashMap` hashability checks, etc. The recognized shape is
/// the workspace idiom — `#[cfg(test)]`, optional further attributes,
/// optional `pub`, then `mod name { … }`.
pub fn test_block_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&k| toks[k].is_code()).collect();
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };

    let mut ci = 0usize;
    while ci + 6 < code.len() {
        let is_cfg_test = t(ci).is_punct('#')
            && t(ci + 1).is_punct('[')
            && t(ci + 2).is_ident("cfg")
            && t(ci + 3).is_punct('(')
            && t(ci + 4).is_ident("test")
            && t(ci + 5).is_punct(')')
            && t(ci + 6).is_punct(']');
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        let attr_start = code[ci];
        let mut cj = ci + 7;
        // Skip any further attributes between the cfg and the item.
        while cj + 1 < code.len() && t(cj).is_punct('#') && t(cj + 1).is_punct('[') {
            let mut depth = 0usize;
            cj += 1;
            while cj < code.len() {
                if t(cj).is_punct('[') {
                    depth += 1;
                } else if t(cj).is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        cj += 1;
                        break;
                    }
                }
                cj += 1;
            }
        }
        if cj < code.len() && t(cj).is_ident("pub") {
            cj += 1;
            if cj < code.len() && t(cj).is_punct('(') {
                // `pub(crate)` and friends.
                while cj < code.len() && !t(cj).is_punct(')') {
                    cj += 1;
                }
                cj += 1;
            }
        }
        if !(cj + 2 < code.len() && t(cj).is_ident("mod") && t(cj + 2).is_punct('{')) {
            ci += 1; // cfg(test) on something other than an inline mod
            continue;
        }
        // Mask from the `#` through the matching close brace.
        let mut depth = 0usize;
        let mut ck = cj + 2;
        while ck < code.len() {
            if t(ck).is_punct('{') {
                depth += 1;
            } else if t(ck).is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ck += 1;
        }
        let end = if ck < code.len() {
            code[ck]
        } else {
            toks.len() - 1
        };
        for slot in mask.iter_mut().take(end + 1).skip(attr_start) {
            *slot = true;
        }
        ci = ck.min(code.len());
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // thread_rng in prose
            /* Instant::now in a block */
            let s = "thread_rng";
            let r = r#"SystemTime::now"#;
            let real = thread_rng();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| *s == "thread_rng").count(),
            1,
            "only the code mention survives: {ids:?}"
        );
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"x\ny\nz\";\nlet b = 1;\n";
        let toks = scan(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn nested_raw_strings_mask_content_and_keep_lines() {
        // `r##"…"##` may contain `"#` without terminating; everything
        // inside is literal, and tokens after it land on the right line.
        let src = "let a = r##\"\nthread_rng() \"# not the end\n\"##;\nlet after = thread_rng();\n";
        let toks = scan(src);
        let raw: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text == "r\"…\"")
            .collect();
        assert_eq!(raw.len(), 1, "{toks:?}");
        assert_eq!(raw[0].line, 1, "raw string reports its opening line");
        let rng: Vec<u32> = toks
            .iter()
            .filter(|t| t.is_ident("thread_rng"))
            .map(|t| t.line)
            .collect();
        assert_eq!(rng, vec![4], "only the code mention, on the right line");
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let toks = scan("let r#type = 1; let x = r#\"lit\"#;");
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Literal && t.text == "r\"…\"")
                .count(),
            1
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = scan(src);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Literal && t.text == "'…'")
                .count(),
            1
        );
        assert!(toks.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = scan(r"let c = '\''; let d = '\n'; let done = 1;");
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = scan("/* outer /* inner */ still comment */ real");
        assert_eq!(toks.iter().filter(|t| t.is_code()).count(), 1);
        assert!(toks[1].is_ident("real"));
    }

    #[test]
    fn tuple_field_then_method_is_tokenized() {
        let toks = scan("x.0.unwrap()");
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { v.unwrap(); }\n}\nfn tail() { x.unwrap(); }\n";
        let toks = scan(src);
        let mask = test_block_mask(&toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_with_extra_attr_and_pub() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\npub mod tests { fn t() { p.unwrap(); } }\nfn f() {}";
        let toks = scan(src);
        let mask = test_block_mask(&toks);
        let uw = toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(mask[uw]);
        let f = toks.iter().position(|t| t.is_ident("f")).unwrap();
        assert!(!mask[f]);
    }
}
