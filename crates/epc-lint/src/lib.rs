//! `epc-lint` — the in-repo determinism & panic-surface auditor.
//!
//! The INDICE reproduction guarantee rests on invariants no generic
//! linter knows about: bitwise-identical pipeline artifacts at any thread
//! count, seed-reproducible fault injection, and a panic-free
//! quarantine-protected ingest path. This crate walks the workspace
//! sources with a comment/string-aware scanner and enforces the six
//! repo-specific rules described in [`rules`], scoped by the checked-in
//! `lint.toml` ([`config`]), with a counted, reasoned escape hatch
//! ([`allowlist`]). `cargo run -p epc-lint` is a CI stage; a non-zero
//! exit means the gate failed.

pub mod allowlist;
pub mod config;
pub mod diagnostics;
pub mod rules;
pub mod scanner;

use config::Config;
use diagnostics::{AllowRecord, Diagnostic, Report};
use std::path::Path;

/// Audits every file under `root` selected by `cfg.include`, returning
/// the sorted report. `root` is the repository root; all paths in the
/// report are repo-relative with `/` separators.
pub fn lint_root(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut files = Vec::new();
    walk(root, Path::new(""), &cfg.include, &mut files)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        lint_source(rel, &src, cfg, &mut report);
    }
    report.sort();
    Ok(report)
}

/// Audits one already-loaded source file into `report` (exposed for the
/// fixture tests).
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config, report: &mut Report) {
    let toks = scanner::scan(src);
    let mask = scanner::test_block_mask(&toks);
    let (mut directives, malformed) = allowlist::collect(&toks);

    // Malformed directives are violations regardless of rule scoping —
    // a broken escape hatch must never silently grant an exemption.
    let mut hits = malformed;
    for rule_id in rules::RULE_IDS {
        let Some(scope) = cfg.rule(rule_id) else {
            continue;
        };
        if scope.applies_to(rel_path) {
            hits.extend(rules::check(rule_id, &toks, &mask));
        }
    }

    let (kept, suppressed) = allowlist::apply(&mut directives, hits);
    report.suppressed += suppressed;
    for v in kept {
        report.diagnostics.push(Diagnostic {
            path: rel_path.to_string(),
            line: v.line,
            rule: v.rule,
            message: v.message,
        });
    }
    for d in directives {
        report.allows.push(AllowRecord {
            path: rel_path.to_string(),
            line: d.line,
            rules: d.rules,
            reason: d.reason,
            used: d.used,
        });
    }
}

/// Recursive walk collecting `/`-separated relative paths matching any
/// include glob. Entries are read in sorted order for determinism;
/// build/VCS directories are pruned.
fn walk(
    root: &Path,
    rel: &Path,
    include: &[String],
    out: &mut Vec<String>,
) -> Result<(), std::io::Error> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel_child = rel.join(name);
        let rel_str = rel_child
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if path.is_dir() {
            if matches!(name, ".git" | "target" | "node_modules") {
                continue;
            }
            walk(root, &rel_child, include, out)?;
        } else if include.iter().any(|g| config::glob_match(g, &rel_str)) {
            out.push(rel_str);
        }
    }
    Ok(())
}
