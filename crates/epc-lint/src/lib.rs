//! `epc-lint` — the in-repo determinism & panic-surface auditor.
//!
//! The INDICE reproduction guarantee rests on invariants no generic
//! linter knows about: bitwise-identical pipeline artifacts at any thread
//! count, seed-reproducible fault injection, and a panic-free
//! quarantine-protected ingest path. This crate walks the workspace
//! sources with a comment/string-aware scanner and enforces the nine
//! repo-specific rules described in [`rules`] in two phases — per-line
//! matchers (D1–D6), then workspace-wide call-graph taint analysis
//! (D7–D9, [`graph`]) — scoped by the checked-in `lint.toml`
//! ([`config`]), with a counted, reasoned escape hatch ([`allowlist`]).
//! `cargo run -p epc-lint` is a CI stage; a non-zero exit means the gate
//! failed.

pub mod allowlist;
pub mod config;
pub mod diagnostics;
pub mod graph;
pub mod rules;
pub mod scanner;

use config::Config;
use diagnostics::{AllowRecord, Diagnostic, Report};
use std::path::Path;

/// Audits every file under `root` selected by `cfg.include`, returning
/// the sorted report. `root` is the repository root; all paths in the
/// report are repo-relative with `/` separators.
pub fn lint_root(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut paths = Vec::new();
    walk(root, Path::new(""), &cfg.include, &mut paths)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        files.push((rel, src));
    }
    Ok(lint_files(&files, cfg))
}

/// Audits an already-loaded file set (`(repo-relative path, source)`
/// pairs) in both phases. This is the whole pipeline behind [`lint_root`]
/// and the fixture tests: the line rules see each file alone, the graph
/// rules see the set as one workspace, and `lint:allow` directives apply
/// uniformly because every diagnostic — including a transitive one — is
/// anchored to a concrete line in a concrete file.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // Scan once; both phases and the allowlist share the token streams.
    let scanned: Vec<(Vec<scanner::Tok>, Vec<bool>)> = files
        .iter()
        .map(|(_, src)| {
            let toks = scanner::scan(src);
            let mask = scanner::test_block_mask(&toks);
            (toks, mask)
        })
        .collect();

    // Phase 1: per-line rules, one file at a time.
    let mut hits_per_file: Vec<Vec<rules::Violation>> = Vec::with_capacity(files.len());
    for ((rel, _), (toks, mask)) in files.iter().zip(&scanned) {
        // Malformed directives are violations regardless of rule scoping —
        // a broken escape hatch must never silently grant an exemption.
        let (_, malformed) = allowlist::collect(toks);
        let mut hits = malformed;
        for rule_id in rules::LINE_RULE_IDS {
            let Some(scope) = cfg.rule(rule_id) else {
                continue;
            };
            if scope.applies_to(rel) {
                hits.extend(rules::check(rule_id, toks, mask));
            }
        }
        hits_per_file.push(hits);
    }

    // Phase 2: the call-graph taint rules, over the whole set at once.
    let inputs: Vec<graph::FileTokens> = files
        .iter()
        .zip(&scanned)
        .map(|((rel, _), (toks, mask))| graph::FileTokens {
            path: rel,
            toks,
            test_mask: mask,
        })
        .collect();
    let outcome = graph::analyze(&inputs, cfg);
    report.functions = outcome.functions;
    report.call_edges = outcome.call_edges;
    for (hits, extra) in hits_per_file.iter_mut().zip(outcome.per_file) {
        hits.extend(extra);
    }

    // Allowlist application is per-file: a directive suppresses any
    // diagnostic anchored on its window, whichever phase produced it.
    for (((rel, _), (toks, _)), hits) in files.iter().zip(&scanned).zip(hits_per_file) {
        let (mut directives, _) = allowlist::collect(toks);
        let (kept, suppressed) = allowlist::apply(&mut directives, hits);
        report.suppressed += suppressed;
        for v in kept {
            report.diagnostics.push(Diagnostic {
                path: rel.clone(),
                line: v.line,
                rule: v.rule,
                message: v.message,
            });
        }
        for d in directives {
            report.allows.push(AllowRecord {
                path: rel.clone(),
                line: d.line,
                rules: d.rules,
                reason: d.reason,
                used: d.used,
            });
        }
    }
    report.sort();
    report
}

/// Recursive walk collecting `/`-separated relative paths matching any
/// include glob. Entries are read in sorted order for determinism;
/// build/VCS directories are pruned.
fn walk(
    root: &Path,
    rel: &Path,
    include: &[String],
    out: &mut Vec<String>,
) -> Result<(), std::io::Error> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel_child = rel.join(name);
        let rel_str = rel_child
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if path.is_dir() {
            if matches!(name, ".git" | "target" | "node_modules") {
                continue;
            }
            walk(root, &rel_child, include, out)?;
        } else if include.iter().any(|g| config::glob_match(g, &rel_str)) {
            out.push(rel_str);
        }
    }
    Ok(())
}
