//! The scoped escape hatch: `// lint:allow(<rules>): <reason>`.
//!
//! A directive suppresses matching diagnostics on its own line (trailing
//! comment) or on the line directly below (comment above the offending
//! statement). The reason is mandatory — an allow without one is itself a
//! violation — and every honoured directive is counted and printed in the
//! run summary so exemptions stay visible instead of rotting silently.
//!
//! Only comments that *start* with `lint:allow` (after the comment
//! markers) are directives; prose that merely mentions the syntax — like
//! this paragraph — is ignored.

use crate::rules::{Violation, RULE_IDS};
use crate::scanner::{Tok, TokKind};

/// One well-formed `lint:allow` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Uppercased rule ids the directive covers.
    pub rules: Vec<String>,
    pub reason: String,
    /// Line of the comment containing the directive.
    pub line: u32,
    /// How many diagnostics this directive suppressed in the current run.
    pub used: usize,
}

/// Extracts directives from a file's comment tokens. Malformed directives
/// (missing rule list, unknown rule id, missing or empty reason) come back
/// as violations under the pseudo-rule `allow`.
pub fn collect(toks: &[Tok]) -> (Vec<AllowDirective>, Vec<Violation>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for tok in toks {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // A block comment may span lines; a directive can sit on any of
        // them (the multi-line justification idiom puts prose first). Each
        // line is examined on its own so the directive anchors to the line
        // it is written on, not the comment's opening line.
        for (offset, raw_line) in tok.text.lines().enumerate() {
            let body = raw_line
                .trim_start()
                .trim_start_matches(['/', '*', '!'])
                .trim_start();
            if !body.starts_with("lint:allow") {
                continue;
            }
            let line = tok.line + offset as u32;
            match parse_directive(body) {
                Ok((rules, reason)) => directives.push(AllowDirective {
                    rules,
                    reason,
                    line,
                    used: 0,
                }),
                Err(msg) => malformed.push(Violation {
                    rule: "allow".into(),
                    line,
                    message: msg,
                }),
            }
        }
    }
    (directives, malformed)
}

/// Parses `lint:allow(D3, D4): reason…`, validating rule ids and reason.
fn parse_directive(text: &str) -> Result<(Vec<String>, String), String> {
    let rest = text.strip_prefix("lint:allow").unwrap_or(text).trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("malformed lint:allow — expected `lint:allow(<rules>): <reason>`".into());
    };
    let Some(close) = body.find(')') else {
        return Err("malformed lint:allow — missing `)` after rule list".into());
    };
    let mut rules = Vec::new();
    for part in body[..close].split(',') {
        let id = part.trim().to_ascii_uppercase();
        if id.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&id.as_str()) {
            return Err(format!(
                "lint:allow names unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        rules.push(id);
    }
    if rules.is_empty() {
        return Err("lint:allow with an empty rule list".into());
    }
    let tail = body[close + 1..].trim_start();
    let reason = tail
        .strip_prefix(':')
        .map(str::trim)
        .unwrap_or("")
        .trim_end_matches("*/")
        .trim();
    if reason.is_empty() {
        return Err(
            "lint:allow without a reason — write `lint:allow(<rules>): <why this is safe>`".into(),
        );
    }
    Ok((rules, reason.to_string()))
}

/// Splits `hits` into (kept, suppressed-count), marking use counts on the
/// directives that fired.
pub fn apply(directives: &mut [AllowDirective], hits: Vec<Violation>) -> (Vec<Violation>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for hit in hits {
        let directive = directives.iter_mut().find(|d| {
            d.rules.iter().any(|r| r == &hit.rule) && (hit.line == d.line || hit.line == d.line + 1)
        });
        match directive {
            Some(d) => {
                d.used += 1;
                suppressed += 1;
            }
            None => kept.push(hit),
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn parses_trailing_and_leading_forms() {
        let src = "let x = 1; // lint:allow(D3): counts are sorted before display\n\
                   /* lint:allow(d4, D5): demo code */\n";
        let (dirs, bad) = collect(&scan(src));
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].rules, vec!["D3"]);
        assert_eq!(dirs[0].reason, "counts are sorted before display");
        assert_eq!(dirs[1].rules, vec!["D4", "D5"]);
        assert_eq!(dirs[1].reason, "demo code");
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let src = "// justify the exemption with lint:allow(D3): like so\n\
                   //! docs may describe `lint:allow(<rules>): <reason>` syntax\n";
        let (dirs, bad) = collect(&scan(src));
        assert!(dirs.is_empty(), "{dirs:?}");
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn missing_reason_is_a_violation() {
        let (dirs, bad) = collect(&scan("// lint:allow(D3)\n"));
        assert!(dirs.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "allow");
        assert!(bad[0].message.contains("without a reason"));
    }

    #[test]
    fn unknown_rule_is_a_violation() {
        let (_, bad) = collect(&scan("// lint:allow(D12): nope\n"));
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn directive_inside_multiline_block_comment_anchors_to_its_line() {
        let src = "/* The indexing below is justified at length:\n\
                   \x20  lint:allow(D4): bounds were checked two lines up */\n\
                   let v = data[i];\n";
        let (dirs, bad) = collect(&scan(src));
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].line, 2, "anchors to the directive's own line");
        assert_eq!(dirs[0].rules, vec!["D4"]);
        assert_eq!(dirs[0].reason, "bounds were checked two lines up");
    }

    #[test]
    fn malformed_directive_deep_in_block_comment_is_reported_there() {
        let src = "/* prose first\n\
                   \x20  lint:allow(D4)\n\
                   \x20  more prose */\n";
        let (dirs, bad) = collect(&scan(src));
        assert!(dirs.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].line, 2);
        assert!(bad[0].message.contains("without a reason"));
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "// lint:allow(D3): fine here\nlet m = HashMap::new();\n";
        let (mut dirs, _) = collect(&scan(src));
        let hits = vec![
            Violation {
                rule: "D3".into(),
                line: 2,
                message: "m".into(),
            },
            Violation {
                rule: "D3".into(),
                line: 5,
                message: "far away".into(),
            },
            Violation {
                rule: "D4".into(),
                line: 2,
                message: "other rule".into(),
            },
        ];
        let (kept, suppressed) = apply(&mut dirs, hits);
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 2);
        assert_eq!(dirs[0].used, 1);
    }
}
