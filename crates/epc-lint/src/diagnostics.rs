//! Diagnostic records and the run report.

use std::fmt;

/// One reportable finding, in `path:line: [rule] message` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative, `/`-separated path.
    pub path: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A `lint:allow` directive as it appears in the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    pub path: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    /// Diagnostics this directive suppressed in the run.
    pub used: usize,
}

/// The outcome of one audit run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Function items in the phase-2 call graph.
    pub functions: usize,
    /// Resolved call edges in the phase-2 call graph.
    pub call_edges: usize,
    /// Violations that survived the allowlist, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every well-formed `lint:allow` in the scanned tree.
    pub allows: Vec<AllowRecord>,
    /// Total diagnostics suppressed by directives.
    pub suppressed: usize,
}

impl Report {
    /// Canonical ordering so output is diffable run-to-run.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        self.allows
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    }

    /// The one-line summary printed after diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "epc-lint: {} file(s) scanned, {} fn(s), {} call edge(s); {} violation(s); \
             {} lint:allow directive(s) ({} diagnostic(s) suppressed)",
            self.files_scanned,
            self.functions,
            self.call_edges,
            self.diagnostics.len(),
            self.allows.len(),
            self.suppressed
        )
    }

    /// `true` when the gate passes.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The machine-readable report (`--format json`). Pretty-printed with
    /// one scalar per line so CI can filter volatile counters
    /// (`files_scanned`, `functions`, `call_edges`) before diffing
    /// against a checked-in expectation; array entries are one line each.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"epc-lint-report/1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"functions\": {},\n", self.functions));
        out.push_str(&format!("  \"call_edges\": {},\n", self.call_edges));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&d.path),
                d.line,
                json_str(&d.rule),
                json_str(&d.message)
            ));
        }
        out.push_str(if self.diagnostics.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let rules: Vec<String> = a.rules.iter().map(|r| json_str(r)).collect();
            out.push_str(&format!(
                "    {{\"path\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \"used\": {}}}",
                json_str(&a.path),
                a.line,
                rules.join(", "),
                json_str(&a.reason),
                a.used
            ));
        }
        out.push_str(if self.allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ci_grep_format() {
        let d = Diagnostic {
            path: "crates/indice/src/preprocess.rs".into(),
            line: 153,
            rule: "D4".into(),
            message: "…".into(),
        };
        assert_eq!(d.to_string(), "crates/indice/src/preprocess.rs:153: [D4] …");
    }

    #[test]
    fn sort_orders_by_path_then_line_then_rule() {
        let mk = |p: &str, l: u32, r: &str| Diagnostic {
            path: p.into(),
            line: l,
            rule: r.into(),
            message: String::new(),
        };
        let mut report = Report {
            diagnostics: vec![
                mk("b.rs", 1, "D1"),
                mk("a.rs", 9, "D5"),
                mk("a.rs", 2, "D2"),
            ],
            ..Report::default()
        };
        report.sort();
        let order: Vec<(String, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }

    #[test]
    fn json_report_is_escaped_and_line_filterable() {
        let report = Report {
            files_scanned: 2,
            functions: 7,
            call_edges: 11,
            suppressed: 1,
            diagnostics: vec![Diagnostic {
                path: "a.rs".into(),
                line: 3,
                rule: "D7".into(),
                message: "chain with \"quotes\" → arrow".into(),
            }],
            allows: vec![AllowRecord {
                path: "b.rs".into(),
                line: 9,
                rules: vec!["D4".into(), "D7".into()],
                reason: "bounds checked".into(),
                used: 1,
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"epc-lint-report/1\",\n"));
        // Volatile counters sit alone on their lines for CI filtering.
        assert!(json.contains("\n  \"files_scanned\": 2,\n"));
        assert!(json.contains("\n  \"functions\": 7,\n"));
        assert!(json.contains("\n  \"call_edges\": 11,\n"));
        assert!(json.contains(r#"\"quotes\" → arrow"#));
        assert!(json.contains(r#""rules": ["D4", "D7"]"#));
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let json = Report::default().to_json();
        assert!(json.contains("\"diagnostics\": [],"));
        assert!(json.contains("\"allows\": []\n"));
    }
}
