//! Diagnostic records and the run report.

use std::fmt;

/// One reportable finding, in `path:line: [rule] message` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative, `/`-separated path.
    pub path: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A `lint:allow` directive as it appears in the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    pub path: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    /// Diagnostics this directive suppressed in the run.
    pub used: usize,
}

/// The outcome of one audit run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Violations that survived the allowlist, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Every well-formed `lint:allow` in the scanned tree.
    pub allows: Vec<AllowRecord>,
    /// Total diagnostics suppressed by directives.
    pub suppressed: usize,
}

impl Report {
    /// Canonical ordering so output is diffable run-to-run.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        self.allows
            .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    }

    /// The one-line summary printed after diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "epc-lint: {} file(s) scanned; {} violation(s); {} lint:allow directive(s) \
             ({} diagnostic(s) suppressed)",
            self.files_scanned,
            self.diagnostics.len(),
            self.allows.len(),
            self.suppressed
        )
    }

    /// `true` when the gate passes.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ci_grep_format() {
        let d = Diagnostic {
            path: "crates/indice/src/preprocess.rs".into(),
            line: 153,
            rule: "D4".into(),
            message: "…".into(),
        };
        assert_eq!(d.to_string(), "crates/indice/src/preprocess.rs:153: [D4] …");
    }

    #[test]
    fn sort_orders_by_path_then_line_then_rule() {
        let mk = |p: &str, l: u32, r: &str| Diagnostic {
            path: p.into(),
            line: l,
            rule: r.into(),
            message: String::new(),
        };
        let mut report = Report {
            diagnostics: vec![
                mk("b.rs", 1, "D1"),
                mk("a.rs", 9, "D5"),
                mk("a.rs", 2, "D2"),
            ],
            ..Report::default()
        };
        report.sort();
        let order: Vec<(String, u32)> = report
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
