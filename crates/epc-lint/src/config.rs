//! `lint.toml` — where each rule applies.
//!
//! The checked-in config is the single source of truth for rule scoping:
//! adding a crate to the ingest surface, or exempting a module from the
//! wall-clock ban, is a reviewed one-line diff here rather than an edit
//! to the auditor. The file is a small TOML subset (tables, string keys,
//! string arrays) parsed with std only — the auditor must not depend on
//! the crates it audits, nor pull a TOML stack into the offline image.
//!
//! ```toml
//! [files]
//! include = ["crates/*/src/**/*.rs"]
//!
//! [rules.D3]
//! scope = ["crates/epc-mining/src/**"]
//! exempt = []
//! ```
//!
//! Glob language (documented behaviour, covered by tests below):
//! patterns match `/`-separated paths segment by segment; `*` and `?`
//! match within one segment; `**` matches zero or more whole segments.

use crate::rules::RULE_IDS;
use std::collections::BTreeMap;

/// Path scoping for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleScope {
    pub id: String,
    /// A file is considered only when it matches one of these globs…
    pub scope: Vec<String>,
    /// …and none of these.
    pub exempt: Vec<String>,
}

impl RuleScope {
    /// `true` when `path` (repo-relative, `/`-separated) is audited by
    /// this rule.
    pub fn applies_to(&self, path: &str) -> bool {
        self.scope.iter().any(|g| glob_match(g, path))
            && !self.exempt.iter().any(|g| glob_match(g, path))
    }
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Which files the auditor walks at all.
    pub include: Vec<String>,
    /// One scope per rule; parsing fails unless all of D1–D9 are present,
    /// so a rule cannot be disabled by silently dropping its table.
    /// For the graph rules D7–D9, `scope` names the *root* files (entry
    /// points audited for reachability) and `exempt` names *trusted*
    /// files whose functions neither originate nor transmit taint.
    pub rules: Vec<RuleScope>,
}

impl Config {
    /// The scope table for `id`.
    pub fn rule(&self, id: &str) -> Option<&RuleScope> {
        self.rules.iter().find(|r| r.id == id)
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Config, String> {
        let raw = parse_toml_subset(text)?;
        let mut include = Vec::new();
        let mut rules = Vec::new();
        for (section, entries) in &raw {
            if section == "files" {
                include = take_array(entries, section, "include")?;
                if include.is_empty() {
                    return Err("lint.toml: [files] include must not be empty".into());
                }
            } else if let Some(id) = section.strip_prefix("rules.") {
                if !RULE_IDS.contains(&id) {
                    return Err(format!(
                        "lint.toml: unknown rule [{section}] (known: {})",
                        RULE_IDS.join(", ")
                    ));
                }
                rules.push(RuleScope {
                    id: id.to_string(),
                    scope: take_array(entries, section, "scope")?,
                    exempt: entries
                        .get("exempt")
                        .map(|v| as_array(v, section, "exempt"))
                        .transpose()?
                        .unwrap_or_default(),
                });
            } else {
                return Err(format!("lint.toml: unknown section [{section}]"));
            }
        }
        if include.is_empty() {
            return Err("lint.toml: missing [files] include".into());
        }
        for id in RULE_IDS {
            if !rules.iter().any(|r| r.id == id) {
                return Err(format!("lint.toml: missing [rules.{id}] table"));
            }
        }
        Ok(Config { include, rules })
    }
}

/// A parsed TOML value — the subset only has strings and string arrays.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

fn take_array(
    entries: &BTreeMap<String, Value>,
    section: &str,
    key: &str,
) -> Result<Vec<String>, String> {
    let v = entries
        .get(key)
        .ok_or_else(|| format!("lint.toml: [{section}] is missing `{key}`"))?;
    as_array(v, section, key)
}

fn as_array(v: &Value, section: &str, key: &str) -> Result<Vec<String>, String> {
    match v {
        Value::Array(a) => Ok(a.clone()),
        Value::Str(s) => Err(format!(
            "lint.toml: [{section}] `{key}` must be an array of strings, got \"{s}\""
        )),
    }
}

/// Parses sections of `key = value` pairs. Arrays may span lines; `#`
/// starts a comment outside quotes.
fn parse_toml_subset(text: &str) -> Result<BTreeMap<String, BTreeMap<String, Value>>, String> {
    let mut out: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((ln, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let (key, mut value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("lint.toml line {}: expected `key = value`", ln + 1))?;
        if section.is_empty() {
            return Err(format!(
                "lint.toml line {}: `{key}` outside any [section]",
                ln + 1
            ));
        }
        // Multiline arrays: keep consuming until brackets balance.
        while value.starts_with('[') && !brackets_balance(&value) {
            let (_, next) = lines
                .next()
                .ok_or_else(|| format!("lint.toml line {}: unterminated array", ln + 1))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let parsed =
            parse_value(&value).map_err(|e| format!("lint.toml line {}: `{key}`: {e}", ln + 1))?;
        out.entry(section.clone()).or_default().insert(key, parsed);
    }
    Ok(out)
}

/// Removes a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balance(s: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for item in split_top_level(body) {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_string(item)?);
        }
        return Ok(Value::Array(items));
    }
    Ok(Value::Str(parse_string(s)?))
}

fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

fn parse_string(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))
}

/// Matches `path` against `pattern` per the module-doc glob language.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let psegs: Vec<&str> = pattern.split('/').collect();
    let ssegs: Vec<&str> = path.split('/').collect();
    match_segments(&psegs, &ssegs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => (0..=segs.len()).any(|k| match_segments(&pat[1..], &segs[k..])),
        Some(p) => {
            !segs.is_empty() && segment_match(p, segs[0]) && match_segments(&pat[1..], &segs[1..])
        }
    }
}

fn segment_match(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    seg_match_rec(&p, &s)
}

fn seg_match_rec(p: &[char], s: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('*') => (0..=s.len()).any(|k| seg_match_rec(&p[1..], &s[k..])),
        Some('?') => !s.is_empty() && seg_match_rec(&p[1..], &s[1..]),
        Some(&c) => !s.is_empty() && s[0] == c && seg_match_rec(&p[1..], &s[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs_resolve_as_documented() {
        // `*` stays within a segment.
        assert!(glob_match(
            "crates/*/src/lib.rs",
            "crates/epc-geo/src/lib.rs"
        ));
        assert!(!glob_match("crates/*/lib.rs", "crates/epc-geo/src/lib.rs"));
        // `**` spans zero segments…
        assert!(glob_match(
            "crates/*/src/**/*.rs",
            "crates/indice/src/lib.rs"
        ));
        // …or several.
        assert!(glob_match("crates/**", "crates/indice/src/a/b/c.rs"));
        assert!(glob_match(
            "crates/*/src/**/*.rs",
            "crates/indice/src/sub/deep/mod.rs"
        ));
        // Prefix globs do not match sibling directories.
        assert!(!glob_match(
            "crates/indice/**",
            "crates/indice-cli/src/main.rs"
        ));
        assert!(glob_match(
            "crates/epc-*/**",
            "crates/epc-runtime/src/report.rs"
        ));
        assert!(!glob_match("crates/epc-*/**", "crates/indice/src/lib.rs"));
        // `?` is exactly one character.
        assert!(glob_match(
            "crates/epc-lin?/**",
            "crates/epc-lint/src/main.rs"
        ));
        assert!(!glob_match(
            "crates/epc-lin?/**",
            "crates/epc-lin/src/main.rs"
        ));
    }

    #[test]
    fn parses_a_full_config() {
        let cfg = Config::parse(
            r#"
            # comment
            [files]
            include = ["crates/*/src/**/*.rs"]

            [rules.D1]
            scope = ["crates/**"]

            [rules.D2]
            scope = [
                "crates/epc-*/**",   # hash-gated
                "crates/indice/**",
            ]
            exempt = ["crates/epc-runtime/src/report.rs"]

            [rules.D3]
            scope = ["crates/epc-mining/src/**"]
            exempt = []

            [rules.D4]
            scope = ["crates/epc-model/src/csv.rs"]

            [rules.D5]
            scope = ["crates/*/src/**"]
            exempt = ["crates/indice-cli/**"]

            [rules.D6]
            scope = ["crates/indice/src/**", "crates/indice-cli/src/**"]

            [rules.D7]
            scope = ["crates/epc-model/src/csv.rs"]

            [rules.D8]
            scope = ["crates/epc-*/**"]
            exempt = ["crates/epc-runtime/src/report.rs"]

            [rules.D9]
            scope = ["crates/indice/src/**"]
            "#,
        )
        .unwrap();
        assert_eq!(cfg.include, vec!["crates/*/src/**/*.rs"]);
        let d2 = cfg.rule("D2").unwrap();
        assert_eq!(d2.scope.len(), 2);
        assert!(d2.applies_to("crates/epc-geo/src/geocode.rs"));
        assert!(!d2.applies_to("crates/epc-runtime/src/report.rs"));
        assert!(!d2.applies_to("crates/bench/src/lib.rs"));
        let d5 = cfg.rule("D5").unwrap();
        assert!(!d5.applies_to("crates/indice-cli/src/main.rs"));
    }

    #[test]
    fn missing_rule_table_is_an_error() {
        let err = Config::parse("[files]\ninclude = [\"a\"]\n[rules.D1]\nscope = [\"**\"]\n")
            .unwrap_err();
        assert!(err.contains("missing [rules.D2]"), "{err}");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err = Config::parse("[files]\ninclude = [\"a\"]\n[rules.D12]\nscope = [\"**\"]\n")
            .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn scalar_where_array_expected_is_an_error() {
        let err = Config::parse("[files]\ninclude = \"crates\"\n").unwrap_err();
        assert!(err.contains("must be an array"), "{err}");
    }
}
