//! The nine repo-specific rules clippy cannot express.
//!
//! | id | invariant it protects |
//! |----|----------------------|
//! | D1 | no entropy-seeded RNG construction — every random stream must be seed-reproducible |
//! | D2 | no wall-clock reads in crates whose artifacts are hashed by the chaos gate |
//! | D3 | no `HashMap`/`HashSet` in result-producing modules — hash-order must never reach output |
//! | D4 | no `unwrap`/`expect`/`panic!`-family/slice-indexing in quarantine-protected ingest code |
//! | D5 | no `println!`/`eprintln!`/`dbg!` in library crates |
//! | D6 | no direct `File::create`/`fs::write` in artifact-producing crates — artifacts go through epc-journal's atomic writers |
//! | D7 | no *transitive* panic reachability from the ingest entry points (call-graph closure of D4) |
//! | D8 | no *transitive* wall-clock reach from chaos-hashed artifact code (call-graph closure of D2) |
//! | D9 | no *transitive* OS-entropy RNG reach from result-producing code (call-graph closure of D1) |
//!
//! D1–D6 are *line rules*: they run over a single file's token stream
//! here; tokens inside `#[cfg(test)] mod` blocks are exempt (see
//! [`crate::scanner::test_block_mask`]). D7–D9 are *graph rules*: they
//! share this module's primitive matchers ([`entropy_sites`],
//! [`clock_sites`], [`panic_sites`]) as taint sources but propagate them
//! over the whole-workspace call graph built in [`crate::graph`]. *Where*
//! each rule applies is not decided here — `lint.toml` scopes each rule to
//! path globs (see [`crate::config`]).

use crate::scanner::{Tok, TokKind};

/// Every rule id, in severity-neutral display order.
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9"];

/// The per-file line rules (phase 1).
pub const LINE_RULE_IDS: [&str; 6] = ["D1", "D2", "D3", "D4", "D5", "D6"];

/// The whole-workspace call-graph rules (phase 2, see [`crate::graph`]).
pub const GRAPH_RULE_IDS: [&str; 3] = ["D7", "D8", "D9"];

/// One rule hit inside a single file (path attached by the driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`"D1"`…`"D6"`, or `"allow"` for malformed directives).
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

/// Entropy-seeded RNG constructors (D1).
const ENTROPY_IDENTS: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];
/// Wall-clock path heads checked for `::now` (D2).
const CLOCK_TYPES: [&str; 4] = ["SystemTime", "Instant", "Utc", "Local"];
/// Hash-ordered collections (D3).
const HASH_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];
/// Panicking macros (D4).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Printing macros (D5).
const PRINT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];

/// Keywords that may directly precede `[` without it being an index
/// expression (`return [a, b]`, `where [T]: Sized`, …).
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async"
            | "await"
            | "box"
            | "break"
            | "const"
            | "continue"
            | "dyn"
            | "else"
            | "enum"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// One primitive-source site inside a file: the anchor token index, its
/// line, and a short label (`unwrap()`, `Instant::now`, `thread_rng`) used
/// both in line-rule messages and as the tail of a D7–D9 witness chain.
#[derive(Debug, Clone)]
pub struct Site {
    /// Index of the anchor token in the scanned stream.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Short display label for the primitive.
    pub label: String,
}

/// Code-token indices outside test modules, in order.
fn code_indices(toks: &[Tok], test_mask: &[bool]) -> Vec<usize> {
    (0..toks.len())
        .filter(|&k| toks[k].is_code() && !test_mask[k])
        .collect()
}

/// Entropy-seeded RNG construction sites (the D1 primitive matcher).
pub fn entropy_sites(toks: &[Tok], test_mask: &[bool]) -> Vec<Site> {
    let code = code_indices(toks, test_mask);
    let mut out = Vec::new();
    for &k in &code {
        let tok = &toks[k];
        if tok.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&tok.text.as_str()) {
            out.push(Site {
                tok: k,
                line: tok.line,
                label: tok.text.clone(),
            });
        }
    }
    out
}

/// Wall-clock read sites — `<ClockType>::now` (the D2 primitive matcher).
pub fn clock_sites(toks: &[Tok], test_mask: &[bool]) -> Vec<Site> {
    let code = code_indices(toks, test_mask);
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };
    let mut out = Vec::new();
    for (ci, &k) in code.iter().enumerate().take(code.len().saturating_sub(3)) {
        let tok = &toks[k];
        if tok.kind == TokKind::Ident
            && CLOCK_TYPES.contains(&tok.text.as_str())
            && t(ci + 1).is_punct(':')
            && t(ci + 2).is_punct(':')
            && t(ci + 3).is_ident("now")
        {
            out.push(Site {
                tok: code[ci],
                line: tok.line,
                label: format!("{}::now", tok.text),
            });
        }
    }
    out
}

/// May-panic sites — `.unwrap()`/`.expect(`, `panic!`-family macros, and
/// index expressions (the D4 primitive matcher). `expr[..]` full-range
/// slices never panic and are skipped.
pub fn panic_sites(toks: &[Tok], test_mask: &[bool]) -> Vec<Site> {
    let code = code_indices(toks, test_mask);
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };
    let mut out = Vec::new();
    for ci in 0..code.len() {
        let tok = t(ci);
        // `.unwrap()` / `.expect(` — exact method names only.
        if tok.kind == TokKind::Ident
            && (tok.text == "unwrap" || tok.text == "expect")
            && ci > 0
            && t(ci - 1).is_punct('.')
            && ci + 1 < code.len()
            && t(ci + 1).is_punct('(')
        {
            out.push(Site {
                tok: code[ci],
                line: tok.line,
                label: format!("{}()", tok.text),
            });
        }
        // panic!-family macros.
        if tok.kind == TokKind::Ident
            && PANIC_MACROS.contains(&tok.text.as_str())
            && ci + 1 < code.len()
            && t(ci + 1).is_punct('!')
        {
            out.push(Site {
                tok: code[ci],
                line: tok.line,
                label: format!("{}!", tok.text),
            });
        }
        // Index expressions: `expr[…]` can panic out-of-bounds.
        if tok.is_punct('[') && ci > 0 {
            let prev = t(ci - 1);
            let is_index_base = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
                || prev.is_punct(')')
                || prev.is_punct(']');
            if is_index_base && !is_full_range_slice(&code, toks, ci) {
                out.push(Site {
                    tok: code[ci],
                    line: tok.line,
                    label: "index expression".to_string(),
                });
            }
        }
    }
    out
}

/// Runs line rule `rule_id` over a file's tokens. `test_mask[i]` exempts
/// token `i` (inside a `#[cfg(test)]` module). Graph rules (D7–D9) never
/// reach here — they need the whole workspace, see [`crate::graph`].
pub fn check(rule_id: &str, toks: &[Tok], test_mask: &[bool]) -> Vec<Violation> {
    // Indices of code tokens outside test modules, in order.
    let code: Vec<usize> = code_indices(toks, test_mask);
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };
    let mut out = Vec::new();
    let mut push = |line: u32, message: String| {
        out.push(Violation {
            rule: rule_id.to_string(),
            line,
            message,
        });
    };

    match rule_id {
        "D1" => {
            for site in entropy_sites(toks, test_mask) {
                push(
                    site.line,
                    format!(
                        "entropy-seeded RNG (`{}`): runs must reproduce — construct RNGs \
                         with seed_from_u64/from_seed from a recorded seed",
                        site.label
                    ),
                );
            }
        }
        "D2" => {
            for site in clock_sites(toks, test_mask) {
                push(
                    site.line,
                    format!(
                        "wall-clock read (`{}`) in a chaos-hashed crate: timestamps \
                         make artifacts differ run-to-run — timing belongs in \
                         epc-runtime::report or the bench crate",
                        site.label
                    ),
                );
            }
        }
        "D3" => {
            for ci in 0..code.len() {
                let tok = t(ci);
                if tok.kind == TokKind::Ident && HASH_COLLECTIONS.contains(&tok.text.as_str()) {
                    push(
                        tok.line,
                        format!(
                            "`{}` in a result-producing module: hash iteration order is \
                             nondeterministic — use BTreeMap/BTreeSet, or sort before any \
                             value escapes and justify with lint:allow(D3)",
                            tok.text
                        ),
                    );
                }
            }
        }
        "D4" => {
            for site in panic_sites(toks, test_mask) {
                let message = if site.label == "index expression" {
                    "index expression (`…[…]`) in quarantine-protected ingest code \
                     can panic out-of-bounds — use .get()/.get_mut() or a slice \
                     pattern"
                        .to_string()
                } else {
                    let spelled = if site.label.ends_with('!') {
                        format!("`{}`", site.label)
                    } else {
                        format!("`.{}`", site.label)
                    };
                    format!(
                        "{spelled} in quarantine-protected ingest code: malformed input \
                         must become a RecordFault, not a panic"
                    )
                };
                push(site.line, message);
            }
        }
        "D5" => {
            for ci in 0..code.len() {
                let tok = t(ci);
                if tok.kind == TokKind::Ident
                    && PRINT_MACROS.contains(&tok.text.as_str())
                    && ci + 1 < code.len()
                    && t(ci + 1).is_punct('!')
                {
                    push(
                        tok.line,
                        format!(
                            "`{}!` in a library crate: libraries return data, the CLI owns \
                             the terminal",
                            tok.text
                        ),
                    );
                }
            }
        }
        "D6" => {
            // `<head> :: <tail>` where head/tail name a torn-write-prone
            // file creation: `File::create` or `fs::write` (also catching
            // the `std::fs::write` spelling via its `fs::write` suffix).
            for ci in 0..code.len().saturating_sub(3) {
                let tok = t(ci);
                let tail = t(ci + 3);
                let is_direct_write = tok.kind == TokKind::Ident
                    && t(ci + 1).is_punct(':')
                    && t(ci + 2).is_punct(':')
                    && ((tok.text == "File" && tail.is_ident("create"))
                        || (tok.text == "fs" && tail.is_ident("write")));
                if is_direct_write {
                    push(
                        tok.line,
                        format!(
                            "direct artifact write (`{}::{}`) in an artifact-producing crate: \
                             a crash mid-write leaves a torn file — route writes through \
                             epc_journal::write_atomic / write_atomic_path",
                            tok.text, tail.text
                        ),
                    );
                }
            }
        }
        other => {
            // Config validation rejects unknown ids, and the driver routes
            // graph rules (D7–D9) to `crate::graph` instead of here.
            debug_assert!(false, "rule id {other} is not a line rule");
        }
    }
    out
}

/// `expr[..]` (full-range slice) never panics — exempt it from D4.
/// `ci` points at the `[` in the code-index list.
fn is_full_range_slice(code: &[usize], toks: &[Tok], ci: usize) -> bool {
    let t = |k: usize| -> &Tok { &toks[code[k]] };
    let mut depth = 0usize;
    let mut interior: Vec<&Tok> = Vec::new();
    for k in ci..code.len() {
        if t(k).is_punct('[') {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t(k).is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        interior.push(t(k));
    }
    interior.len() == 2 && interior[0].is_punct('.') && interior[1].is_punct('.')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, test_block_mask};

    fn run(rule: &str, src: &str) -> Vec<Violation> {
        let toks = scan(src);
        let mask = test_block_mask(&toks);
        check(rule, &toks, &mask)
    }

    #[test]
    fn d1_flags_entropy_rng() {
        let hits = run(
            "D1",
            "let mut r = rand::thread_rng();\nlet s = StdRng::from_entropy();",
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
    }

    #[test]
    fn d1_ignores_seeded_construction() {
        assert!(run("D1", "let r = StdRng::seed_from_u64(7);").is_empty());
    }

    #[test]
    fn d2_flags_clock_reads() {
        let hits = run(
            "D2",
            "let t0 = Instant::now();\nlet wall = SystemTime::now();",
        );
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn d2_needs_the_now_call() {
        assert!(run("D2", "fn takes(i: Instant) {}").is_empty());
    }

    #[test]
    fn d3_flags_hash_collections() {
        let hits = run("D3", "use std::collections::HashMap;\nlet s: HashSet<u32>;");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn d4_flags_unwrap_expect_panics_and_indexing() {
        let src = "fn f(v: &[u32], i: usize) -> u32 {\n\
                   let a = v.first().unwrap();\n\
                   let b = v.last().expect(\"x\");\n\
                   if i > 9 { panic!(\"no\"); }\n\
                   v[i]\n}";
        let hits = run("D4", src);
        let lines: Vec<u32> = hits.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
    }

    #[test]
    fn d4_skips_safe_bracket_forms() {
        let src = "fn f(v: &[u32]) {\n\
                   let w = &v[..];\n\
                   let a = vec![1, 2];\n\
                   let t: [u8; 2] = [0, 1];\n\
                   #[derive(Debug)]\nstruct S;\n\
                   match v { [x, y] => {}, _ => {} }\n\
                   return [1, 2];\n}";
        let hits = run("D4", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn d4_exact_method_names_only() {
        assert!(run(
            "D4",
            "let x = o.unwrap_or(3); let y = o.unwrap_or_default();"
        )
        .is_empty());
    }

    #[test]
    fn d5_flags_prints() {
        let hits = run("D5", "println!(\"x\");\ndbg!(v);\neprintln!(\"e\");");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn d6_flags_direct_artifact_writes() {
        let src = "fn save(p: &Path) -> io::Result<()> {\n\
                   fs::write(p, \"x\")?;\n\
                   std::fs::write(p, \"x\")?;\n\
                   let f = File::create(p)?;\n\
                   let g = std::fs::File::create(p)?;\n\
                   Ok(())\n}";
        let hits = run("D6", src);
        let lines: Vec<u32> = hits.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
        assert!(hits[0].message.contains("write_atomic"), "{hits:?}");
    }

    #[test]
    fn d6_ignores_reads_imports_and_journal_writers() {
        let src = "use std::fs;\n\
                   use std::fs::File;\n\
                   fn load(p: &Path) -> io::Result<String> {\n\
                   let _rec = epc_journal::write_atomic_path(p, b\"x\")?;\n\
                   let _f = File::open(p)?;\n\
                   fs::create_dir_all(p)?;\n\
                   fs::read_to_string(p)\n}";
        assert!(run("D6", src).is_empty(), "{:?}", run("D6", src));
    }

    #[test]
    fn test_modules_are_exempt_everywhere() {
        let src = "#[cfg(test)]\nmod tests {\n use std::collections::HashMap;\n\
                   fn t() { v.unwrap(); println!(\"ok\"); }\n}";
        for rule in LINE_RULE_IDS {
            assert!(run(rule, src).is_empty(), "{rule} leaked into tests");
        }
    }

    #[test]
    fn primitive_sites_carry_witness_labels() {
        let toks = scan("fn f() { let t = Instant::now(); let r = thread_rng(); v.unwrap(); }");
        let mask = test_block_mask(&toks);
        assert_eq!(clock_sites(&toks, &mask)[0].label, "Instant::now");
        assert_eq!(entropy_sites(&toks, &mask)[0].label, "thread_rng");
        assert_eq!(panic_sites(&toks, &mask)[0].label, "unwrap()");
    }
}
