//! Witness-chain reconstruction: the human-readable proof attached to
//! every D7–D9 diagnostic.
//!
//! A witness walks a shortest call chain from a root function down to the
//! primitive, one ` → `-joined segment per hop:
//!
//! ```text
//! crates/epc-model/src/csv.rs:12 ingest_row → crates/indice/src/normalize.rs:40 normalize → crates/epc-stats/src/quantile.rs:7 unwrap()
//! ```
//!
//! Function segments point at the *definition* line (where the reviewer
//! must go to break the chain); the final segment points at the primitive
//! itself. The chain is what makes a transitive finding actionable — the
//! diagnostic line alone only says where the panic lives, not why ingest
//! code can reach it.

use super::callgraph::FnNode;
use super::taint::{Reach, Source};

/// Formats the chain from `root` to `source`, following the shortest-path
/// tree in `reach`. `paths[file]` gives each file's repo-relative path.
pub fn chain(
    root: usize,
    source: &Source,
    reach: &Reach,
    fns: &[FnNode],
    paths: &[String],
) -> String {
    let mut segments = Vec::new();
    let mut at = root;
    // dist strictly decreases along `next`, so this terminates.
    loop {
        let f = &fns[at];
        segments.push(format!("{}:{} {}", paths[f.file], f.def.line, f.def.qual));
        match reach.next[at] {
            Some(n) => at = n,
            None => break,
        }
    }
    segments.push(format!(
        "{}:{} {}",
        paths[source.file], source.line, source.label
    ));
    segments.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse::FnDef;

    fn node(file: usize, line: u32, qual: &str) -> FnNode {
        FnNode {
            file,
            def: FnDef {
                name: qual.rsplit("::").next().unwrap().to_string(),
                qual: qual.to_string(),
                type_ctx: None,
                is_method: false,
                line,
                body: None,
                calls: Vec::new(),
            },
        }
    }

    #[test]
    fn chain_lists_defs_then_primitive() {
        let fns = vec![node(0, 12, "ingest_row"), node(1, 40, "normalize")];
        let reach = Reach {
            next: vec![Some(1), None],
            dist: vec![1, 0],
        };
        let source = Source {
            fn_id: 1,
            file: 1,
            line: 44,
            label: "unwrap()".into(),
        };
        let paths = vec!["a.rs".to_string(), "b.rs".to_string()];
        assert_eq!(
            chain(0, &source, &reach, &fns, &paths),
            "a.rs:12 ingest_row → b.rs:40 normalize → b.rs:44 unwrap()"
        );
    }

    #[test]
    fn zero_hop_chain_is_root_then_primitive() {
        let fns = vec![node(0, 3, "Csv::parse")];
        let reach = Reach {
            next: vec![None],
            dist: vec![0],
        };
        let source = Source {
            fn_id: 0,
            file: 0,
            line: 9,
            label: "panic!".into(),
        };
        let paths = vec!["csv.rs".to_string()];
        assert_eq!(
            chain(0, &source, &reach, &fns, &paths),
            "csv.rs:3 Csv::parse → csv.rs:9 panic!"
        );
    }
}
