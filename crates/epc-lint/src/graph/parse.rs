//! Phase-2 parser: function items, impl/trait context, and call sites,
//! extracted from the scanner's token stream.
//!
//! This is deliberately *not* type-aware name resolution. The call-graph
//! rules (D7–D9) only need a sound over-approximation of "who can call
//! whom", so the parser recovers exactly three structural facts from the
//! comment/string-masked token stream:
//!
//! 1. every `fn` item — its name, definition line, body token range, and
//!    whether it sits inside an `impl`/`trait` block (a *method*),
//! 2. the enclosing impl/trait type of each method, so `Self::helper(…)`
//!    and `Type::helper(…)` calls can be narrowed,
//! 3. every call site inside a body — bare (`helper(x)`), qualified
//!    (`Type::helper(x)`, `module::helper(x)`), or method (`recv.helper(x)`),
//!    including turbofish forms (`helper::<T>(x)`).
//!
//! Closure bodies belong to their enclosing function; nested `fn` items
//! own their tokens exclusively (the innermost function wins), so a call
//! or primitive is attributed to exactly one function.

use crate::scanner::{Tok, TokKind};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name (`normalize`).
    pub name: String,
    /// Display name: `Type::normalize` for methods, else the bare name.
    pub qual: String,
    /// Enclosing impl/trait type, used to resolve `Self::` calls.
    pub type_ctx: Option<String>,
    /// `true` when defined directly inside an `impl` or `trait` block.
    pub is_method: bool,
    /// 1-based line of the function's name.
    pub line: u32,
    /// Token index range of the body braces, inclusive; `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body, deduplicated by callee shape.
    pub calls: Vec<CallSite>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (the identifier directly before the argument list).
    pub name: String,
    /// `Some("Type")` for `Type::name(…)` path calls, with `Self` already
    /// substituted; `None` for bare and method calls (and for
    /// `crate::`/`self::`/`super::` prefixes, which resolve like bare calls).
    pub qualifier: Option<String>,
    /// `true` for `.name(…)` method syntax.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: u32,
}

/// A file parsed for the graph pass: its functions plus a per-token map
/// to the innermost owning function.
#[derive(Debug)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    /// `owner[k]` = index into `fns` of the innermost function whose body
    /// contains token `k`, if any.
    pub owner: Vec<Option<usize>>,
}

/// What a `{` being tracked on the context stack belongs to.
enum Opened {
    /// An `impl Type { … }` or `trait Name { … }` block.
    TypeBlock(String),
    /// A function body (index into the output list).
    Fn(usize),
    /// Any other brace: mod, struct/enum, match, block expression, …
    Plain,
}

/// Parses one file's tokens (comment/test-masked) into function items
/// with attributed call sites.
pub fn parse_file(toks: &[Tok], test_mask: &[bool]) -> ParsedFile {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&k| toks[k].is_code() && !test_mask[k])
        .collect();
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };

    let mut fns: Vec<FnDef> = Vec::new();
    let mut stack: Vec<Opened> = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        let tok = t(ci);
        // `impl …` / `trait …` headers: find the implemented-on type (the
        // last angle-depth-0 identifier before the brace — `Foo` in
        // `impl Foo<T>`, in `impl fmt::Display for Foo`, and in
        // `impl<'a> Iterator for Iter<'a>` alike) and open a type block.
        if tok.is_ident("impl") || tok.is_ident("trait") {
            let mut angle = 0i32;
            let mut name = String::new();
            let mut cj = ci + 1;
            while cj < code.len() {
                let h = t(cj);
                if h.is_punct('<') {
                    angle += 1;
                } else if h.is_punct('>') {
                    // `->` cannot appear in impl/trait headers, so a bare
                    // `>` always closes a generic-argument list.
                    angle -= 1;
                } else if h.is_punct('{') && angle <= 0 {
                    break;
                } else if h.is_punct(';') && angle <= 0 {
                    break; // `trait A: B;`-style degenerate forms
                } else if h.kind == TokKind::Ident && angle == 0 && !is_header_keyword(&h.text) {
                    name = h.text.clone();
                }
                cj += 1;
            }
            if cj < code.len() && t(cj).is_punct('{') {
                stack.push(Opened::TypeBlock(name));
            }
            ci = cj + 1;
            continue;
        }
        // `fn name …` items. A bare `fn` in type position (`fn(usize)`)
        // has no following identifier and is skipped.
        if tok.is_ident("fn") && ci + 1 < code.len() && t(ci + 1).kind == TokKind::Ident {
            let name_tok = t(ci + 1);
            let is_method = matches!(stack.last(), Some(Opened::TypeBlock(_)));
            let type_ctx = stack.iter().rev().find_map(|o| match o {
                Opened::TypeBlock(n) if !n.is_empty() => Some(n.clone()),
                _ => None,
            });
            let qual = match (&type_ctx, is_method) {
                (Some(ty), true) => format!("{ty}::{}", name_tok.text),
                _ => name_tok.text.clone(),
            };
            let id = fns.len();
            fns.push(FnDef {
                name: name_tok.text.clone(),
                qual,
                type_ctx,
                is_method,
                line: name_tok.line,
                body: None,
                calls: Vec::new(),
            });
            // Header scan: the body is the first `{` at paren/bracket
            // depth 0; a `;` there instead means a bodyless declaration.
            let mut depth = 0i32;
            let mut cj = ci + 2;
            while cj < code.len() {
                let h = t(cj);
                if h.is_punct('(') || h.is_punct('[') {
                    depth += 1;
                } else if h.is_punct(')') || h.is_punct(']') {
                    depth -= 1;
                } else if h.is_punct('{') && depth == 0 {
                    fns[id].body = Some((code[cj], code[cj]));
                    stack.push(Opened::Fn(id));
                    break;
                } else if h.is_punct(';') && depth == 0 {
                    break;
                }
                cj += 1;
            }
            ci = cj + 1;
            continue;
        }
        if tok.is_punct('{') {
            stack.push(Opened::Plain);
        } else if tok.is_punct('}') {
            if let Some(Opened::Fn(id)) = stack.pop() {
                if let Some((start, _)) = fns[id].body {
                    fns[id].body = Some((start, code[ci]));
                }
            }
        }
        ci += 1;
    }
    // Unbalanced input (truncated file): close any still-open bodies at
    // the last token so attribution stays total.
    for open in stack {
        if let Opened::Fn(id) = open {
            if let Some((start, _)) = fns[id].body {
                fns[id].body = Some((start, toks.len().saturating_sub(1)));
            }
        }
    }

    // Innermost-function ownership: definition order puts outer functions
    // first, so writing ranges in order leaves the innermost owner.
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    for (id, f) in fns.iter().enumerate() {
        if let Some((start, end)) = f.body {
            for slot in owner.iter_mut().take(end + 1).skip(start) {
                *slot = Some(id);
            }
        }
    }

    collect_calls(toks, &code, &owner, &mut fns);
    ParsedFile { fns, owner }
}

/// Identifiers that appear in impl/trait headers without naming the type.
fn is_header_keyword(s: &str) -> bool {
    matches!(
        s,
        "for" | "dyn" | "mut" | "const" | "unsafe" | "where" | "pub" | "crate" | "in"
    )
}

/// Scans code tokens for call sites and attributes each to its owning
/// function. Attribute ranges (`#[…]`) are skipped so `#[derive(Debug)]`
/// never reads as a call to `derive`.
fn collect_calls(toks: &[Tok], code: &[usize], owner: &[Option<usize>], fns: &mut [FnDef]) {
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };
    let mut ci = 0usize;
    while ci < code.len() {
        // Skip `#[…]` / `#![…]` attribute ranges.
        if t(ci).is_punct('#') {
            let mut cj = ci + 1;
            if cj < code.len() && t(cj).is_punct('!') {
                cj += 1;
            }
            if cj < code.len() && t(cj).is_punct('[') {
                let mut depth = 0i32;
                while cj < code.len() {
                    if t(cj).is_punct('[') {
                        depth += 1;
                    } else if t(cj).is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    cj += 1;
                }
                ci = cj + 1;
                continue;
            }
        }
        let tok = t(ci);
        if tok.kind != TokKind::Ident || crate::rules::is_keyword(&tok.text) {
            ci += 1;
            continue;
        }
        let Some(fn_id) = owner[code[ci]] else {
            ci += 1;
            continue;
        };
        // The argument list: directly (`name(`) or behind a turbofish
        // (`name::<T>(`).
        let mut args_ci = None;
        if ci + 1 < code.len() && t(ci + 1).is_punct('(') {
            args_ci = Some(ci + 1);
        } else if ci + 3 < code.len()
            && t(ci + 1).is_punct(':')
            && t(ci + 2).is_punct(':')
            && t(ci + 3).is_punct('<')
        {
            if let Some(close) = matching_angle(toks, code, ci + 3) {
                if close + 1 < code.len() && t(close + 1).is_punct('(') {
                    args_ci = Some(close + 1);
                }
            }
        }
        let Some(_) = args_ci else {
            ci += 1;
            continue;
        };
        // `fn name(` is the definition, not a call.
        if ci > 0 && t(ci - 1).is_ident("fn") {
            ci += 1;
            continue;
        }
        // Method call: `recv.name(…)` — but `0..name(…)` is a range whose
        // end happens to be a call, not method syntax.
        let is_method = ci > 0 && t(ci - 1).is_punct('.') && !(ci > 1 && t(ci - 2).is_punct('.'));
        let mut qualifier = None;
        if !is_method
            && ci > 2
            && t(ci - 1).is_punct(':')
            && t(ci - 2).is_punct(':')
            && t(ci - 3).kind == TokKind::Ident
        {
            let q = &t(ci - 3).text;
            qualifier = match q.as_str() {
                // Path roots that mean "this crate": resolve like bare calls.
                "crate" | "self" | "super" => None,
                "Self" => fns[fn_id].type_ctx.clone().or_else(|| Some(q.clone())),
                _ => Some(q.clone()),
            };
        }
        let site = CallSite {
            name: tok.text.clone(),
            qualifier,
            is_method,
            line: tok.line,
        };
        let f = &mut fns[fn_id];
        if !f.calls.iter().any(|c| {
            c.name == site.name && c.qualifier == site.qualifier && c.is_method == site.is_method
        }) {
            f.calls.push(site);
        }
        ci += 1;
    }
}

/// From `open` at `<`, returns the index of the matching `>`. Handles
/// nested generics; `->` inside function-pointer types is skipped so its
/// `>` is not miscounted.
fn matching_angle(toks: &[Tok], code: &[usize], open: usize) -> Option<usize> {
    let t = |ci: usize| -> &Tok { &toks[code[ci]] };
    let len = code.len();
    let mut depth = 0i32;
    let mut k = open;
    while k < len {
        if t(k).is_punct('-') && k + 1 < len && t(k + 1).is_punct('>') {
            k += 2;
            continue;
        }
        if t(k).is_punct('<') {
            depth += 1;
        } else if t(k).is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, test_block_mask};

    fn parse(src: &str) -> ParsedFile {
        let toks = scan(src);
        let mask = test_block_mask(&toks);
        parse_file(&toks, &mask)
    }

    #[test]
    fn free_fns_methods_and_type_context() {
        let p = parse(
            "pub fn free(x: u32) -> u32 { x }\n\
             struct S { v: u32 }\n\
             impl S {\n    pub fn method(&self) -> u32 { self.v }\n}\n\
             impl std::fmt::Display for S {\n    fn fmt(&self, f: &mut F) -> R { todo(f) }\n}\n",
        );
        let names: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.qual.as_str(), f.is_method))
            .collect();
        assert_eq!(
            names,
            vec![("free", false), ("S::method", true), ("S::fmt", true)]
        );
        assert_eq!(p.fns[1].type_ctx.as_deref(), Some("S"));
    }

    #[test]
    fn impl_trait_for_type_binds_to_the_type() {
        let p = parse("trait Clock { fn now_ms(&self) -> u64; }\nimpl Clock for WallClock { fn now_ms(&self) -> u64 { 0 } }\n");
        let quals: Vec<&str> = p.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Clock::now_ms", "WallClock::now_ms"]);
        assert!(p.fns[0].body.is_none(), "trait decl has no body");
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn calls_are_classified_and_attributed() {
        let p = parse(
            "fn outer(v: &[u32]) -> u32 {\n\
                 helper(v);\n\
                 epc_stats::quantile(v, 0.5);\n\
                 v.iter().sum()\n\
             }\n\
             fn helper(v: &[u32]) {}\n",
        );
        let calls = &p.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "helper" && !c.is_method && c.qualifier.is_none()));
        assert!(calls
            .iter()
            .any(|c| c.name == "quantile" && c.qualifier.as_deref() == Some("epc_stats")));
        assert!(calls.iter().any(|c| c.name == "iter" && c.is_method));
        assert!(calls.iter().any(|c| c.name == "sum" && c.is_method));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let p =
            parse("impl Engine {\n  fn run(&self) { Self::validate(); }\n  fn validate() {}\n}\n");
        let call = &p.fns[0].calls[0];
        assert_eq!(call.name, "validate");
        assert_eq!(call.qualifier.as_deref(), Some("Engine"));
    }

    #[test]
    fn turbofish_calls_are_still_calls() {
        let p = parse(
            "fn f(s: &str) -> u32 { parse_as::<u32>(s) }\nfn parse_as(s: &str) -> u32 { 0 }\n",
        );
        assert!(p.fns[0].calls.iter().any(|c| c.name == "parse_as"));
    }

    #[test]
    fn attributes_and_macros_are_not_calls() {
        let p = parse("#[derive(Debug, Clone)]\nstruct S;\nfn f() { println!(\"x\"); vec![1]; }\n");
        assert!(p.fns[0].calls.is_empty(), "{:?}", p.fns[0].calls);
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn_and_nested_fns_to_themselves() {
        let src = "fn outer(v: Vec<u32>) -> Vec<u32> {\n\
                       fn inner(x: u32) -> u32 { deep(x) }\n\
                       v.into_iter().map(|x| shallow(x)).collect()\n\
                   }\n\
                   fn shallow(x: u32) -> u32 { x }\n\
                   fn deep(x: u32) -> u32 { x }\n";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().any(|c| c.name == "shallow"));
        assert!(!outer.calls.iter().any(|c| c.name == "deep"));
        assert!(inner.calls.iter().any(|c| c.name == "deep"));
    }

    #[test]
    fn range_end_calls_are_not_method_calls() {
        let p = parse("fn f(v: &[u32]) -> &[u32] { &v[..limit(v)] }\nfn limit(v: &[u32]) -> usize { v.len() }\n");
        let c = p.fns[0].calls.iter().find(|c| c.name == "limit").unwrap();
        assert!(!c.is_method, "`..limit(v)` is a range, not method syntax");
    }

    #[test]
    fn test_modules_are_invisible_to_the_graph() {
        let p = parse("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "lib");
    }
}
