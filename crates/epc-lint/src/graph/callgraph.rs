//! Crate-aware call-graph construction over the parsed function items.
//!
//! Resolution is *name-based and conservative*: without types, a call may
//! resolve to several candidates, and the graph keeps an edge to every one
//! of them — ambiguity widens the audit surface, it never shrinks it.
//!
//! | call shape | candidate set |
//! |---|---|
//! | `recv.name(…)` | every workspace *method* named `name` (any impl — the receiver type is unknown) |
//! | `Type::name(…)` | methods of a workspace impl/trait block named `Type`; else functions defined in a crate or file (module) named `Type` |
//! | `name(…)` | every workspace *free function* named `name` (bare calls reach `use`-imported items, so same-crate narrowing would be unsound) |
//!
//! Calls that resolve to nothing are external (`std`, shims) and carry no
//! edge: the audit's primitive matchers already cover what externals can
//! do (a `.unwrap()` is flagged at the call site itself, not in `core`).

use super::parse::FnDef;
use std::collections::BTreeMap;

/// One function in the workspace-wide graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the defining file in the analyzer's file list.
    pub file: usize,
    pub def: FnDef,
}

/// The resolved call graph: `edges[caller]` lists callee ids, sorted and
/// deduplicated, so every traversal is deterministic.
#[derive(Debug)]
pub struct CallGraph {
    pub edges: Vec<Vec<usize>>,
}

/// Builds the graph. `crate_of[file]`/`stem_of[file]` give each file's
/// owning crate (normalized, `-` → `_`) and module stem for qualifier
/// narrowing.
pub fn build(fns: &[FnNode], crate_of: &[Option<String>], stem_of: &[String]) -> CallGraph {
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut any: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, node) in fns.iter().enumerate() {
        let bucket = if node.def.is_method {
            &mut methods
        } else {
            &mut free
        };
        bucket.entry(node.def.name.as_str()).or_default().push(id);
        any.entry(node.def.name.as_str()).or_default().push(id);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (caller, node) in fns.iter().enumerate() {
        for call in &node.def.calls {
            let out = &mut edges[caller];
            if call.is_method {
                if let Some(cands) = methods.get(call.name.as_str()) {
                    out.extend_from_slice(cands);
                }
            } else if let Some(q) = &call.qualifier {
                let Some(cands) = any.get(call.name.as_str()) else {
                    continue;
                };
                let norm = q.replace('-', "_");
                // Type-qualified first (`StreetMap::from_text`), then
                // crate- or module-qualified (`epc_stats::quantile`,
                // `levenshtein::levenshtein`). An unmatched qualifier is
                // an external path (`String::from`) — no edge.
                let by_type: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| fns[c].def.type_ctx.as_deref() == Some(q.as_str()))
                    .collect();
                if !by_type.is_empty() {
                    out.extend_from_slice(&by_type);
                } else {
                    out.extend(cands.iter().copied().filter(|&c| {
                        crate_of[fns[c].file].as_deref() == Some(norm.as_str())
                            || stem_of[fns[c].file] == norm
                    }));
                }
            } else if let Some(cands) = free.get(call.name.as_str()) {
                out.extend_from_slice(cands);
            }
        }
        edges[caller].sort_unstable();
        edges[caller].dedup();
    }
    CallGraph { edges }
}

/// The owning crate of a repo-relative path (`crates/<name>/…`),
/// normalized to identifier form.
pub fn crate_of_path(path: &str) -> Option<String> {
    let mut segs = path.split('/');
    if segs.next() == Some("crates") {
        segs.next().map(|c| c.replace('-', "_"))
    } else {
        None
    }
}

/// The module stem of a path (`quantile` for `…/quantile.rs`).
pub fn stem_of_path(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::parse::parse_file;
    use crate::scanner::{scan, test_block_mask};

    fn graph(files: &[(&str, &str)]) -> (Vec<FnNode>, CallGraph) {
        let mut fns = Vec::new();
        let mut crates = Vec::new();
        let mut stems = Vec::new();
        for (idx, (path, src)) in files.iter().enumerate() {
            let toks = scan(src);
            let mask = test_block_mask(&toks);
            for def in parse_file(&toks, &mask).fns {
                fns.push(FnNode { file: idx, def });
            }
            crates.push(crate_of_path(path));
            stems.push(stem_of_path(path));
        }
        let g = build(&fns, &crates, &stems);
        (fns, g)
    }

    fn callees<'a>(fns: &'a [FnNode], g: &CallGraph, name: &str) -> Vec<&'a str> {
        let id = fns.iter().position(|f| f.def.qual == name).unwrap();
        g.edges[id]
            .iter()
            .map(|&c| fns[c].def.qual.as_str())
            .collect()
    }

    #[test]
    fn bare_calls_link_across_crates_but_not_to_methods() {
        let (fns, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() { helper(); }\nimpl T { fn helper(&self) {} }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(callees(&fns, &g, "entry"), vec!["helper"]);
        let id = fns.iter().position(|f| f.def.qual == "entry").unwrap();
        assert_eq!(
            fns[g.edges[id][0]].file, 1,
            "resolved to the free fn in crate b"
        );
    }

    #[test]
    fn method_calls_are_conservatively_ambiguous() {
        let (fns, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry(x: X) { x.decode(); }\n\
             impl Strict { pub fn decode(&self) {} }\n\
             impl Lenient { pub fn decode(&self) {} }\n\
             pub fn decode() {}\n",
        )]);
        assert_eq!(
            callees(&fns, &g, "entry"),
            vec!["Strict::decode", "Lenient::decode"],
            "both impls, but never the free fn"
        );
    }

    #[test]
    fn qualified_calls_narrow_by_type_then_crate_then_module() {
        let (fns, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() {\n\
                     StreetMap::load(\"p\");\n\
                     epc_stats::median(&[]);\n\
                     quantile::cut(&[]);\n\
                     String::from(\"external\");\n\
                 }\n\
                 impl StreetMap { pub fn load(p: &str) {} }\n",
            ),
            (
                "crates/epc-stats/src/quantile.rs",
                "pub fn median(v: &[f64]) {}\npub fn cut(v: &[f64]) {}\npub fn from(s: &str) {}\n",
            ),
        ]);
        assert_eq!(
            callees(&fns, &g, "entry"),
            vec!["StreetMap::load", "median", "cut"],
            "`String::from` must not reach the workspace `from`"
        );
    }

    #[test]
    fn unresolved_calls_are_external() {
        let (fns, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry(v: Vec<u32>) { v.sort(); nothing_named_this(); }\n",
        )]);
        assert!(callees(&fns, &g, "entry").is_empty());
    }
}
