//! Taint facts and their propagation over the call graph.
//!
//! A *source* is a primitive token the line rules already know how to
//! recognise — an `unwrap()`, an `Instant::now()`, a `thread_rng()` —
//! attributed to the function whose body contains it. Propagation answers
//! one question per source: *which functions can transitively reach it?*
//!
//! The search runs backwards (callee → caller) as a breadth-first sweep
//! from the source's owning function, so the hop recorded for every
//! reached function lies on a **shortest** call chain — witnesses stay
//! minimal. Functions in a rule's `exempt` files are *trusted*: they are
//! never enqueued, so taint neither originates in nor flows through them.

use crate::rules::{self, Site};
use crate::scanner::Tok;

/// The three facts D7–D9 propagate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// May panic: `unwrap`/`expect`/`panic!`-family/indexing (rule D4's matchers).
    Panic,
    /// Reads the wall clock (rule D2's matchers).
    Clock,
    /// Draws OS entropy (rule D1's matchers).
    Entropy,
}

impl TaintKind {
    /// The primitive sites of this kind in one file's token stream.
    pub fn sites(self, toks: &[Tok], test_mask: &[bool]) -> Vec<Site> {
        match self {
            TaintKind::Panic => rules::panic_sites(toks, test_mask),
            TaintKind::Clock => rules::clock_sites(toks, test_mask),
            TaintKind::Entropy => rules::entropy_sites(toks, test_mask),
        }
    }
}

/// One taint source: a primitive site attributed to its owning function.
#[derive(Debug)]
pub struct Source {
    /// Global id of the function whose body contains the primitive.
    pub fn_id: usize,
    /// Index of the defining file in the analyzer's file list.
    pub file: usize,
    pub line: u32,
    /// Human label for the chain tail (`unwrap()`, `Instant::now`, …).
    pub label: String,
}

/// Callee → callers adjacency, derived from the call graph's edges.
pub fn reverse(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); edges.len()];
    for (caller, callees) in edges.iter().enumerate() {
        for &callee in callees {
            rev[callee].push(caller);
        }
    }
    rev
}

/// Shortest-path tree toward one source function.
#[derive(Debug)]
pub struct Reach {
    /// `next[f]` = the callee `f` invokes on its shortest chain to the
    /// source; `None` at the source itself and for unreached functions.
    pub next: Vec<Option<usize>>,
    /// Hops to the source; `u32::MAX` when unreached.
    pub dist: Vec<u32>,
}

/// BFS from `source_fn` along `rev` (callee → caller). `trusted[f]`
/// excludes `f` from the sweep entirely.
pub fn reach_to(source_fn: usize, rev: &[Vec<usize>], trusted: &[bool]) -> Reach {
    let mut next: Vec<Option<usize>> = vec![None; rev.len()];
    let mut dist: Vec<u32> = vec![u32::MAX; rev.len()];
    dist[source_fn] = 0;
    let mut queue = std::collections::VecDeque::from([source_fn]);
    while let Some(f) = queue.pop_front() {
        for &caller in &rev[f] {
            if trusted[caller] || dist[caller] != u32::MAX {
                continue;
            }
            dist[caller] = dist[f] + 1;
            next[caller] = Some(f);
            queue.push_back(caller);
        }
    }
    Reach { next, dist }
}

#[cfg(test)]
mod tests {
    use super::*;

    //        0 ──► 1 ──► 3 (source)
    //        0 ──► 2 ──► 3
    //        4 ──► 0
    fn diamond() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![3], vec![3], vec![], vec![0]]
    }

    #[test]
    fn bfs_finds_shortest_chains_backwards() {
        let rev = reverse(&diamond());
        let r = reach_to(3, &rev, &[false; 5]);
        assert_eq!(r.dist, vec![2, 1, 1, 0, 3]);
        assert_eq!(r.next[0], Some(1), "first-listed callee wins ties");
        assert_eq!(r.next[4], Some(0));
        assert_eq!(r.next[3], None, "the source has no next hop");
    }

    #[test]
    fn trusted_fns_block_propagation() {
        let rev = reverse(&diamond());
        let mut trusted = [false; 5];
        trusted[1] = true;
        trusted[2] = true;
        let r = reach_to(3, &rev, &trusted);
        assert_eq!(r.dist[0], u32::MAX, "both paths run through trusted fns");
        assert_eq!(r.dist[4], u32::MAX);
    }

    #[test]
    fn unreachable_fns_stay_unreached() {
        let rev = reverse(&[vec![], vec![]]);
        let r = reach_to(0, &rev, &[false, false]);
        assert_eq!(r.dist[1], u32::MAX);
        assert_eq!(r.next[1], None);
    }
}
