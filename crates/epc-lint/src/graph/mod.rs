//! Phase 2 of the audit: workspace-wide call-graph taint analysis behind
//! rules D7–D9.
//!
//! The line rules (phase 1) judge each file in isolation; this layer
//! judges the *reachability closure*. Pipeline: [`parse`] lifts each
//! file's token stream into function items with attributed call sites,
//! [`callgraph`] resolves names into a conservative workspace graph,
//! [`taint`] propagates may-panic / reads-wall-clock / draws-entropy
//! facts backwards from the primitive sites, and [`witness`] renders the
//! shortest offending chain for each diagnostic.
//!
//! Scoping semantics (per `[rules.D7..D9]` in `lint.toml`):
//!
//! * `scope` globs name the **root files** — every function defined there
//!   is an entry point that must not reach the rule's primitives;
//! * `exempt` globs name **trusted files** — their functions neither
//!   originate taint nor transmit it (reviewed numeric kernels, the
//!   deliberate clock shim);
//! * every other included file is transit: its functions carry taint but
//!   are not themselves audited as roots.
//!
//! Each diagnostic anchors at the **primitive site** (file and line of
//! the `unwrap()`/`Instant::now()`/`thread_rng()`), so a `lint:allow` at
//! the source line suppresses every chain that ends there — the reviewed
//! fact is "this primitive is safe", independent of who calls it. One
//! diagnostic is emitted per (rule, primitive site), carrying the
//! shortest witness chain from the nearest root.

pub mod callgraph;
pub mod parse;
pub mod taint;
pub mod witness;

use crate::config::Config;
use crate::rules::{Violation, GRAPH_RULE_IDS};
use crate::scanner::Tok;
use callgraph::FnNode;
use taint::{Source, TaintKind};

/// One scanned file, as phase 1 already prepared it.
pub struct FileTokens<'a> {
    /// Repo-relative `/`-separated path.
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub test_mask: &'a [bool],
}

/// What the graph pass found.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Function items in the workspace graph.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Violations grouped by input-file index (the file of the primitive
    /// site, where the diagnostic anchors).
    pub per_file: Vec<Vec<Violation>>,
}

/// What each graph rule forbids the roots from reaching.
struct GraphRule {
    id: &'static str,
    kind: TaintKind,
    headline: &'static str,
}

const GRAPH_RULES: [GraphRule; 3] = [
    GraphRule {
        id: "D7",
        kind: TaintKind::Panic,
        headline: "may-panic call path reachable from ingest entry point",
    },
    GraphRule {
        id: "D8",
        kind: TaintKind::Clock,
        headline: "wall-clock read reachable from hash-gated artifact code",
    },
    GraphRule {
        id: "D9",
        kind: TaintKind::Entropy,
        headline: "OS-entropy RNG reachable from result-producing code",
    },
];

/// Runs rules D7–D9 over the whole file set.
pub fn analyze(files: &[FileTokens], cfg: &Config) -> Outcome {
    debug_assert_eq!(GRAPH_RULES.len(), GRAPH_RULE_IDS.len());

    // Parse every file once; number functions globally in file order.
    let mut fns: Vec<FnNode> = Vec::new();
    let mut owners: Vec<Vec<Option<usize>>> = Vec::new(); // global ids
    let mut crates = Vec::new();
    let mut stems = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        let base = fns.len();
        let parsed = parse::parse_file(f.toks, f.test_mask);
        owners.push(
            parsed
                .owner
                .iter()
                .map(|o| o.map(|local| base + local))
                .collect(),
        );
        fns.extend(parsed.fns.into_iter().map(|def| FnNode { file: idx, def }));
        crates.push(callgraph::crate_of_path(f.path));
        stems.push(callgraph::stem_of_path(f.path));
    }

    let graph = callgraph::build(&fns, &crates, &stems);
    let rev = taint::reverse(&graph.edges);
    let mut out = Outcome {
        functions: fns.len(),
        call_edges: graph.edges.iter().map(Vec::len).sum(),
        per_file: vec![Vec::new(); files.len()],
    };
    let paths: Vec<String> = files.iter().map(|f| f.path.to_string()).collect();

    for rule in &GRAPH_RULES {
        let Some(scope) = cfg.rule(rule.id) else {
            continue;
        };
        // Per-file classification, then per-function flags.
        let file_root: Vec<bool> = paths.iter().map(|p| scope.applies_to(p)).collect();
        let file_trusted: Vec<bool> = paths
            .iter()
            .map(|p| scope.exempt.iter().any(|g| crate::config::glob_match(g, p)))
            .collect();
        let is_root: Vec<bool> = fns.iter().map(|f| file_root[f.file]).collect();
        let trusted: Vec<bool> = fns.iter().map(|f| file_trusted[f.file]).collect();
        if !is_root.contains(&true) {
            continue;
        }

        // Sources: this kind's primitives, attributed to their owning
        // function; trusted files contribute none. Top-level primitives
        // (const initialisers) have no owning function and cannot be
        // called, so they are line-rule territory only.
        let mut sources: Vec<Source> = Vec::new();
        for (idx, f) in files.iter().enumerate() {
            if file_trusted[idx] {
                continue;
            }
            for site in rule.kind.sites(f.toks, f.test_mask) {
                if let Some(fn_id) = owners[idx][site.tok] {
                    sources.push(Source {
                        fn_id,
                        file: idx,
                        line: site.line,
                        label: site.label,
                    });
                }
            }
        }

        for source in &sources {
            let reach = taint::reach_to(source.fn_id, &rev, &trusted);
            // Nearest root wins; ties break on global fn order so the
            // witness is stable across runs.
            let root = (0..fns.len())
                .filter(|&f| is_root[f] && reach.dist[f] != u32::MAX)
                .min_by_key(|&f| (reach.dist[f], f));
            if let Some(root) = root {
                let chain = witness::chain(root, source, &reach, &fns, &paths);
                out.per_file[source.file].push(Violation {
                    rule: rule.id.into(),
                    line: source.line,
                    message: format!("{}: {}", rule.headline, chain),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{scan, test_block_mask};

    fn run(cfg_text: &str, files: &[(&str, &str)]) -> Outcome {
        let cfg = Config::parse(cfg_text).unwrap();
        let scanned: Vec<(Vec<Tok>, Vec<bool>)> = files
            .iter()
            .map(|(_, src)| {
                let toks = scan(src);
                let mask = test_block_mask(&toks);
                (toks, mask)
            })
            .collect();
        let inputs: Vec<FileTokens> = files
            .iter()
            .zip(&scanned)
            .map(|((path, _), (toks, mask))| FileTokens {
                path,
                toks,
                test_mask: mask,
            })
            .collect();
        analyze(&inputs, &cfg)
    }

    fn cfg_d7(scope: &str, exempt: &str) -> String {
        let empty = |id: &str| format!("[rules.{id}]\nscope = []\n");
        format!(
            "[files]\ninclude = [\"**/*.rs\"]\n\
             {}{}{}{}{}{}\
             [rules.D7]\nscope = [\"{scope}\"]\nexempt = [{exempt}]\n\
             [rules.D8]\nscope = []\n[rules.D9]\nscope = []\n",
            empty("D1"),
            empty("D2"),
            empty("D3"),
            empty("D4"),
            empty("D5"),
            empty("D6"),
        )
    }

    #[test]
    fn two_hop_panic_chain_is_reported_at_the_primitive() {
        let out = run(
            &cfg_d7("entry.rs", ""),
            &[
                (
                    "entry.rs",
                    "pub fn ingest_row(s: &str) -> u32 { normalize(s) }\n",
                ),
                ("mid.rs", "pub fn normalize(s: &str) -> u32 { finish(s) }\n"),
                (
                    "deep.rs",
                    "pub fn finish(s: &str) -> u32 { s.parse().unwrap() }\n",
                ),
            ],
        );
        assert!(out.per_file[0].is_empty() && out.per_file[1].is_empty());
        let v = &out.per_file[2][0];
        assert_eq!(v.rule, "D7");
        assert_eq!(v.line, 1);
        assert!(
            v.message.ends_with(
                "entry.rs:1 ingest_row → mid.rs:1 normalize → deep.rs:1 finish → deep.rs:1 unwrap()"
            ),
            "{}",
            v.message
        );
    }

    #[test]
    fn trusted_files_break_the_chain() {
        let out = run(
            &cfg_d7("entry.rs", "\"deep.rs\""),
            &[
                (
                    "entry.rs",
                    "pub fn ingest_row(s: &str) -> u32 { finish(s) }\n",
                ),
                (
                    "deep.rs",
                    "pub fn finish(s: &str) -> u32 { s.parse().unwrap() }\n",
                ),
            ],
        );
        assert!(
            out.per_file.iter().all(Vec::is_empty),
            "trusted file is neither source nor transit"
        );
    }

    #[test]
    fn one_diagnostic_per_primitive_site() {
        let out = run(
            &cfg_d7("entry.rs", ""),
            &[
                (
                    "entry.rs",
                    "pub fn a(s: &str) -> u32 { boom(s) }\npub fn b(s: &str) -> u32 { boom(s) }\n",
                ),
                (
                    "deep.rs",
                    "pub fn boom(s: &str) -> u32 { s.parse().unwrap() }\n",
                ),
            ],
        );
        assert_eq!(
            out.per_file[1].len(),
            1,
            "two roots, one primitive, one diagnostic"
        );
    }

    #[test]
    fn counts_cover_the_whole_workspace() {
        let out = run(
            &cfg_d7("entry.rs", ""),
            &[
                ("entry.rs", "pub fn a() { b(); }\npub fn b() {}\n"),
                ("other.rs", "pub fn c() { b(); }\n"),
            ],
        );
        assert_eq!(out.functions, 3);
        assert_eq!(out.call_edges, 2);
    }
}
