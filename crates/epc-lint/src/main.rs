//! CLI driver: `cargo run -p epc-lint [-- --root <dir>] [--config <file>] [--format text|json]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/IO error.
//! `--format json` prints the `epc-lint-report/1` document instead of the
//! human lines; the exit code is the same either way, so CI can both
//! gate on it and diff the report against a checked-in expectation.

use epc_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("epc-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

enum Format {
    Text,
    Json,
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?)
            }
            "--config" => {
                config_path = Some(PathBuf::from(
                    args.next().ok_or("--config needs a file argument")?,
                ))
            }
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got `{}`",
                            other.unwrap_or("nothing")
                        ))
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: epc-lint [--root <repo-root>] [--config <lint.toml>] [--format text|json]\n\n\
                     Audits the workspace sources in two phases: per-line rules\n\
                     D1-D6, then call-graph taint rules D7-D9 (transitive panic,\n\
                     wall-clock, and entropy reachability with witness chains),\n\
                     scoped by lint.toml. Exit 0 when clean, 1 on violations,\n\
                     2 on configuration errors."
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let cfg = Config::parse(&text)?;

    let report = epc_lint::lint_root(&root, &cfg)?;
    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            for a in &report.allows {
                println!(
                    "lint:allow {}:{} [{}] — {} ({} suppressed)",
                    a.path,
                    a.line,
                    a.rules.join(", "),
                    a.reason,
                    a.used
                );
            }
            println!("{}", report.summary());
        }
    }
    Ok(report.clean())
}
