//! CLI driver: `cargo run -p epc-lint [-- --root <dir>] [--config <file>]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/IO error.

use epc_lint::config::Config;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("epc-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?)
            }
            "--config" => {
                config_path = Some(PathBuf::from(
                    args.next().ok_or("--config needs a file argument")?,
                ))
            }
            "--help" | "-h" => {
                println!(
                    "usage: epc-lint [--root <repo-root>] [--config <lint.toml>]\n\n\
                     Audits the workspace sources against the determinism and\n\
                     panic-surface rules scoped in lint.toml. Exit 0 when clean,\n\
                     1 on violations, 2 on configuration errors."
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
    let cfg = Config::parse(&text)?;

    let report = epc_lint::lint_root(&root, &cfg)?;
    for d in &report.diagnostics {
        println!("{d}");
    }
    for a in &report.allows {
        println!(
            "lint:allow {}:{} [{}] — {} ({} suppressed)",
            a.path,
            a.line,
            a.rules.join(", "),
            a.reason,
            a.used
        );
    }
    println!("{}", report.summary());
    Ok(report.clean())
}
