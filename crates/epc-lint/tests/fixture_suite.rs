//! Fixture suite: exact `rule → (file, line)` diagnostics on the known-bad
//! tree, a clean exit on the good tree, and scope-glob resolution per the
//! documented semantics.

use epc_lint::config::Config;
use epc_lint::lint_root;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn config(name: &str) -> Config {
    let text = std::fs::read_to_string(fixtures().join(name)).unwrap();
    Config::parse(&text).unwrap()
}

#[test]
fn bad_fixtures_produce_exact_diagnostics() {
    let report = lint_root(&fixtures().join("bad"), &config("lint_all.toml")).unwrap();
    let got: Vec<(String, u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.clone()))
        .collect();
    let expect = |p: &str, l: u32, r: &str| (p.to_string(), l, r.to_string());
    assert_eq!(
        got,
        vec![
            expect("artifact_write.rs", 6, "D6"),
            expect("artifact_write.rs", 7, "D6"),
            expect("artifact_write.rs", 8, "D6"),
            expect("bad_allow.rs", 2, "allow"),
            expect("bad_allow.rs", 4, "allow"),
            expect("clock.rs", 5, "D2"),
            expect("clock.rs", 6, "D2"),
            expect("hash_iter.rs", 2, "D3"),
            expect("hash_iter.rs", 5, "D3"),
            expect("hash_iter.rs", 5, "D3"),
            expect("ingest.rs", 3, "D4"),
            expect("ingest.rs", 4, "D4"),
            expect("ingest.rs", 6, "D4"),
            expect("ingest.rs", 8, "D4"),
            expect("ingest.rs", 14, "D4"),
            expect("ingest.rs", 14, "D4"),
            expect("printy.rs", 3, "D5"),
            expect("printy.rs", 4, "D5"),
            expect("printy.rs", 5, "D5"),
            expect("rng.rs", 5, "D1"),
            expect("rng.rs", 6, "D1"),
            expect("rng.rs", 7, "D1"),
        ],
    );
    assert!(!report.clean());
    assert_eq!(report.files_scanned, 7);
}

#[test]
fn diagnostics_render_as_path_line_rule() {
    let report = lint_root(&fixtures().join("bad"), &config("lint_all.toml")).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        rendered.iter().any(|l| l.starts_with("rng.rs:5: [D1] ")),
        "{rendered:?}"
    );
    assert!(
        rendered.iter().any(|l| l.starts_with("ingest.rs:8: [D4] ")),
        "{rendered:?}"
    );
}

#[test]
fn good_fixtures_are_clean_and_allows_are_counted() {
    let report = lint_root(&fixtures().join("good"), &config("lint_all.toml")).unwrap();
    assert!(report.clean(), "unexpected: {:?}", report.diagnostics);
    assert_eq!(report.files_scanned, 3);
    // Both directives in allowed.rs carry a reason and fired once each.
    assert_eq!(report.allows.len(), 2);
    assert_eq!(report.suppressed, 2);
    for a in &report.allows {
        assert_eq!(a.path, "allowed.rs");
        assert!(!a.reason.is_empty());
        assert_eq!(a.used, 1);
    }
    assert_eq!(report.allows[0].rules, vec!["D3"]);
    assert_eq!(report.allows[1].rules, vec!["D4"]);
}

#[test]
fn scope_globs_resolve_as_documented() {
    // Root is the fixture dir itself: paths are `bad/<file>.rs`, so the
    // scoped config's globs exercise exact-path, `*`, `**`, and exempt.
    let report = lint_root(&fixtures(), &config("lint_scoped.toml")).unwrap();
    let count = |rule: &str| report.diagnostics.iter().filter(|d| d.rule == rule).count();
    // D1 scoped to bad/rng.rs alone: its three hits survive.
    assert_eq!(count("D1"), 3);
    assert!(report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D1")
        .all(|d| d.path == "bad/rng.rs"));
    // D2 scoped `**` but exempted from bad/clock.rs — the only file that
    // would hit — so nothing fires.
    assert_eq!(count("D2"), 0);
    // D3's scope matches nothing under bad/.
    assert_eq!(count("D3"), 0);
    // D4 scoped to bad/ingest.rs: all six hits.
    assert_eq!(count("D4"), 6);
    // D5 scoped `bad/*.rs` minus its only offender.
    assert_eq!(count("D5"), 0);
    // D6's scope matches nothing under bad/.
    assert_eq!(count("D6"), 0);
    // Malformed allow directives fire regardless of rule scoping.
    assert_eq!(count("allow"), 2);
    assert_eq!(report.diagnostics.len(), 11);
}

#[test]
fn the_repo_itself_is_clean() {
    // The CI gate in miniature: the workspace this crate ships in must
    // pass its own auditor. Walk up from the manifest dir to the repo
    // root and run the checked-in lint.toml.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&text).unwrap();
    let report = lint_root(&root, &cfg).unwrap();
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        report.clean(),
        "repo violates its own lint gate:\n{}",
        rendered.join("\n")
    );
    // Every in-tree allow carries a reason (parse() enforces it; assert
    // the reports surface them).
    assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
}
