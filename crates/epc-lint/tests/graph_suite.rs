//! Call-graph rule suite: exact witness chains on the graph fixture
//! tree, trusted-file and allowlist interactions, scanner edge-case
//! trees, and the repo-wide D7–D9 gate.

use epc_lint::config::Config;
use epc_lint::lint_root;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn config(name: &str) -> Config {
    let text = std::fs::read_to_string(fixtures().join(name)).unwrap();
    Config::parse(&text).unwrap()
}

#[test]
fn graph_fixtures_produce_exact_witness_chains() {
    let report = lint_root(&fixtures().join("graph"), &config("graph/lint_graph.toml")).unwrap();
    let got: Vec<(String, u32, String, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.clone(), d.message.clone()))
        .collect();
    assert_eq!(got.len(), 3, "{got:#?}");

    // Sorted by (path, line, rule): D9, D8, D7.
    assert_eq!(
        (&got[0].0[..], got[0].1, &got[0].2[..]),
        ("methods.rs", 16, "D9")
    );
    assert_eq!(
        got[0].3,
        "OS-entropy RNG reachable from result-producing code: \
         results.rs:3 produce → methods.rs:15 Sampler::refresh → methods.rs:16 thread_rng",
        "ambiguous method call still reaches the entropy impl"
    );

    assert_eq!(
        (&got[1].0[..], got[1].1, &got[1].2[..]),
        ("middle.rs", 8, "D8")
    );
    assert_eq!(
        got[1].3,
        "wall-clock read reachable from hash-gated artifact code: \
         render.rs:3 render_artifact → middle.rs:7 stamp → middle.rs:8 SystemTime::now"
    );

    assert_eq!(
        (&got[2].0[..], got[2].1, &got[2].2[..]),
        ("util.rs", 4, "D7")
    );
    assert_eq!(
        got[2].3,
        "may-panic call path reachable from ingest entry point: \
         entry.rs:3 ingest_row → middle.rs:3 normalize → util.rs:3 widen → util.rs:4 unwrap()",
        "two-hop transitive chain, primitive last"
    );
}

#[test]
fn trusted_files_are_neither_sources_nor_transit() {
    let report = lint_root(&fixtures().join("graph"), &config("graph/lint_graph.toml")).unwrap();
    // trusted.rs holds an unwrap reachable from entry.rs::ingest_trusted,
    // but the file is exempt for D7 — no diagnostic may anchor there.
    assert!(
        report.diagnostics.iter().all(|d| d.path != "trusted.rs"),
        "{:#?}",
        report.diagnostics
    );
}

#[test]
fn source_line_allow_suppresses_the_transitive_chain() {
    let report = lint_root(&fixtures().join("graph"), &config("graph/lint_graph.toml")).unwrap();
    // util.rs:9 `expect(` is reachable from entry.rs::ingest_checked, but
    // the lint:allow(D7) on the line above the primitive covers it.
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.line != 9 || d.path != "util.rs"),
        "{:#?}",
        report.diagnostics
    );
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].path, "util.rs");
    assert_eq!(report.allows[0].rules, vec!["D7"]);
    assert_eq!(report.allows[0].used, 1);
}

#[test]
fn graph_counts_are_reported() {
    let report = lint_root(&fixtures().join("graph"), &config("graph/lint_graph.toml")).unwrap();
    assert_eq!(report.files_scanned, 7);
    // 12 fns: 3 entry + 2 middle + 2 util + 1 trusted + 1 render +
    // 1 results + 2 methods refreshes.
    assert_eq!(report.functions, 12);
    assert!(report.call_edges >= 5, "got {}", report.call_edges);
}

#[test]
fn nested_raw_strings_stay_masked_with_correct_lines() {
    let report = lint_root(&fixtures().join("edge"), &config("lint_all.toml")).unwrap();
    // raw.rs mentions thread_rng/OsRng inside an r##"…"## literal — no D1
    // may fire — and the real clock read after it must keep its true line.
    let got: Vec<(String, u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule.clone()))
        .collect();
    assert_eq!(got, vec![("raw.rs".to_string(), 11, "D2".to_string())]);
}

#[test]
fn allow_inside_block_comment_suppresses_its_neighbour() {
    let report = lint_root(&fixtures().join("edge"), &config("lint_all.toml")).unwrap();
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.path != "block_allow.rs"));
    let allow = report
        .allows
        .iter()
        .find(|a| a.path == "block_allow.rs")
        .expect("directive surfaced");
    assert_eq!(allow.line, 6, "anchored to the directive's own line");
    assert_eq!(allow.used, 1);
}

#[test]
fn the_repo_is_clean_under_the_graph_rules() {
    // Companion to fixture_suite::the_repo_itself_is_clean, asserting the
    // graph pass actually ran over the workspace (non-trivial graph) and
    // D7–D9 hold with every exemption carrying a reason.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap()
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Config::parse(&text).unwrap();
    for id in ["D7", "D8", "D9"] {
        let rule = cfg
            .rule(id)
            .unwrap_or_else(|| panic!("lint.toml lacks {id}"));
        assert!(!rule.scope.is_empty(), "{id} must have roots in lint.toml");
    }
    let report = lint_root(&root, &cfg).unwrap();
    let graph_hits: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| ["D7", "D8", "D9"].contains(&d.rule.as_str()))
        .map(|d| d.to_string())
        .collect();
    assert!(
        graph_hits.is_empty(),
        "repo violates its own graph rules:\n{}",
        graph_hits.join("\n")
    );
    assert!(report.functions > 100, "graph saw {} fns", report.functions);
    assert!(
        report.call_edges > 100,
        "graph saw {} edges",
        report.call_edges
    );
}
