//! CLI contract: exit codes and `--format json` output shape, exercised
//! against the built binary exactly as ci.sh invokes it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epc-lint"))
        .args(args)
        .output()
        .expect("spawn epc-lint")
}

#[test]
fn violating_tree_exits_1_in_both_formats() {
    let root = fixtures().join("graph");
    let cfg = fixtures().join("graph/lint_graph.toml");
    for format in ["text", "json"] {
        let out = run(&[
            "--root",
            root.to_str().unwrap(),
            "--config",
            cfg.to_str().unwrap(),
            "--format",
            format,
        ]);
        assert_eq!(out.status.code(), Some(1), "format {format}");
    }
}

#[test]
fn json_report_carries_the_witness_chain() {
    let out = run(&[
        "--root",
        fixtures().join("graph").to_str().unwrap(),
        "--config",
        fixtures().join("graph/lint_graph.toml").to_str().unwrap(),
        "--format",
        "json",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.starts_with("{\n  \"schema\": \"epc-lint-report/1\","),
        "{stdout}"
    );
    assert!(stdout.contains("\"rule\": \"D7\""), "{stdout}");
    assert!(
        stdout.contains(
            "entry.rs:3 ingest_row → middle.rs:3 normalize → util.rs:3 widen → util.rs:4 unwrap()"
        ),
        "{stdout}"
    );
    assert!(stdout.contains("\"files_scanned\": 7,"), "{stdout}");
}

#[test]
fn clean_tree_exits_0_with_empty_json_diagnostics() {
    let out = run(&[
        "--root",
        fixtures().join("good").to_str().unwrap(),
        "--config",
        fixtures().join("lint_all.toml").to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"diagnostics\": [],"), "{stdout}");
}

#[test]
fn bad_format_value_exits_2() {
    let out = run(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--format"), "{stderr}");
}
