//! D9 root: result-producing code.

pub fn produce(sampler: Sampler) -> u32 {
    sampler.refresh()
}
