//! D8 root: code on the hash-gated artifact path.

pub fn render_artifact(v: &[u32]) -> String {
    stamp(v.len())
}
