//! The panic primitives the D7 chains end at.

pub fn widen(s: &str) -> u32 {
    s.parse().unwrap()
}

pub fn audited(s: &str) -> u32 {
    // lint:allow(D7): fixture models a reviewed primitive source line
    s.parse().expect("fixture")
}
