//! Trusted for D7 (exempt): neither a taint source nor a transit link.

pub fn checked_widen(s: &str) -> u32 {
    s.parse().unwrap()
}
