//! Transit code: not a root, not trusted — taint flows through.

pub fn normalize(s: &str) -> u32 {
    widen(s) + 1
}

pub fn stamp(n: usize) -> String {
    let t = std::time::SystemTime::now();
    format!("{n}@{t:?}")
}
