//! Method ambiguity: two impls share `refresh`; the conservative graph
//! keeps an edge to both, so the entropy in `Sampler::refresh` is reached.

pub struct Deterministic;

impl Deterministic {
    pub fn refresh(&self) -> u32 {
        7
    }
}

pub struct Sampler;

impl Sampler {
    pub fn refresh(&self) -> u32 {
        let _rng = rand::thread_rng();
        0
    }
}
