//! D7 roots: every function here is an ingest entry point.

pub fn ingest_row(s: &str) -> u32 {
    normalize(s)
}

pub fn ingest_checked(s: &str) -> u32 {
    audited(s)
}

pub fn ingest_trusted(s: &str) -> u32 {
    checked_widen(s)
}
