//! A directive deep inside a multi-line block comment still applies.

pub fn tally() -> usize {
    /* Display order is irrelevant here: the counts are summed, never
       iterated for output.
       lint:allow(D3): the map is reduced to a scalar before reporting */
    let m = std::collections::HashMap::<u32, u32>::new();
    m.len()
}
