//! Nested raw strings must mask their content and keep line numbers.

pub fn doc() -> &'static str {
    r##"
    thread_rng() and OsRng inside a raw string are prose, not code;
    even "quotes" and r"inner raw strings" stay masked.
    "##
}

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
