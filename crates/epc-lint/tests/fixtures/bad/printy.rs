// Fixture: D5 — terminal output from a library.
pub fn noisy(x: u32) -> u32 {
    println!("x = {x}");
    let y = dbg!(x + 1);
    eprintln!("done");
    y
}
