// Fixture: malformed directives are violations wherever they appear.
// lint:allow(D3)
pub fn f() {}
// lint:allow(D12): not a rule
