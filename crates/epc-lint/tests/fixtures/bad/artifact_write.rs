//! Bad: artifacts written directly — a crash mid-write leaves torn files.
use std::fs;
use std::fs::File;

fn save(dir: &std::path::Path, html: &str) -> std::io::Result<()> {
    fs::write(dir.join("dashboard.html"), html)?;
    let _f = File::create(dir.join("rules.txt"))?;
    std::fs::write(dir.join("notes.txt"), "torn")?;
    Ok(())
}
