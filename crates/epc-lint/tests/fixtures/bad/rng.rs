// Fixture: D1 — entropy-seeded RNG constructions.
use rand::rngs::StdRng;

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    let other = StdRng::from_entropy();
    let os = OsRng;
    0
}
