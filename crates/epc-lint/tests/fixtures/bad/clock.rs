// Fixture: D2 — wall-clock reads.
use std::time::{Instant, SystemTime};

pub fn timing() -> u32 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    0
}
