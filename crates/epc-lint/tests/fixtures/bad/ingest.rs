// Fixture: D4 — panic surface, plus bracket forms that must NOT flag.
pub fn parse(parts: &[&str], i: usize) -> u32 {
    let first = parts.first().unwrap();
    let second = parts.get(1).expect("second field");
    if first.is_empty() {
        panic!("empty field");
    }
    let byte = first.as_bytes()[0];
    let all = &parts[..];
    let arr = [1u32, 2];
    let v = vec![first.len(), second.len()];
    match all {
        [one] => one.len() as u32,
        _ => (byte as u32) + arr[i] + (v[0] as u32),
    }
}
