// Fixture: mentions in comments, strings, and test code never fire.
// Prose may say thread_rng, Instant::now, HashMap, unwrap, println!.

pub fn describe() -> &'static str {
    "call sites like thread_rng() or SystemTime::now() in strings are data"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.values().next().copied().unwrap(), 2);
        println!("tests may print");
    }
}
