// Fixture: reasoned, scoped escape hatches suppress diagnostics.
use std::collections::HashMap; // lint:allow(D3): fixture — counts are sorted before display

pub fn pick(v: &[u32], i: usize) -> u32 {
    // lint:allow(D4): fixture — i is validated by the caller
    v[i]
}
