//! The citizen stakeholder (§2.2.1): "citizens may want to discover areas
//! of the city with more performing buildings, to buy a flat that performs
//! well in terms of energy efficiency."
//!
//! Demonstrates the query engine directly: per-neighbourhood EPH ranking,
//! drill-down into the best neighbourhood, and the citizen dashboard.
//!
//! ```sh
//! cargo run --release --example citizen_explorer
//! ```
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_query::aggregate::{group_by, AggFn};
use epc_query::predicate::Predicate;
use epc_query::query::Query;
use epc_query::Stakeholder;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::config::IndiceConfig;
use indice::engine::Indice;
use std::fs;
use std::path::Path;

fn main() {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 8_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut collection, &NoiseConfig::default());

    let engine = Indice::from_collection(collection, IndiceConfig::default());
    let output = engine.run(Stakeholder::Citizen).expect("pipeline runs");
    let cleaned = &output.preprocess.dataset;

    // --- Where are the efficient buildings? ---
    println!("== Average EPH by neighbourhood (best first) ==");
    let mut rows = group_by(
        cleaned,
        wk::NEIGHBOURHOOD,
        wk::EPH,
        &[AggFn::Mean, AggFn::Count],
    )
    .expect("aggregation");
    rows.sort_by(|a, b| {
        a.values[0]
            .unwrap_or(f64::INFINITY)
            .partial_cmp(&b.values[0].unwrap_or(f64::INFINITY))
            .unwrap()
    });
    for r in rows.iter().take(8) {
        println!(
            "{:<24} mean EPH {:>7.1} kWh/m2yr over {:>4} units",
            r.group,
            r.values[0].unwrap_or(f64::NAN),
            r.values[1].unwrap_or(0.0)
        );
    }
    let best = rows
        .first()
        .expect("at least one neighbourhood")
        .group
        .clone();

    // --- Drill-down: efficient flats in the best neighbourhood ---
    println!("\n== Class A/B units in {best} ==");
    let query = Query::filtered(
        Predicate::eq(wk::NEIGHBOURHOOD, &best).and(Predicate::CatIn {
            attr: wk::EPC_CLASS.into(),
            values: vec!["A".into(), "B".into()],
        }),
    )
    .with_limit(5);
    let hits = query.run(cleaned).expect("query runs");
    let s = hits.schema();
    let id_id = s.require(wk::CERTIFICATE_ID).unwrap();
    let addr_id = s.require(wk::ADDRESS).unwrap();
    let eph_id = s.require(wk::EPH).unwrap();
    let class_id = s.require(wk::EPC_CLASS).unwrap();
    for row in hits.rows() {
        println!(
            "{:<12} {:<32} class {:<2} EPH {:>6.1}",
            row.cat(id_id).unwrap_or("?"),
            row.cat(addr_id).unwrap_or("?"),
            row.cat(class_id).unwrap_or("?"),
            row.num(eph_id).unwrap_or(f64::NAN)
        );
    }
    println!(
        "(total matching: {})",
        Query::filtered(
            Predicate::eq(wk::NEIGHBOURHOOD, &best).and(Predicate::CatIn {
                attr: wk::EPC_CLASS.into(),
                values: vec!["A".into(), "B".into()],
            })
        )
        .count(cleaned)
        .unwrap()
    );

    // --- The citizen dashboard ---
    let dir = Path::new("target/indice-artifacts/citizen");
    fs::create_dir_all(dir).expect("create artifact dir");
    fs::write(dir.join("dashboard.html"), output.dashboard.render_html()).expect("write dashboard");
    for (name, content) in &output.artifacts {
        fs::write(dir.join(name), content).expect("write artifact");
    }
    println!("\ncitizen dashboard written to {}", dir.display());
}
