//! The paper's case study (§3): the public-administration stakeholder
//! analysing E.1.1 permanent residences of a Turin-like city at the full
//! ~25 000-certificate scale.
//!
//! Regenerates the content of all three result figures:
//! * Figure 2 — choropleth + scatter maps (unit/neighbourhood zoom) and
//!   cluster-marker maps (district/city zoom);
//! * Figure 3 — the grayscale correlation plot matrix of the five
//!   thermo-physical features;
//! * Figure 4 — the district-level dashboard (cluster-marker map of the
//!   K-means result, EPH distributions overall and per cluster,
//!   association-rule table).
//!
//! ```sh
//! cargo run --release --example public_administration
//! ```
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_query::Stakeholder;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use epc_viz::rulestable::RulesTable;
use indice::config::IndiceConfig;
use indice::dashboard::{drilldown_series, figure2_maps};
use indice::engine::Indice;
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("target/indice-artifacts/public_administration");
    fs::create_dir_all(dir).expect("create artifact dir");

    // The paper's collection: ~25 000 EPCs, 132 attributes, issued
    // 2016-2018 for a major north-west Italian city.
    println!("generating the 25 000-certificate collection…");
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 25_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut collection, &NoiseConfig::default());

    let engine = Indice::from_collection(collection, IndiceConfig::default());
    println!("running the INDICE pipeline (PA stakeholder, E.1.1 only)…");
    let output = engine
        .run(Stakeholder::PublicAdministration)
        .expect("pipeline runs");

    // --- §2.1 report ---
    let pre = &output.preprocess;
    println!("\n== Pre-processing (Section 2.1) ==");
    println!(
        "addresses: {} total, {} resolved by reference map ({} exact), {} by geocoder, {} unresolved",
        pre.cleaning.total,
        pre.cleaning.by_reference,
        pre.cleaning.exact_matches,
        pre.cleaning.by_geocoder,
        pre.cleaning.unresolved
    );
    println!(
        "fields repaired: {} streets, {} ZIP codes, {} coordinate pairs; geocoder requests: {}",
        pre.cleaning.streets_fixed,
        pre.cleaning.zips_fixed,
        pre.cleaning.coords_fixed,
        pre.cleaning.geocoder_requests
    );
    for (attr, rows) in &pre.univariate_flagged {
        println!("univariate outliers on {attr}: {}", rows.len());
    }
    println!(
        "multivariate (DBSCAN {:?}): {} flagged; total removed {}",
        pre.dbscan_params,
        pre.multivariate_flagged.len(),
        pre.removed_rows.len()
    );

    // --- Figure 3: correlation matrix ---
    println!("\n== Correlation check (Figure 3) ==");
    let m = &output.analytics.correlation;
    print!("{:>14}", "");
    for name in &m.names {
        print!("{name:>14}");
    }
    println!();
    for i in 0..m.len() {
        print!("{:>14}", m.names[i]);
        for j in 0..m.len() {
            print!("{:>14.3}", m.get(i, j));
        }
        println!();
    }
    println!(
        "eligible for clustering (no |rho| >= 0.8): {}",
        output.analytics.eligible
    );

    // --- §2.2: clustering & rules ---
    println!("\n== Analytics (Section 2.2) ==");
    println!("SSE curve: {:?}", output.analytics.sse_curve);
    println!("chosen K (elbow): {}", output.analytics.chosen_k);
    println!(
        "{:<8} {:>7} {:>10}   centroid (S/V, Uo, Uw, Sr, ETAH)",
        "cluster", "size", "mean EPH"
    );
    for s in &output.analytics.cluster_summaries {
        let c: Vec<String> = s.centroid.iter().map(|v| format!("{v:.2}")).collect();
        println!(
            "{:<8} {:>7} {:>10.1}   [{}]",
            s.cluster,
            s.size,
            s.mean_response.unwrap_or(f64::NAN),
            c.join(", ")
        );
    }
    let table = RulesTable {
        title: "Association rules (EPH response, footnote-4 bins)".into(),
        top_k: 12,
    };
    println!("\n{}", table.render_text(&output.analytics.rules));

    // --- Figure 2: the four-map series on Uo / Uw ---
    let fig2 = figure2_maps(&pre.dataset, engine.hierarchy(), wk::U_WINDOWS)
        .expect("figure 2 maps render");
    for (name, svg) in &fig2 {
        fs::write(dir.join(name), svg).expect("write figure 2 map");
    }
    println!(
        "figure 2 maps written: {:?}",
        fig2.keys().collect::<Vec<_>>()
    );

    // --- Figure 4: the dashboard + artifacts ---
    fs::write(
        dir.join("fig4_dashboard.html"),
        output.dashboard.render_html(),
    )
    .expect("write dashboard");
    for (name, content) in &output.artifacts {
        fs::write(dir.join(name), content).expect("write artifact");
    }
    println!(
        "figure 4 dashboard + {} artifacts written to {}",
        output.artifacts.len(),
        dir.display()
    );

    // --- The zoom drill-down series: one cross-linked dashboard per
    //     granularity (the paper's interactive zoom navigation) ---
    let pages = drilldown_series(
        &pre.dataset,
        engine.hierarchy(),
        &output.analytics,
        Stakeholder::PublicAdministration,
        12,
    )
    .expect("drill-down series renders");
    for (name, html) in &pages {
        fs::write(dir.join(name), html).expect("write drill-down page");
    }
    println!(
        "drill-down series written ({}); open dashboard_city.html and zoom in",
        pages.len()
    );
}
