//! The energy-scientist stakeholder: benchmarking analyses with the three
//! univariate outlier methods, the expert-configuration feedback loop of
//! §2.1.2, and a manual K sweep.
//!
//! ```sh
//! cargo run --release --example energy_scientist
//! ```
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_query::Stakeholder;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::config::{AnalyticsConfig, IndiceConfig, KSelection};
use indice::engine::Indice;
use indice::outliers::UnivariateMethod;
use std::fs;
use std::path::Path;

fn main() {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 8_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(
        &mut collection,
        &NoiseConfig {
            univariate_outlier_rate: 0.02,
            ..NoiseConfig::default()
        },
    );
    let truth_outliers: std::collections::BTreeSet<usize> =
        collection.truth.injected_outliers.iter().copied().collect();

    // --- Compare the three univariate methods (§2.1.2) over the three
    //     corrupted attributes (Uw, Uo, EPH), union of per-attribute hits ---
    println!(
        "== Outlier methods over Uw/Uo/EPH ({} injected) ==",
        truth_outliers.len()
    );
    let s = collection.dataset.schema();
    let watched = [wk::U_WINDOWS, wk::U_OPAQUE, wk::EPH];
    let methods = [
        UnivariateMethod::default_boxplot(),
        UnivariateMethod::default_gesd_for(collection.dataset.n_rows()),
        UnivariateMethod::default_mad(),
    ];
    let mut best: Option<(UnivariateMethod, f64)> = None;
    for method in &methods {
        let mut hits: std::collections::BTreeSet<usize> = Default::default();
        for attr in watched {
            let id = s.require(attr).unwrap();
            let (values, rows) = collection.dataset.numeric_with_rows(id);
            hits.extend(method.detect(&values).into_iter().map(|i| rows[i]));
        }
        let tp = hits.intersection(&truth_outliers).count();
        let precision = tp as f64 / hits.len().max(1) as f64;
        let recall = tp as f64 / truth_outliers.len().max(1) as f64;
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        println!(
            "{:<10} flagged {:>5}  precision {:.2}  recall {:.2}  F1 {:.2}",
            method.name(),
            hits.len(),
            precision,
            recall,
            f1
        );
        if best.as_ref().map(|(_, b)| f1 > *b).unwrap_or(true) {
            best = Some((method.clone(), f1));
        }
    }
    let (best_method, best_f1) = best.unwrap();
    println!("expert picks: {} (F1 {best_f1:.2})", best_method.name());

    // --- Record the expert choice; non-experts inherit it (§2.1.2) ---
    let engine = Indice::from_collection(collection, IndiceConfig::default());
    engine.record_outlier_choice(
        Stakeholder::EnergyScientist,
        wk::U_WINDOWS,
        best_method.clone(),
    );
    println!(
        "suggested default for non-experts on u_windows: {:?}",
        engine
            .suggested_outlier_method(wk::U_WINDOWS)
            .map(|m| m.name())
    );

    // --- Manual K sweep (the scientist distrusts automatic elbows) ---
    println!("\n== K sweep ==");
    for k in [3, 5, 7] {
        let cfg = IndiceConfig {
            analytics: AnalyticsConfig {
                k: KSelection::Fixed(k),
                ..AnalyticsConfig::default()
            },
            ..IndiceConfig::default()
        };
        let out = indice::analytics::analyze(engine.dataset(), &cfg).expect("analytics");
        println!(
            "K = {k}: SSE = {:.1}, cluster sizes = {:?}",
            out.kmeans.sse,
            out.kmeans.cluster_sizes()
        );
    }

    // --- Full scientist dashboard ---
    let output = engine
        .run(Stakeholder::EnergyScientist)
        .expect("pipeline runs");
    println!(
        "\nscientist run: K = {}, {} rules, {} panels",
        output.analytics.chosen_k,
        output.analytics.rules.len(),
        output.dashboard.n_panels()
    );
    let dir = Path::new("target/indice-artifacts/energy_scientist");
    fs::create_dir_all(dir).expect("create artifact dir");
    fs::write(dir.join("dashboard.html"), output.dashboard.render_html()).expect("write dashboard");
    println!("dashboard written to {}", dir.display());
}
