//! Quickstart: generate a synthetic EPC collection, run the full INDICE
//! pipeline for the public-administration stakeholder, and write the
//! dashboard to disk.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_query::Stakeholder;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};
use indice::config::IndiceConfig;
use indice::engine::Indice;
use std::fs;
use std::path::Path;

fn main() {
    // 1. A Turin-like synthetic collection (5 000 certificates keeps the
    //    quickstart fast; the paper's scale is 25 000 — see the
    //    public_administration example and the benches).
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 5_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(&mut collection, &NoiseConfig::default());
    println!(
        "generated {} certificates over {} streets ({} districts)",
        collection.dataset.n_rows(),
        collection.city.street_map.n_streets(),
        collection.city.hierarchy.districts.len(),
    );

    // 2. Run the three-stage pipeline.
    let engine = Indice::from_collection(collection, IndiceConfig::default());
    let output = engine
        .run(Stakeholder::PublicAdministration)
        .expect("pipeline runs");

    // 3. Inspect what happened.
    let pre = &output.preprocess;
    println!(
        "cleaning: {}/{} resolved by reference ({} exact), {} by geocoder, {} unresolved",
        pre.cleaning.by_reference,
        pre.cleaning.total,
        pre.cleaning.exact_matches,
        pre.cleaning.by_geocoder,
        pre.cleaning.unresolved,
    );
    println!(
        "outliers removed: {} ({} multivariate); rows kept: {}",
        pre.removed_rows.len(),
        pre.multivariate_flagged.len(),
        pre.dataset.n_rows(),
    );
    println!(
        "clustering: K = {} (elbow), SSE curve = {:?}",
        output.analytics.chosen_k,
        output
            .analytics
            .sse_curve
            .iter()
            .map(|(k, s)| (*k, (s * 10.0).round() / 10.0))
            .collect::<Vec<_>>(),
    );
    println!("association rules mined: {}", output.analytics.rules.len());
    if let Some(best) = output.analytics.rules.first() {
        println!(
            "  best rule: {}  (conf {:.2}, lift {:.2})",
            best.display(),
            best.confidence,
            best.lift
        );
    }

    // 4. Write the dashboard and its artifacts.
    let dir = Path::new("target/indice-artifacts/quickstart");
    fs::create_dir_all(dir).expect("create artifact dir");
    fs::write(dir.join("dashboard.html"), output.dashboard.render_html()).expect("write dashboard");
    for (name, content) in &output.artifacts {
        fs::write(dir.join(name), content).expect("write artifact");
    }
    println!(
        "wrote dashboard.html and {} artifacts to {}",
        output.artifacts.len(),
        dir.display()
    );
}
