//! Deep dive into the §2.1.1 address-cleaning algorithm: accuracy against
//! ground truth as the similarity threshold φ sweeps, and the effect of the
//! geocoder quota.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_geo::address::Address;
use epc_geo::cleaning::{clean_addresses, AddressQuery, CleaningConfig};
use epc_geo::geocode::{QuotaGeocoder, SimulatedGeocoder};
use epc_geo::point::GeoPoint;
use epc_model::wellknown as wk;
use epc_synth::{EpcGenerator, NoiseConfig, SynthConfig};

fn main() {
    let mut collection = EpcGenerator::new(SynthConfig {
        n_records: 6_000,
        ..SynthConfig::default()
    })
    .generate();
    epc_synth::noise::apply_noise(
        &mut collection,
        &NoiseConfig {
            typo_rate: 0.25,
            abbreviation_rate: 0.15,
            zip_missing_rate: 0.10,
            coord_missing_rate: 0.08,
            coord_wrong_rate: 0.05,
            ..NoiseConfig::default()
        },
    );

    // Build the cleaning queries straight from the (noisy) dataset.
    let s = collection.dataset.schema();
    let addr_id = s.require(wk::ADDRESS).unwrap();
    let hn_id = s.require(wk::HOUSE_NUMBER).unwrap();
    let zip_id = s.require(wk::ZIP_CODE).unwrap();
    let lat_id = s.require(wk::LATITUDE).unwrap();
    let lon_id = s.require(wk::LONGITUDE).unwrap();
    let queries: Vec<AddressQuery> = (0..collection.dataset.n_rows())
        .map(|row| AddressQuery {
            id: row,
            address: Address {
                street: collection
                    .dataset
                    .cat(row, addr_id)
                    .unwrap_or("")
                    .to_owned(),
                house_number: collection.dataset.cat(row, hn_id).map(str::to_owned),
                zip: collection.dataset.cat(row, zip_id).map(str::to_owned),
            },
            point: match (
                collection.dataset.num(row, lat_id),
                collection.dataset.num(row, lon_id),
            ) {
                (Some(lat), Some(lon)) => Some(GeoPoint { lat, lon }),
                _ => None,
            },
        })
        .collect();

    let reference = &collection.city.street_map;
    let truth = &collection.truth;

    // --- φ sweep, no geocoder (the local-only ablation) ---
    println!("== phi sweep (reference map only) ==");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10}",
        "phi", "resolved", "unresolved", "street-acc", "zip-acc"
    );
    for phi in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let cfg = CleaningConfig {
            phi,
            ..CleaningConfig::default()
        };
        let (cleaned, report) = clean_addresses(&queries, reference, None, &cfg);
        let (street_acc, zip_acc) = accuracy(&cleaned, truth);
        println!(
            "{phi:>6.2} {:>10} {:>10} {:>11.1}% {:>9.1}%",
            report.by_reference,
            report.unresolved,
            street_acc * 100.0,
            zip_acc * 100.0
        );
    }

    // --- Geocoder quota sweep at the default φ ---
    println!("\n== geocoder quota sweep (phi = 0.85) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "quota", "by-ref", "by-geo", "unresolved", "street-acc"
    );
    for quota in [0usize, 100, 500, 2_000, 10_000] {
        let cfg = CleaningConfig::default();
        let geocoder =
            QuotaGeocoder::new(SimulatedGeocoder::new(reference.clone(), 0.55, 0.02), quota);
        let geo: Option<&dyn epc_geo::geocode::Geocoder> =
            if quota > 0 { Some(&geocoder) } else { None };
        let (cleaned, report) = clean_addresses(&queries, reference, geo, &cfg);
        let (street_acc, _) = accuracy(&cleaned, truth);
        println!(
            "{quota:>8} {:>10} {:>10} {:>10} {:>11.1}%",
            report.by_reference,
            report.by_geocoder,
            report.unresolved,
            street_acc * 100.0
        );
    }
}

/// Fraction of records whose repaired street / ZIP matches the ground
/// truth.
fn accuracy(
    cleaned: &[epc_geo::cleaning::CleanedAddress],
    truth: &epc_synth::epcgen::GroundTruth,
) -> (f64, f64) {
    let mut street_ok = 0usize;
    let mut zip_ok = 0usize;
    for c in cleaned {
        if c.address.street == truth.streets[c.id] {
            street_ok += 1;
        }
        if c.address.zip.as_deref() == Some(truth.zips[c.id].as_str()) {
            zip_ok += 1;
        }
    }
    let n = cleaned.len().max(1) as f64;
    (street_ok as f64 / n, zip_ok as f64 / n)
}
