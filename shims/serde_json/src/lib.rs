//! Offline stand-in for the `serde_json` crate, layered over the `serde`
//! shim's JSON [`Value`] model (see `shims/README.md` for why these exist).
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`], the
//! [`json!`] macro, and the [`Value`]/[`Map`] types. Object keys are
//! BTreeMap-ordered, so serialization is deterministic — a property the
//! workspace's bitwise-reproducibility tests rely on.

pub use serde::value::parse_str as __parse_str;
pub use serde::{to_value as __to_value, Error, Map, Value};

/// Serializes a value to compact JSON text.
///
/// Infallible for tree-shaped data (the only kind the shim's `Serialize`
/// can express); the `Result` mirrors upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_compact_string())
}

/// Serializes a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_pretty_string())
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::value::parse_str(text)?;
    T::from_json_value(&value)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Deserializes a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json_value(value)
}

/// Builds a [`Value`] from JSON-like syntax, interpolating any
/// `Serialize` expression (a tt-muncher port of upstream's macro).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`]. Arrays and objects are consumed one
/// token tree at a time so that arbitrary expressions (`p.lon`, function
/// calls, nested `json!` forms) can appear as elements and values.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: @array [built elements] rest... ----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object munching: @object map (current key) (rest) (copy) ----
    (@object $object:ident () () ()) => {};
    // Insert the pending key/value, then continue.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    // Value forms after `key:`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Key munching: accumulate tokens until the `:`.
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- leaf forms ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_literals() {
        let v = json!({
            "type": "FeatureCollection",
            "count": 3,
            "ok": true,
            "nothing": null,
            "nested": { "a": [1, 2.5, "x"] },
        });
        assert_eq!(v["type"], "FeatureCollection");
        assert_eq!(v["count"], 3);
        assert_eq!(v["ok"], true);
        assert!(v["nothing"].is_null());
        assert_eq!(v["nested"]["a"][1], 2.5);
    }

    #[test]
    fn json_macro_interpolates_expressions() {
        struct P {
            lon: f64,
            lat: f64,
        }
        let p = P {
            lon: 7.68,
            lat: 45.07,
        };
        let name = String::from("Torino");
        let maybe: Option<f64> = None;
        let v = json!({
            "name": name,
            "coords": [p.lon, p.lat],
            "mean": maybe,
            "sum": 1.0 + 2.0,
        });
        assert_eq!(v["name"], "Torino");
        assert_eq!(v["coords"][0], 7.68);
        assert!(v["mean"].is_null());
        assert_eq!(v["sum"], 3.0);
        // `name` must have been borrowed, not moved.
        assert_eq!(name.len(), 6);
    }

    #[test]
    fn round_trip_typed() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn arrays_of_objects() {
        let features: Vec<Value> = (0..2).map(|i| json!({ "id": i })).collect();
        let v = json!({ "features": features });
        assert_eq!(v["features"].as_array().unwrap().len(), 2);
        assert_eq!(v["features"][1]["id"], 1);
    }
}
