//! Offline stand-in for `serde_derive`.
//!
//! Real serde_derive rides on `syn`/`quote`; neither is available offline,
//! so this shim parses the item's raw [`TokenStream`] directly. It supports
//! exactly the shapes this workspace derives on:
//!
//! * named-field structs → JSON objects;
//! * tuple structs: one field → transparent newtype, n fields → array;
//! * unit structs → `null`;
//! * enums with unit variants (→ `"Variant"` strings), newtype variants
//!   (→ `{"Variant": value}`), tuple variants (→ `{"Variant": [..]}`) and
//!   struct variants (→ `{"Variant": {..}}`);
//! * `#[serde(skip)]` on named fields (omitted on write, `Default` on read).
//!
//! These match real serde's external representations, so artifacts emitted
//! by this shim parse the way upstream-serialized documents would.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// `true` when the attribute group (the `[...]` part) is `serde(skip)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes at `i`, returning whether any was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if attr_is_serde_skip(g) {
                        skip = true;
                    }
                    *i += 1;
                }
            }
            _ => break,
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility at `i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // Skip `:` and the type, up to the next top-level comma. Types are
        // sequences of token trees; groups count as one tree, so generics
        // like `Vec<(A, B)>` need angle-bracket depth tracking only.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_field_count(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_field_count(g))
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // visibility or other modifier
            }
            Some(TokenTree::Group(_)) => i += 1, // `pub(crate)` group
            Some(_) => i += 1,
            None => return Err("derive input has no struct/enum keyword".into()),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing item name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }
    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g),
            }),
            _ => Err(format!("enum `{name}` has no body")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(parse_tuple_field_count(g)),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            _ => Err(format!("struct `{name}` has no body")),
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str("let mut __m = ::serde::Map::new();\n");
                    for f in fs.iter().filter(|f| !f.skip) {
                        out.push_str(&format!(
                            "__m.insert(::std::string::String::from(\"{0}\"), \
                             ::serde::Serialize::to_json_value(&self.{0}));\n",
                            f.name
                        ));
                    }
                    out.push_str("::serde::Value::Object(__m)\n");
                }
                Fields::Tuple(1) => {
                    out.push_str("::serde::Serialize::to_json_value(&self.0)\n");
                }
                Fields::Tuple(n) => {
                    out.push_str("::serde::Value::Array(vec![\n");
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "::serde::Serialize::to_json_value(&self.{idx}),\n"
                        ));
                    }
                    out.push_str("])\n");
                }
                Fields::Unit => out.push_str("::serde::Value::Null\n"),
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                             ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let kept: Vec<&Field> = fs.iter().filter(|f| !f.skip).collect();
                        let has_skip = kept.len() != fs.len();
                        let pattern = format!(
                            "{}{}",
                            kept.iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", "),
                            if has_skip { ", .." } else { "" }
                        );
                        out.push_str(&format!(
                            "{name}::{vn} {{ {pattern} }} => {{\n\
                             let mut __inner = ::serde::Map::new();\n"
                        ));
                        for f in &kept {
                            out.push_str(&format!(
                                "__inner.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_json_value({0}));\n",
                                f.name
                            ));
                        }
                        out.push_str(&format!(
                            "let mut __m = ::serde::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n\
                             }}\n"
                        ));
                    }
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out
}

fn gen_field_read(target: &str, field: &Field, context: &str) -> String {
    if field.skip {
        format!("{}: ::std::default::Default::default(),\n", field.name)
    } else {
        format!(
            "{0}: ::serde::Deserialize::from_json_value(\
             {target}.get(\"{0}\").unwrap_or(&::serde::Value::Null))\
             .map_err(|e| ::serde::Error::custom(\
             format!(\"{context}.{0}: {{e}}\")))?,\n",
            field.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n"
            ));
            match fields {
                Fields::Named(fs) => {
                    out.push_str(&format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::Error::mismatch(\"object for {name}\", __v))?;\n\
                         ::std::result::Result::Ok({name} {{\n"
                    ));
                    for f in fs {
                        out.push_str(&gen_field_read("__obj", f, name));
                    }
                    out.push_str("})\n");
                }
                Fields::Tuple(1) => {
                    out.push_str(&format!(
                        "::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_json_value(__v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    out.push_str(&format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::Error::mismatch(\"array for {name}\", __v))?;\n\
                         if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} elements for {name}, found {{}}\", \
                         __arr.len())));\n}}\n\
                         ::std::result::Result::Ok({name}(\n"
                    ));
                    for idx in 0..*n {
                        out.push_str(&format!(
                            "::serde::Deserialize::from_json_value(&__arr[{idx}])?,\n"
                        ));
                    }
                    out.push_str("))\n");
                }
                Fields::Unit => {
                    out.push_str(&format!("::std::result::Result::Ok({name})\n"));
                }
            }
            out.push_str("}\n}\n");
        }
        Item::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n"
            ));
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __val) = __m.iter().next().expect(\"len == 1\");\n\
                 let _ = __val;\n\
                 match __k.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => out.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(__val)\
                         .map_err(|e| ::serde::Error::custom(\
                         format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __val.as_array().ok_or_else(|| \
                             ::serde::Error::mismatch(\"array for {name}::{vn}\", __val))?;\n\
                             if __arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}::{vn}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        ));
                        for idx in 0..*n {
                            out.push_str(&format!(
                                "::serde::Deserialize::from_json_value(&__arr[{idx}])?,\n"
                            ));
                        }
                        out.push_str("))\n}\n");
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = __val.as_object().ok_or_else(|| \
                             ::serde::Error::mismatch(\"object for {name}::{vn}\", __val))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        for f in fs {
                            out.push_str(&gen_field_read("__obj", f, &format!("{name}::{vn}")));
                        }
                        out.push_str("})\n}\n");
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::mismatch(\
                 \"variant string or single-key object for {name}\", __v)),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            ));
        }
    }
    out
}

fn run(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("valid compile_error"),
    }
}

/// Derives the shim's [`serde::Serialize`] for plain structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, gen_serialize)
}

/// Derives the shim's [`serde::Deserialize`] for plain structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, gen_deserialize)
}
