//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the two continuous distributions the synthetic-data generator
//! uses — [`Normal`] and [`LogNormal`] — sampled with the Box–Muller
//! transform (stateless per draw, deterministic given the RNG stream).

use rand::RngCore;

pub use rand::Distribution;

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation (or σ) was negative or non-finite.
    BadVariance,
    /// Mean (or μ) was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Draws a standard-normal variate via Box–Muller (cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Validates parameters (`std_dev` must be finite and non-negative).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Validates parameters (`sigma` must be finite and non-negative).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        if !mu.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = LogNormal::new(0.0, 0.5).unwrap();
        assert!((0..5000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
