//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so every external dependency of the workspace is provided as a local
//! path-dependency shim (see `shims/README.md`). This one implements the
//! small slice of `parking_lot` the workspace uses: a non-poisoning
//! [`RwLock`] whose `read`/`write` return guards directly (no `Result`),
//! plus a [`Mutex`] with the same ergonomics.
//!
//! Semantics match parking_lot where the workspace relies on them:
//! panics while holding a guard do not poison the lock.

use std::sync::TryLockError;

/// Non-poisoning reader-writer lock with parking_lot's API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning (parking_lot has
    /// no poisoning at all).
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<std::sync::RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<std::sync::RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Non-poisoning mutex with parking_lot's API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_survives_panic_without_poisoning() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
