//! The [`Strategy`] trait and its built-in implementations.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree / shrinking: `generate` draws one
/// concrete value per case.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references generate what the referent would.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for bool {
    type Value = bool;
    /// `true`/`false` as a constant strategy is not useful, so the bool
    /// *type* is not a strategy upstream either; this impl exists for
    /// `prop::bool::ANY`-style use and draws a fair coin.
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Char-class regex string strategies ("[a-z ]{0,24}" style)
// ---------------------------------------------------------------------------

/// The subset of regex string strategies the workspace uses: one character
/// class with an optional `{n}` / `{m,n}` quantifier. Ranges inside the
/// class (`a-z`, ` -~`) expand to their char span.
fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let quant = &rest[close + 1..];
    if quant.is_empty() {
        return Some((chars, 1, 1));
    }
    let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match quant.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n: usize = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported string strategy pattern {self:?} \
                 (supported: \"[class]{{m,n}}\")"
            )
        });
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_property("strategy_unit_tests")
    }

    #[test]
    fn class_with_ranges() {
        let (chars, min, max) = parse_char_class("[a-cA-B_ ]{2,5}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', 'A', 'B', '_', ' ']);
        assert_eq!((min, max), (2, 5));
    }

    #[test]
    fn printable_ascii_span() {
        let (chars, ..) = parse_char_class("[ -~]{0,60}").unwrap();
        assert_eq!(chars.len(), 95);
        assert_eq!(*chars.first().unwrap(), ' ');
        assert_eq!(*chars.last().unwrap(), '~');
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z ]{0,24}".generate(&mut r);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ranges_and_tuples_and_map() {
        let mut r = rng();
        let strat = (0usize..10, -1.0f64..1.0).prop_map(|(n, x)| (n * 2, x.abs()));
        for _ in 0..100 {
            let (n, x) = strat.generate(&mut r);
            assert!(n % 2 == 0 && n < 20);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
