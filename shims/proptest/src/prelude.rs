//! Everything a property-test file conventionally glob-imports.

pub use crate::strategy::Strategy;
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy;
}
