//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so every external dependency is a local path-dependency shim (see
//! `shims/README.md`). This shim keeps proptest's testing model — generate
//! N random cases per property, fail loudly with the offending message —
//! but drops shrinking: a failing case reports its assertion message and
//! the case index rather than a minimized input.
//!
//! Supported surface (what the workspace's property tests use):
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `#[test]`
//!   attributes, and `pattern in strategy` arguments;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples of strategies, and char-class regex string literals
//!   (`"[a-z ]{0,24}"` style);
//! * `prop::collection::{vec, btree_set}`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Generation is deterministic per test (seeded from the property's name),
//! so failures are reproducible run-to-run.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Runs one property across `config.cases` generated cases.
///
/// `body` returns `Err(TestCaseError::Reject)` on `prop_assume!` failures
/// (the case is skipped) and `Err(TestCaseError::Fail)` on assertion
/// failures (the test panics with the message and case index).
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut body: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let mut rng = test_runner::TestRng::for_property(name);
    let mut rejected = 0u32;
    let mut executed = 0u32;
    // Mirror proptest's global rejection cap so a too-strict prop_assume!
    // fails visibly instead of silently testing nothing.
    let max_rejects = config.cases.saturating_mul(8).max(1024);
    while executed < config.cases {
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejected, {executed}/{} cases run)",
                        config.cases
                    );
                }
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {} of {}: {msg}",
                    executed + 1,
                    config.cases
                );
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l
        );
    }};
}

/// Skips the current case (counts as rejected, not failed) when the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
