//! Test-run configuration, case errors, and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps full-workspace test time sane
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed — skip, don't count.
    Reject(String),
    /// `prop_assert!`-style failure — the property is falsified.
    Fail(String),
}

/// Deterministic per-property RNG: the same property name always replays
/// the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from the property name (FNV-1a over the bytes).
    pub fn for_property(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ 0x70726f7074657374), // "proptest"
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
