//! `Option<T>` strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `None` half the time and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen::<bool>() {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::for_property("option_of");
        let s = of(0u32..10);
        let vals: Vec<Option<u32>> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().flatten().all(|&x| x < 10));
    }
}
