//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Acceptable size arguments: a fixed `usize` or a range of lengths.
pub trait IntoSizeRange {
    /// Resolves to inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a target size drawn from `size`.
///
/// Duplicate draws retry a bounded number of times, so a narrow element
/// domain can yield fewer elements than requested (upstream behaves
/// likewise once the domain is exhausted).
pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    let (min, max) = size.bounds();
    BTreeSetStrategy { element, min, max }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.min..=self.max);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 10 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::for_property("vec_sizes");
        let s = vec(0u32..100, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(0.0f64..1.0, 2usize);
        assert_eq!(fixed.generate(&mut rng).len(), 2);
    }

    #[test]
    fn btree_set_sizes() {
        let mut rng = TestRng::for_property("btree_set_sizes");
        let s = btree_set(0u32..1000, 0..8);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() < 8);
        }
    }
}
