//! `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: `f64`/`f32` uniform in `[0, 1)`,
/// fair `bool`, full-width uniform integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling (`rand::distributions::uniform` subset).
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types uniformly sampleable between two bounds.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw in `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let lo = low as i128;
                    let hi = high as i128;
                    let span = (hi - lo + if inclusive { 1 } else { 0 }) as u128;
                    assert!(span > 0, "cannot sample from empty range");
                    // Multiply-shift scaling: unbiased enough for the spans
                    // used here, and independent of the span's magnitude.
                    let draw = ((rng.next_u64() as u128) * span) >> 64;
                    (lo + draw as i128) as $t
                }
            }
        )*};
    }
    sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            assert!(low < high || (_inclusive && low <= high), "empty f64 range");
            let v = low + rng.next_f64() * (high - low);
            // Guard against rounding up to an exclusive upper bound.
            if v >= high && !_inclusive {
                low
            } else {
                v
            }
        }
    }

    impl SampleUniform for f32 {
        fn sample_between<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            f64::sample_between(rng, low as f64, high as f64, inclusive) as f32
        }
    }

    /// Ranges acceptable to `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_between(rng, *self.start(), *self.end(), true)
        }
    }
}
