//! Slice shuffling and choosing (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Randomized slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
