//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no network access and an empty cargo registry,
//! so every external dependency is a local path-dependency shim (see
//! `shims/README.md`). This one provides the slice of `rand` 0.8 the
//! workspace uses: [`rngs::StdRng`]/[`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`]/[`Rng::gen_range`]/
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for synthetic-data generation. The stream
//! differs from upstream `StdRng` (ChaCha12), so seed-pinned expectations in
//! tests are calibrated against this generator; within this workspace all
//! runs are bit-reproducible.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level uniform-bits source (the shim collapses rand's u32/u64/bytes
/// surface onto `next_u64`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed at 32 bytes like upstream `StdRng`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing randomness API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution (`f64` in
    /// `[0, 1)`, fair `bool`, uniform integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform draw from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
