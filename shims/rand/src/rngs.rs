//! Concrete generators: xoshiro256** behind the `StdRng`/`SmallRng` names.

use crate::{RngCore, SeedableRng};

/// xoshiro256** generator (Blackman & Vigna). Deterministic stand-in for
/// upstream `StdRng`; seeded through SplitMix64 so any `u64` seed yields a
/// well-mixed 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Small-footprint alias — the shim uses one generator for both names.
pub type SmallRng = StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // A fully-zero state is the one invalid xoshiro state.
        if s == [0, 0, 0, 0] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}
