//! The JSON data model: [`Value`], [`Map`], printing, and parsing.

use crate::Error;
use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value (the shim's counterpart of `serde_json::Value`).
///
/// Numbers are `f64` throughout; integral values print without a decimal
/// point so round-trips look like real serde_json output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integers included).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministically ordered (sorted) keys.
    Object(Map<String, Value>),
}

/// An order-deterministic JSON object map (BTreeMap-backed, so emitted keys
/// are always sorted — important for the workspace's bitwise-identical
/// artifact guarantees).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Map<K: Ord = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.get(key)
    }

    /// `true` if the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Removes a key, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.inner.remove(key)
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable name of the JSON kind (for error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object payload.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64` when integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64` when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object-field access returning `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}
value_eq_num!(f64, f32, i32, i64, u32, u64, usize);

/// Writes `n` the way serde_json would: integers without a decimal point,
/// everything else via Rust's shortest round-trip float formatting.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; serialize as null like lenient emitters.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        use std::fmt::Write;
        let _ = write!(out, "{}", n as i64);
    } else {
        use std::fmt::Write;
        let _ = write!(out, "{n}");
    }
}

/// Escapes and quotes a JSON string.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_str(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_str(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl fmt::Display for Value {
    /// Compact JSON text (matches `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

impl Value {
    /// Compact JSON text.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    /// Two-space-indented JSON text (matches `serde_json::to_string_pretty`
    /// closely enough for round-trips and human inspection).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected '{kw}')")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this shim's
                            // own emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance by whole UTF-8 characters.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses JSON text into a [`Value`].
pub fn parse_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let text = r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":-3}}"#;
        let v = parse_str(text).unwrap();
        assert_eq!(v.to_compact_string(), text);
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Value::Num(120.0).to_compact_string(), "120");
        assert_eq!(Value::Num(1.25).to_compact_string(), "1.25");
        assert_eq!(Value::Num(-0.5).to_compact_string(), "-0.5");
    }

    #[test]
    fn pretty_round_trips() {
        let v = parse_str(r#"{"k":[1,{"x":"y"}],"empty":[],"o":{}}"#).unwrap();
        assert_eq!(parse_str(&v.to_pretty_string()).unwrap(), v);
    }

    #[test]
    fn index_missing_is_null() {
        let v = parse_str(r#"{"a":1}"#).unwrap();
        assert!(v["missing"].is_null());
        assert!(v["a"][3].is_null());
        assert_eq!(v["a"], 1);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("quote\" slash\\ tab\t nl\n ctrl\u{1}".to_string());
        assert_eq!(parse_str(&v.to_compact_string()).unwrap(), v);
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("Torino è bella — città".to_string());
        assert_eq!(parse_str(&v.to_compact_string()).unwrap(), v);
    }
}
