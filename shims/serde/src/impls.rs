//! `Serialize`/`Deserialize` implementations for primitives and std
//! containers.

use crate::value::{Map, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

// --- Serialize ------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_json_value(&self) -> Value {
        // Sorted on the way out (Map is a BTreeMap) → deterministic output.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<V: Serialize> Serialize for Map<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

// --- Deserialize ----------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::mismatch("boolean", v))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::mismatch("string", v))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::mismatch("number", v))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::mismatch("integer", v))?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!("expected integer, found {n}")));
                }
                let cast = n as $t;
                if cast as f64 != n {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::mismatch("array", v))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::mismatch("array", v))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for Map<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json_value(&42u32.to_json_value()).unwrap(), 42);
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_json_value(&"hi".to_json_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_json_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_json_value(&Value::Num(300.0)).is_err());
        assert!(u32::from_json_value(&Value::Num(-1.0)).is_err());
        assert!(u32::from_json_value(&Value::Num(1.5)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_json_value(&v.to_json_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_json_value(&m.to_json_value()).unwrap(),
            m
        );
    }
}
