//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so every external dependency is a local path-dependency shim (see
//! `shims/README.md`). Real serde is a zero-overhead visitor framework;
//! this shim collapses that machinery to what the workspace actually needs —
//! JSON round-trips of plain data types — by defining [`Serialize`] /
//! [`Deserialize`] directly against an owned JSON [`Value`] tree.
//!
//! The derive macros (re-exported from the `serde_derive` shim) emit the
//! same external representations real serde would for the shapes used in
//! this workspace: structs as objects, newtype structs transparently, unit
//! enum variants as strings, newtype/struct enum variants as single-key
//! objects, and `#[serde(skip)]` fields omitted and rebuilt with
//! `Default::default()`.

mod impls;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

/// Serialization into an owned JSON tree.
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Deserialization from a JSON tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// Serialization/deserialization error (message-based, like
/// `serde_json::Error` for the workspace's purposes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Shorthand for "expected X, found Y" mismatches.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind_name()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes any value to a JSON tree (the entry point `json!` and
/// `serde_json::to_value` build on).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}
