//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and an empty cargo registry,
//! so every external dependency is a local path-dependency shim (see
//! `shims/README.md`). This harness keeps criterion's API shape —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`
//! / `bench_with_input`, `Bencher::iter` — and measures simple wall-clock
//! statistics (min / median / mean) over a fixed number of timed samples,
//! printing one line per benchmark. No statistical rigor is claimed; the
//! numbers are for relative, same-machine comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation feeding
/// it (delegates to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a benchmark within a group, e.g. `full_pipeline/25000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up call, then `samples` timed
    /// calls) and records per-call wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.timings.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mut sorted = timings.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<60} min {:>10}   median {:>10}   mean {:>10}   ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

/// Top-level benchmark driver (the `c: &mut Criterion` argument).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Few samples by default: the shim targets relative comparisons of
        // long-running pipeline benchmarks, not microbenchmark precision.
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── group: {name} ──");
        BenchmarkGroup {
            _criterion: self,
            name,
            samples: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&id.id, &b.timings);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (criterion requires ≥ 10; the
    /// shim honors whatever it is given, minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 100);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.timings);
        self
    }

    /// Runs a benchmark parameterized by borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            timings: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.timings);
        self
    }

    /// Ends the group (criterion finalizes reports here; the shim prints
    /// eagerly, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
