//! Integration of the query engine over generated collections: predicates
//! against ground truth, aggregation consistency, and property-based
//! checks on the predicate algebra.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_query::aggregate::{group_by, AggFn};
use epc_query::predicate::Predicate;
use epc_query::query::Query;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use proptest::prelude::*;

fn collection() -> SyntheticCollection {
    EpcGenerator::new(SynthConfig {
        n_records: 1_000,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate()
}

#[test]
fn category_counts_match_scan() {
    let c = collection();
    let ds = &c.dataset;
    let id = ds.schema().require(wk::BUILDING_CATEGORY).unwrap();
    let expected = (0..ds.n_rows())
        .filter(|&r| ds.cat(r, id) == Some("E.1.1"))
        .count();
    let q = Query::filtered(Predicate::eq(wk::BUILDING_CATEGORY, "E.1.1"));
    assert_eq!(q.count(ds).unwrap(), expected);
}

#[test]
fn district_groups_partition_the_dataset() {
    let c = collection();
    let rows = group_by(&c.dataset, wk::DISTRICT, wk::EPH, &[AggFn::Count]).unwrap();
    let total: usize = rows.iter().map(|r| r.n_rows).sum();
    assert_eq!(total, c.dataset.n_rows());
    assert_eq!(rows.len(), 4, "four districts generated");
    // Group means are reproducible by direct scan.
    let mean_rows = group_by(&c.dataset, wk::DISTRICT, wk::EPH, &[AggFn::Mean]).unwrap();
    let d = &mean_rows[0];
    let id_district = c.dataset.schema().require(wk::DISTRICT).unwrap();
    let id_eph = c.dataset.schema().require(wk::EPH).unwrap();
    let values: Vec<f64> = (0..c.dataset.n_rows())
        .filter(|&r| c.dataset.cat(r, id_district) == Some(d.group.as_str()))
        .filter_map(|r| c.dataset.num(r, id_eph))
        .collect();
    let expected = values.iter().sum::<f64>() / values.len() as f64;
    assert!((d.values[0].unwrap() - expected).abs() < 1e-9);
}

#[test]
fn range_query_matches_truth_derived_bounds() {
    let c = collection();
    let ds = &c.dataset;
    let eph = ds.schema().require(wk::EPH).unwrap();
    let q = Query::filtered(Predicate::between(wk::EPH, 0.0, 50.0));
    let hits = q.run(ds).unwrap();
    for row in hits.rows() {
        assert!(row.num(eph).unwrap() <= 50.0);
    }
    // Complement + query = all numeric rows.
    let complement = Query::filtered(
        Predicate::between(wk::EPH, 0.0, 50.0)
            .not()
            .and(Predicate::IsPresent(wk::EPH.into())),
    );
    assert_eq!(
        hits.n_rows() + complement.count(ds).unwrap(),
        ds.n_rows() - ds.column_by_name(wk::EPH).unwrap().missing_count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AND is commutative over arbitrary numeric ranges and categories.
    #[test]
    fn predicate_and_commutes(lo in 0.0f64..200.0, width in 1.0f64..200.0, class in 0usize..7) {
        let classes = ["A", "B", "C", "D", "E", "F", "G"];
        let c = collection();
        let a = Predicate::between(wk::EPH, lo, lo + width);
        let b = Predicate::eq(wk::EPC_CLASS, classes[class]);
        let ab = Query::filtered(a.clone().and(b.clone())).matching_rows(&c.dataset).unwrap();
        let ba = Query::filtered(b.and(a)).matching_rows(&c.dataset).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Double negation is the identity on present values.
    #[test]
    fn double_negation(lo in 0.0f64..300.0, width in 1.0f64..100.0) {
        let c = collection();
        let p = Predicate::between(wk::EPH, lo, lo + width);
        let direct = Query::filtered(p.clone()).matching_rows(&c.dataset).unwrap();
        let doubled = Query::filtered(p.not().not()).matching_rows(&c.dataset).unwrap();
        prop_assert_eq!(direct, doubled);
    }

    /// Widening a range never loses rows.
    #[test]
    fn range_monotonicity(lo in 0.0f64..200.0, w1 in 1.0f64..50.0, extra in 0.0f64..100.0) {
        let c = collection();
        let narrow = Query::filtered(Predicate::between(wk::EPH, lo, lo + w1))
            .count(&c.dataset).unwrap();
        let wide = Query::filtered(Predicate::between(wk::EPH, lo, lo + w1 + extra))
            .count(&c.dataset).unwrap();
        prop_assert!(wide >= narrow);
    }
}
