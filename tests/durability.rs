//! Durability suite: journaled checkpoint/resume under injected crashes.
//!
//! The contract under test (PR 4): a durable run that dies at *any* crash
//! point — before a stage's commit, right after it, or mid-commit with a
//! torn checkpoint file — can be resumed and finishes with a run
//! directory (artifacts, checkpoints, and the journal itself) that is
//! **byte-identical** to an uninterrupted run's. Resume must skip exactly
//! the stages whose journal entries validate (asserted via
//! `journal_hits`), replay the rest, and detect torn checkpoints by
//! content hash. The stage deadline watchdog must degrade overrunning
//! stages deterministically under an injected clock.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_faults::CrashSpec;
use epc_journal::{Journal, MANIFEST_FILE};
use epc_query::Stakeholder;
use epc_runtime::{ManualClock, RuntimeConfig};
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::durable::{DurableOptions, CHECKPOINT_DIR};
use indice::engine::Indice;
use indice::pipeline::{RunOutcome, StageDeadline};
use indice::IndiceError;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const STAGES: [&str; 3] = ["preprocess", "analytics", "dashboard"];

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 700,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

fn engine_at(threads: usize) -> Indice {
    Indice::from_collection(collection(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads))
}

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

/// A fresh, unique run directory under the system temp dir.
fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indice-durability-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT_DIR.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir`, relative path → content bytes.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Asserts two run directories are byte-identical, file by file.
fn assert_trees_identical(a: &Path, b: &Path, context: &str) {
    let (ta, tb) = (tree(a), tree(b));
    assert_eq!(
        ta.keys().collect::<Vec<_>>(),
        tb.keys().collect::<Vec<_>>(),
        "{context}: file sets differ"
    );
    for (name, bytes) in &ta {
        assert_eq!(
            Some(bytes),
            tb.get(name),
            "{context}: {name} differs between runs"
        );
    }
}

#[test]
fn uninterrupted_durable_run_journals_every_stage() {
    let engine = engine_at(2);
    let dir = run_dir("plain");
    let out = engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir),
        )
        .expect("durable run");
    assert!(out.outcome.produced_output(), "outcome: {}", out.outcome);
    assert!(out.journal_hits.is_empty());
    assert_eq!(out.replayed, STAGES);

    let loaded = Journal::at(&dir).load().expect("journal loads");
    assert!(!loaded.recovered_torn_tail);
    let entries = loaded.entries;
    assert_eq!(entries.len(), 3);
    for (i, (entry, stage)) in entries.iter().zip(STAGES).enumerate() {
        assert_eq!(entry.seq, i);
        assert_eq!(entry.stage, stage);
        assert!(!entry.degraded);
        for rec in &entry.checkpoints {
            rec.read_verified(&dir).expect("checkpoint validates");
        }
    }
    assert!(dir.join(MANIFEST_FILE).is_file());
    assert!(dir
        .join(CHECKPOINT_DIR)
        .join("preprocess.ckpt.json")
        .is_file());
    assert!(dir
        .join(CHECKPOINT_DIR)
        .join("analytics.ckpt.json")
        .is_file());
    assert!(dir.join("dashboard.html").is_file());
    let _ = fs::remove_dir_all(&dir);
}

/// The tentpole acceptance test: for every stage × crash point, the
/// crashed-then-resumed run directory is byte-identical to an
/// uninterrupted run's, journal hits are exactly the validated prefix,
/// and the journal ends with exactly one entry per stage.
#[test]
fn crash_resume_matrix_restores_byte_identical_runs() {
    let engine = engine_at(2);
    let baseline = run_dir("baseline");
    engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&baseline),
        )
        .expect("baseline run");

    for (si, stage) in STAGES.iter().enumerate() {
        for point in ["before", "after", "torn"] {
            let context = format!("{stage}:{point}");
            let spec = CrashSpec::parse(&context).expect("valid spec");
            let dir = run_dir(&format!("crash-{stage}-{point}"));

            // The "process" dies at the injected crash point...
            let err = engine
                .run_durable(
                    Stakeholder::PublicAdministration,
                    &DurableOptions::new(&dir).with_crash(&spec),
                )
                .expect_err("crash spec must abort the run");
            match &err {
                IndiceError::CrashInjected { stage: s, point: p } => {
                    assert_eq!((s.as_str(), p.as_str()), (*stage, point), "{context}");
                }
                other => panic!("{context}: unexpected error {other}"),
            }

            // ...leaving a journal prefix: the crashed stage committed its
            // entry for `after` and `torn` (torn with a corrupt
            // checkpoint), but not for `before`.
            let committed = Journal::at(&dir).load().expect("journal loads");
            let expect_committed = match point {
                "before" => si,
                _ => si + 1,
            };
            assert_eq!(committed.entries.len(), expect_committed, "{context}");

            // Resume replays from the first invalid entry.
            let out = engine
                .run_durable(
                    Stakeholder::PublicAdministration,
                    &DurableOptions::new(&dir).resuming(),
                )
                .expect("resume succeeds");
            assert!(out.outcome.produced_output(), "{context}: {}", out.outcome);

            // A torn checkpoint must fail hash validation, so the crashed
            // stage is replayed; a clean `after` commit is a journal hit.
            let expect_hits: Vec<&str> = match point {
                "after" => STAGES[..=si].to_vec(),
                _ => STAGES[..si].to_vec(),
            };
            assert_eq!(out.journal_hits, expect_hits, "{context}: journal hits");
            assert_eq!(
                out.replayed,
                STAGES[expect_hits.len()..].to_vec(),
                "{context}: replayed stages"
            );

            // Exactly one journal entry per stage — no duplicates from the
            // crashed attempt — and bitwise equality with the baseline,
            // journal included.
            assert_eq!(
                Journal::at(&dir)
                    .load()
                    .expect("journal loads")
                    .entries
                    .len(),
                3,
                "{context}"
            );
            assert_trees_identical(&baseline, &dir, &context);
            let _ = fs::remove_dir_all(&dir);
        }
    }
    let _ = fs::remove_dir_all(&baseline);
}

/// The config fingerprint deliberately excludes the thread budget, so a
/// run crashed at one parallelism can resume at another — and still end
/// byte-identical.
#[test]
fn resume_is_byte_identical_across_thread_budgets() {
    let baseline = run_dir("threads-baseline");
    engine_at(1)
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&baseline),
        )
        .expect("baseline run");

    let spec = CrashSpec::parse("analytics:before").expect("valid spec");
    for resume_threads in [1usize, 2, 8] {
        let dir = run_dir(&format!("threads-{resume_threads}"));
        engine_at(2)
            .run_durable(
                Stakeholder::PublicAdministration,
                &DurableOptions::new(&dir).with_crash(&spec),
            )
            .expect_err("crash aborts");
        let out = engine_at(resume_threads)
            .run_durable(
                Stakeholder::PublicAdministration,
                &DurableOptions::new(&dir).resuming(),
            )
            .expect("resume succeeds");
        assert_eq!(out.journal_hits, vec!["preprocess"]);
        assert_trees_identical(
            &baseline,
            &dir,
            &format!("resume at {resume_threads} thread(s)"),
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&baseline);
}

/// Under an injected clock every stage overruns its budget by exactly the
/// scripted amount, so the watchdog's verdict is deterministic: the
/// degradable analytics stage loses its product, required stages keep
/// theirs, and the run outcome is `Degraded` with one reason per overrun.
#[test]
fn deadline_overruns_degrade_deterministically_under_injected_clock() {
    let engine = engine_at(2);
    let reasons_of = |dir: &Path| -> Vec<String> {
        let clock = ManualClock::advancing(1_000);
        let out = engine
            .run_durable(
                Stakeholder::PublicAdministration,
                &DurableOptions::new(dir).with_deadline(StageDeadline {
                    budget_ms: 500,
                    clock: &clock,
                }),
            )
            .expect("durable run");
        assert_eq!(out.degraded_stages, vec!["analytics"]);
        assert!(out.analytics.is_none(), "overrun product must be dropped");
        assert!(out.preprocess.is_some(), "required product must be kept");
        match out.outcome {
            RunOutcome::Degraded(reasons) => reasons,
            other => panic!("expected a degraded outcome, got {other}"),
        }
    };

    let (dir_a, dir_b) = (run_dir("deadline-a"), run_dir("deadline-b"));
    let reasons = reasons_of(&dir_a);
    let deadline_reasons: Vec<&String> = reasons
        .iter()
        .filter(|r| r.contains("exceeded its deadline"))
        .collect();
    assert_eq!(deadline_reasons.len(), 3, "{reasons:?}");
    assert!(
        deadline_reasons
            .iter()
            .all(|r| r.contains("1000 ms > budget 500 ms")),
        "{reasons:?}"
    );
    assert!(
        deadline_reasons[1].contains("'analytics'")
            && deadline_reasons[1].contains("product discarded"),
        "{reasons:?}"
    );
    assert!(
        deadline_reasons[0].contains("required product kept"),
        "{reasons:?}"
    );

    // Deterministic: a second run scripts the same clock and reproduces
    // the same verdicts and the same bytes on disk.
    assert_eq!(reasons, reasons_of(&dir_b));
    assert_trees_identical(&dir_a, &dir_b, "deadline-degraded runs");

    // Resuming the degraded run replays nothing and reports the same
    // degradation (the analytics entry is journaled product-less).
    let resumed = engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir_a).resuming(),
        )
        .expect("resume succeeds");
    assert_eq!(resumed.journal_hits, STAGES);
    assert!(resumed.replayed.is_empty());
    assert_eq!(resumed.degraded_stages, vec!["analytics"]);
    match resumed.outcome {
        RunOutcome::Degraded(r) => assert_eq!(r, reasons),
        other => panic!("expected a degraded outcome, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// Resuming a finished run validates every entry, skips every stage, and
/// leaves the directory untouched; a *non*-resume run into the same
/// directory starts over (the journal is rewritten, outputs identical).
#[test]
fn resume_of_a_complete_run_is_a_full_journal_hit() {
    let engine = engine_at(2);
    let dir = run_dir("complete");
    engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir),
        )
        .expect("first run");
    let before = tree(&dir);

    let out = engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir).resuming(),
        )
        .expect("resume succeeds");
    assert_eq!(out.journal_hits, STAGES);
    assert!(out.replayed.is_empty());
    assert!(out.outcome.produced_output());
    // The dashboard stage was satisfied from disk: its artifacts are in
    // the run dir (and in `artifacts`), not re-rendered in memory.
    assert!(out.dashboard.is_none());
    assert!(!out.artifacts.is_empty());
    assert_eq!(before, tree(&dir), "resume must not rewrite any file");

    // Fresh (non-resume) run into the same directory: starts over, same
    // bytes.
    let out = engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir),
        )
        .expect("overwrite run");
    assert!(out.journal_hits.is_empty());
    assert_eq!(out.replayed, STAGES);
    assert_eq!(before, tree(&dir));
    let _ = fs::remove_dir_all(&dir);
}

/// A journal written for different inputs must not be trusted: resume
/// with a changed configuration invalidates the whole prefix and replays
/// everything.
#[test]
fn resume_rejects_a_journal_from_different_inputs() {
    let dir = run_dir("fingerprint");
    engine_at(2)
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir),
        )
        .expect("first run");

    // Same data, different effective config (stakeholder changes the
    // fingerprint).
    let out = engine_at(2)
        .run_durable(Stakeholder::Citizen, &DurableOptions::new(&dir).resuming())
        .expect("resume succeeds");
    assert!(out.journal_hits.is_empty(), "stale journal must not hit");
    assert_eq!(out.replayed, STAGES);
    assert_eq!(
        Journal::at(&dir)
            .load()
            .expect("journal loads")
            .entries
            .len(),
        3
    );
    let _ = fs::remove_dir_all(&dir);
}
