//! Chaos suite: the fault-tolerant pipeline under deterministic fault
//! injection. Asserts that (1) a zero-fault supervised run is
//! byte-identical to the strict pipeline, (2) runs with ≤20% record
//! corruption plus geocode failures still produce output, with *exact*
//! quarantine accounting, (3) chaos outputs are bitwise identical across
//! thread budgets for a fixed fault seed, and (4) stage kills degrade or
//! fail the run according to the stage's supervision policy.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_faults::{corrupt_dataset, Corruption, DeterministicInjector};
use epc_model::wellknown as wk;
use epc_query::predicate::Predicate;
use epc_query::query::Query;
use epc_query::Stakeholder;
use epc_runtime::RuntimeConfig;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::{Indice, SupervisedOutput};
use indice::pipeline::RunOutcome;

const FAULT_SEED: u64 = 0xC1A05;

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 900,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

fn engine_at(threads: usize) -> Indice {
    Indice::from_collection(collection(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads))
}

fn injector(record_rate: f64, geocode_rate: f64) -> DeterministicInjector {
    DeterministicInjector::new(FAULT_SEED)
        .with_record_rate(record_rate)
        .with_corruption(Corruption::NonFinite {
            attribute: wk::ASPECT_RATIO.to_owned(),
        })
        .with_geocode_rate(geocode_rate)
}

/// The record keys the injector will corrupt, predicted independently by
/// replaying category selection + corruption on a fresh copy of the data.
fn predicted_corrupt_keys(record_rate: f64) -> Vec<String> {
    let c = collection();
    let mut selected = Query::filtered(Predicate::eq(wk::BUILDING_CATEGORY, "E.1.1"))
        .run(&c.dataset)
        .expect("category selection");
    corrupt_dataset(&mut selected, &injector(record_rate, 0.0)).expect("corruption applies")
}

#[test]
fn zero_fault_supervised_run_is_byte_identical_to_strict_run() {
    let engine = engine_at(2);
    let (strict, _) = engine
        .run_detailed(Stakeholder::PublicAdministration)
        .expect("strict run succeeds");
    let supervised = engine.run_supervised(Stakeholder::PublicAdministration);

    assert!(matches!(supervised.outcome, RunOutcome::Complete));
    assert_eq!(supervised.outcome.exit_code(), 0);
    assert!(supervised.quarantine.is_empty());
    assert!(supervised.degraded_stages.is_empty());

    // Every product byte-identical: the fault-tolerant machinery is pure
    // overhead-free delegation when no injector is attached.
    let sup_pre = supervised.preprocess.as_ref().expect("preprocess present");
    assert_eq!(strict.preprocess.kept_rows, sup_pre.kept_rows);
    assert_eq!(strict.preprocess.removed_rows, sup_pre.removed_rows);
    assert_eq!(strict.preprocess.cleaning, sup_pre.cleaning);
    let sup_analytics = supervised.analytics.as_ref().expect("analytics present");
    assert_eq!(
        strict.analytics.kmeans.assignments,
        sup_analytics.kmeans.assignments
    );
    assert_eq!(
        strict.analytics.kmeans.sse.to_bits(),
        sup_analytics.kmeans.sse.to_bits()
    );
    assert_eq!(strict.analytics.rules, sup_analytics.rules);
    assert_eq!(
        strict.dashboard.render_html(),
        supervised
            .dashboard
            .as_ref()
            .expect("dashboard present")
            .render_html()
    );
    assert_eq!(strict.artifacts, supervised.artifacts);
}

#[test]
fn fault_rates_up_to_twenty_percent_still_produce_output() {
    for rate in [0.0, 0.05, 0.2] {
        let inj = injector(rate, 0.1);
        let out = engine_at(2).run_supervised_with_faults(Stakeholder::PublicAdministration, &inj);
        assert!(
            out.outcome.produced_output(),
            "rate {rate}: run failed: {}",
            out.outcome
        );
        assert!(out.dashboard.is_some(), "rate {rate}: no dashboard");
        assert!(out.preprocess.is_some(), "rate {rate}: no preprocess");
        assert!(!out.artifacts.is_empty(), "rate {rate}: no artifacts");
        if rate > 0.0 {
            assert!(
                !out.quarantine.is_empty(),
                "rate {rate}: expected quarantined records"
            );
            assert_eq!(out.outcome.exit_code(), 3, "rate {rate}: expected degraded");
        }
    }
}

#[test]
fn quarantine_accounting_is_exact() {
    let rate = 0.2;
    let predicted = predicted_corrupt_keys(rate);
    assert!(
        !predicted.is_empty(),
        "corruption rate 0.2 must hit records"
    );

    let inj = injector(rate, 0.0);
    let out = engine_at(1).run_supervised_with_faults(Stakeholder::PublicAdministration, &inj);
    assert!(out.outcome.produced_output());

    // Every corrupted record — and nothing else — lands in the quarantine.
    let quarantined: Vec<&str> = out.quarantine.keys();
    let predicted_refs: Vec<&str> = predicted.iter().map(String::as_str).collect();
    assert_eq!(quarantined, predicted_refs);
    let histogram = out.quarantine.histogram();
    assert_eq!(histogram.get("non_finite"), Some(&predicted.len()));
    assert_eq!(histogram.len(), 1, "only non-finite faults were injected");

    // The stage report accounts for the same records.
    let stage = out.report.stage("preprocess").expect("preprocess stage");
    assert_eq!(stage.quarantined, predicted.len());
    assert_eq!(out.report.total_quarantined(), predicted.len());
}

#[test]
fn chaos_outputs_are_identical_across_thread_counts() {
    let run = |threads: usize| -> SupervisedOutput {
        let inj = injector(0.2, 0.1);
        engine_at(threads).run_supervised_with_faults(Stakeholder::PublicAdministration, &inj)
    };
    let reference = run(1);
    assert!(reference.outcome.produced_output());
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(
            reference.outcome.exit_code(),
            other.outcome.exit_code(),
            "outcome differs at {threads} threads"
        );
        assert_eq!(
            reference.quarantine.keys(),
            other.quarantine.keys(),
            "quarantine set differs at {threads} threads"
        );
        assert_eq!(
            reference.quarantine.histogram(),
            other.quarantine.histogram(),
            "fault histogram differs at {threads} threads"
        );
        let ref_pre = reference.preprocess.as_ref().expect("preprocess");
        let other_pre = other.preprocess.as_ref().expect("preprocess");
        assert_eq!(
            ref_pre.kept_rows, other_pre.kept_rows,
            "kept rows differ at {threads} threads"
        );
        assert_eq!(
            ref_pre.degraded_rows, other_pre.degraded_rows,
            "degraded rows differ at {threads} threads"
        );
        assert_eq!(
            reference.artifacts, other.artifacts,
            "artifacts differ at {threads} threads"
        );
    }
}

#[test]
fn analytics_stage_kill_degrades_but_dashboard_survives() {
    let inj = DeterministicInjector::new(FAULT_SEED).kill_stage("analytics", 1);
    let out = engine_at(2).run_supervised_with_faults(Stakeholder::PublicAdministration, &inj);

    let RunOutcome::Degraded(reasons) = &out.outcome else {
        panic!("expected degraded outcome, got {}", out.outcome);
    };
    assert!(reasons.iter().any(|r| r.contains("analytics")));
    assert_eq!(out.outcome.exit_code(), 3);
    assert_eq!(out.degraded_stages, vec!["analytics".to_owned()]);
    assert!(out.analytics.is_none());

    // The dashboard still renders maps and distributions, and says what
    // is missing.
    let dashboard = out.dashboard.expect("degraded dashboard present");
    let html = dashboard.render_html();
    assert!(html.contains("Analytics unavailable"));
    assert!(!out.artifacts.is_empty());
}

#[test]
fn required_stage_kill_fails_the_run() {
    let inj = DeterministicInjector::new(FAULT_SEED).kill_stage("preprocess", 1);
    let out = engine_at(2).run_supervised_with_faults(Stakeholder::PublicAdministration, &inj);
    let RunOutcome::Failed(err) = &out.outcome else {
        panic!("expected failed outcome, got {}", out.outcome);
    };
    assert!(err.to_string().contains("preprocess"));
    assert_eq!(out.outcome.exit_code(), 1);
    assert!(out.dashboard.is_none());
    // The report still covers the attempted stage.
    assert_eq!(out.report.stages.len(), 1);
    assert_eq!(out.report.stages[0].name, "preprocess");
}
