//! Differential row-vs-columnar harness (ISSUE 10).
//!
//! The columnar engine is an execution detail: switching
//! `Engine::Row` → `Engine::Columnar` must change *nothing* observable —
//! query results, cleaning outcomes, K-means centroids, and dashboard
//! artifacts stay bitwise identical. This suite gates that contract:
//!
//! * full-pipeline runs at 1k records × seeds {2024, 7} × threads
//!   {1, 2, 8} compared artifact-by-artifact against the row reference;
//! * component differentials at 25k records (query battery, group-by
//!   aggregation, address cleaning, feature gathering + K-means) and a
//!   DBSCAN differential at 2k;
//! * proptests for encode/decode round-trips (dictionary, delta, RLE,
//!   bit-pack), zone-map pruning soundness (a skipped block provably
//!   contains no match — checked by bit-equality with the naive filter),
//!   and selection-bitmap algebra (and/or/not vs naive).
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_query::Stakeholder;
use epc_runtime::{Engine, RuntimeConfig};
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::{Indice, IndiceOutput};

const SEEDS: [u64; 2] = [2024, 7];

fn collection(n_records: usize, seed: u64) -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records,
        seed,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(
        &mut c,
        &NoiseConfig {
            seed: seed ^ 0xC0FF_EE,
            ..NoiseConfig::default()
        },
    );
    c
}

mod full_pipeline {
    //! The end-to-end gate: every artifact byte-for-byte.

    use super::*;

    fn run(seed: u64, threads: usize, engine: Engine) -> IndiceOutput {
        let indice = Indice::from_collection(collection(1_000, seed), IndiceConfig::default())
            .with_runtime(RuntimeConfig::new(threads).with_engine(engine));
        indice.run(Stakeholder::PublicAdministration).unwrap()
    }

    fn assert_identical(row: &IndiceOutput, col: &IndiceOutput, seed: u64, threads: usize) {
        let at = format!("seed {seed}, {threads} threads");
        // Stage 1: cleaning and outlier removal.
        assert_eq!(
            row.preprocess.kept_rows, col.preprocess.kept_rows,
            "kept rows differ at {at}"
        );
        assert_eq!(
            row.preprocess.removed_rows, col.preprocess.removed_rows,
            "removed rows differ at {at}"
        );
        assert_eq!(
            row.preprocess.cleaning, col.preprocess.cleaning,
            "cleaning report differs at {at}"
        );
        assert_eq!(
            row.preprocess.multivariate_flagged, col.preprocess.multivariate_flagged,
            "DBSCAN flags differ at {at}"
        );
        // Stage 2: clustering, down to float bits.
        assert_eq!(
            row.analytics.kmeans.assignments, col.analytics.kmeans.assignments,
            "cluster assignments differ at {at}"
        );
        assert_eq!(
            row.analytics.kmeans.sse.to_bits(),
            col.analytics.kmeans.sse.to_bits(),
            "SSE bits differ at {at}"
        );
        assert_eq!(
            row.analytics.kmeans.centroids, col.analytics.kmeans.centroids,
            "centroids differ at {at}"
        );
        assert_eq!(row.analytics.chosen_k, col.analytics.chosen_k);
        assert_eq!(row.analytics.rules, col.analytics.rules);
        // Stage 3: every artifact byte-for-byte.
        assert_eq!(
            row.dashboard.render_html(),
            col.dashboard.render_html(),
            "dashboard HTML differs at {at}"
        );
        let row_names: Vec<&String> = row.artifacts.keys().collect();
        let col_names: Vec<&String> = col.artifacts.keys().collect();
        assert_eq!(row_names, col_names, "artifact set differs at {at}");
        for (name, content) in &row.artifacts {
            assert_eq!(
                content, &col.artifacts[name],
                "artifact {name} differs at {at}"
            );
        }
    }

    #[test]
    fn columnar_pipeline_matches_row_bitwise_across_seeds_and_threads() {
        for seed in SEEDS {
            let reference = run(seed, 1, Engine::Row);
            for threads in [1, 2, 8] {
                let columnar = run(seed, threads, Engine::Columnar);
                assert_identical(&reference, &columnar, seed, threads);
            }
        }
    }
}

mod components_25k {
    //! Per-stage differentials at the paper's collection scale (~25 000
    //! certificates), where a full-pipeline run would be dominated by
    //! the O(n²) DBSCAN sweep.

    use super::*;
    use epc_columnar::{DatasetColumnarExt, ScanStats};
    use epc_model::{wellknown as wk, Dataset};
    use epc_query::{
        group_by, group_by_columnar, mask_columnar, matching_rows_columnar, AggFn, Predicate, Query,
    };
    use std::sync::OnceLock;

    fn dataset(seed: u64) -> &'static Dataset {
        static CACHE: OnceLock<Vec<(u64, Dataset)>> = OnceLock::new();
        let all = CACHE.get_or_init(|| {
            SEEDS
                .iter()
                .map(|&s| (s, collection(25_000, s).dataset))
                .collect()
        });
        &all.iter().find(|(s, _)| *s == seed).unwrap().1
    }

    fn predicate_battery() -> Vec<Predicate> {
        vec![
            Predicate::between(wk::EPH, 50.0, 250.0),
            Predicate::eq(wk::EPC_CLASS, "C"),
            Predicate::between(wk::EPH, 50.0, 250.0).and(Predicate::eq(wk::EPC_CLASS, "C").not()),
            Predicate::eq(wk::HEATING_FUEL, "no-such-fuel").or(Predicate::between(
                wk::HEATED_VOLUME,
                0.0,
                1.0e4,
            )),
            Predicate::between(wk::ETA_H, 0.6, 0.8).and(Predicate::between(
                wk::ASPECT_RATIO,
                0.2,
                0.7,
            )),
            Predicate::True,
        ]
    }

    #[test]
    fn query_battery_matches_row_path() {
        for seed in SEEDS {
            let ds = dataset(seed);
            let store = ds.to_columns();
            for (i, pred) in predicate_battery().into_iter().enumerate() {
                let bound = pred.bind(ds.schema()).unwrap();
                let (col_mask, _) = mask_columnar(&pred, &store).unwrap();
                assert_eq!(
                    bound.mask(ds),
                    col_mask,
                    "mask differs for predicate #{i}, seed {seed}"
                );
                for query in [
                    Query::filtered(pred.clone()),
                    Query::filtered(pred.clone()).with_limit(37),
                ] {
                    let mut stats = ScanStats::default();
                    assert_eq!(
                        query.matching_rows(ds).unwrap(),
                        matching_rows_columnar(&query, &store, &mut stats).unwrap(),
                        "matching rows differ for predicate #{i}, seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn zone_maps_skip_provably_empty_blocks() {
        let ds = dataset(2024);
        let store = ds.to_columns();
        // A range far above any synthetic EPH value: every block's zone map
        // excludes it, so the scan must skip all blocks and match nothing.
        let pred = Predicate::between(wk::EPH, 1.0e9, 2.0e9);
        let query = Query::filtered(pred.clone());
        let mut stats = ScanStats::default();
        let rows = matching_rows_columnar(&query, &store, &mut stats).unwrap();
        assert_eq!(rows, query.matching_rows(ds).unwrap());
        assert!(rows.is_empty());
        assert!(stats.blocks_skipped > 0, "zone maps must actually skip");
        assert_eq!(stats.blocks_scanned, 0, "no block may need decoding");
    }

    #[test]
    fn group_by_matches_row_path() {
        const ALL_AGGS: [AggFn; 6] = [
            AggFn::Mean,
            AggFn::Count,
            AggFn::Min,
            AggFn::Max,
            AggFn::Median,
            AggFn::Std,
        ];
        for seed in SEEDS {
            let ds = dataset(seed);
            let store = ds.to_columns();
            for (group_attr, value_attr) in [
                (wk::EPC_CLASS, wk::EPH),
                (wk::DISTRICT, wk::EP_GLOBAL),
                (wk::HEATING_FUEL, wk::HEATED_VOLUME),
            ] {
                let row = group_by(ds, group_attr, value_attr, &ALL_AGGS).unwrap();
                let col = group_by_columnar(&store, group_attr, value_attr, &ALL_AGGS).unwrap();
                assert_eq!(row, col, "group-by {group_attr}/{value_attr}, seed {seed}");
            }
        }
    }

    #[test]
    fn cleaning_outcomes_match_row_path() {
        use epc_geo::address::Address;
        use epc_geo::cleaning::{
            clean_addresses_columnar, clean_addresses_degradable, AddressQuery, CleaningConfig,
        };
        use epc_geo::geocode::{QuotaGeocoder, SimulatedGeocoder};
        use epc_geo::point::GeoPoint;

        let c = collection(25_000, 2024);
        let s = c.dataset.schema();
        let (addr, hn, zip) = (
            s.require(wk::ADDRESS).unwrap(),
            s.require(wk::HOUSE_NUMBER).unwrap(),
            s.require(wk::ZIP_CODE).unwrap(),
        );
        let (lat, lon) = (
            s.require(wk::LATITUDE).unwrap(),
            s.require(wk::LONGITUDE).unwrap(),
        );
        let queries: Vec<AddressQuery> = (0..c.dataset.n_rows())
            .map(|row| AddressQuery {
                id: row,
                address: Address {
                    street: c.dataset.cat(row, addr).unwrap_or("").to_owned(),
                    house_number: c.dataset.cat(row, hn).map(str::to_owned),
                    zip: c.dataset.cat(row, zip).map(str::to_owned),
                },
                point: match (c.dataset.num(row, lat), c.dataset.num(row, lon)) {
                    (Some(a), Some(b)) => Some(GeoPoint { lat: a, lon: b }),
                    _ => None,
                },
            })
            .collect();
        let cfg = CleaningConfig::default();
        for threads in [1, 2, 8] {
            let runtime = RuntimeConfig::new(threads);
            // Fresh geocoders per engine: the quota counter is stateful.
            let geo_row = QuotaGeocoder::new(
                SimulatedGeocoder::new(c.city.street_map.clone(), 0.55, 0.0),
                500,
            );
            let geo_col = QuotaGeocoder::new(
                SimulatedGeocoder::new(c.city.street_map.clone(), 0.55, 0.0),
                500,
            );
            let (row_cleaned, row_report) = clean_addresses_degradable(
                &queries,
                &c.city.street_map,
                Some(&geo_row),
                &cfg,
                &runtime,
                None,
            );
            let (col_cleaned, col_report, dedup) = clean_addresses_columnar(
                &queries,
                &c.city.street_map,
                Some(&geo_col),
                &cfg,
                &runtime,
                None,
            );
            assert_eq!(
                row_cleaned, col_cleaned,
                "cleaned rows at {threads} threads"
            );
            assert_eq!(row_report, col_report, "report at {threads} threads");
            assert_eq!(dedup.total, queries.len());
            assert!(
                dedup.distinct_streets < dedup.total / 10,
                "dedup must collapse repeated streets ({} distinct of {})",
                dedup.distinct_streets,
                dedup.total
            );
        }
    }

    fn row_path_features(ds: &Dataset) -> (Vec<usize>, Vec<f64>) {
        let ids: Vec<_> = wk::CASE_STUDY_FEATURES
            .iter()
            .map(|a| ds.schema().require(a).unwrap())
            .collect();
        let mut rows = Vec::new();
        let mut data = Vec::new();
        for row in 0..ds.n_rows() {
            let vals: Vec<Option<f64>> = ids.iter().map(|&id| ds.num(row, id)).collect();
            if vals.iter().all(Option::is_some) {
                rows.push(row);
                data.extend(vals.into_iter().flatten());
            }
        }
        (rows, data)
    }

    #[test]
    fn kmeans_centroids_match_row_path() {
        use epc_mining::kmeans::{KMeans, KMeansConfig};
        use epc_mining::matrix::Matrix;

        for seed in SEEDS {
            let ds = dataset(seed);
            let store = ds.to_columns();
            let ids: Vec<_> = wk::CASE_STUDY_FEATURES
                .iter()
                .map(|a| ds.schema().require(a).unwrap())
                .collect();
            let (row_rows, row_data) = row_path_features(ds);
            let (col_rows, col_matrix) = epc_mining::columnar::feature_matrix(&store, &ids);
            assert_eq!(row_rows, col_rows, "gathered rows, seed {seed}");
            let row_matrix = Matrix::from_vec(row_data, row_rows.len(), ids.len());
            assert_eq!(
                row_matrix
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                col_matrix
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "feature matrix bits, seed {seed}"
            );
            let kmeans = KMeans::new(KMeansConfig::default());
            let runtime = RuntimeConfig::new(2);
            let row_model = kmeans.fit_with_runtime(&row_matrix, &runtime).unwrap();
            let col_model = kmeans.fit_with_runtime(&col_matrix, &runtime).unwrap();
            assert_eq!(row_model.centroids, col_model.centroids, "seed {seed}");
            assert_eq!(row_model.assignments, col_model.assignments, "seed {seed}");
        }
    }

    #[test]
    fn dbscan_labels_match_row_path_small_n() {
        use epc_mining::dbscan::{dbscan_with_runtime, DbscanConfig};
        use epc_mining::matrix::Matrix;

        let c = collection(2_000, 7);
        let ds = &c.dataset;
        let store = ds.to_columns();
        let ids: Vec<_> = wk::CASE_STUDY_FEATURES
            .iter()
            .map(|a| ds.schema().require(a).unwrap())
            .collect();
        let (row_rows, row_data) = row_path_features(ds);
        let (col_rows, col_matrix) = epc_mining::columnar::feature_matrix(&store, &ids);
        assert_eq!(row_rows, col_rows);
        let row_matrix = Matrix::from_vec(row_data, row_rows.len(), ids.len());
        let cfg = DbscanConfig {
            eps: 0.8,
            min_points: 5,
        };
        for threads in [1, 2, 8] {
            let runtime = RuntimeConfig::new(threads);
            assert_eq!(
                dbscan_with_runtime(&row_matrix, &cfg, &runtime),
                dbscan_with_runtime(&col_matrix, &cfg, &runtime),
                "DBSCAN at {threads} threads"
            );
        }
    }
}

mod proptests {
    //! Encode/decode round-trips, zone-map soundness, bitmap algebra.

    use epc_columnar::{Bitmap, CodeBlock, NumBlock, NumericColumn, ScanStats, SortedDict};
    use proptest::prelude::*;

    /// Mixed-regime f64 slots: integral (delta + bit-pack), constant
    /// runs (RLE), and raw bit patterns (plain — including NaN payloads,
    /// infinities, and -0.0, which must survive bit-for-bit).
    fn slot_value(kind: u8, small: i64, raw: u64) -> f64 {
        match kind % 4 {
            0 => small as f64,
            1 => 42.5,
            2 => f64::from_bits(raw),
            _ => (small as f64) * 1.0e6,
        }
    }

    fn bits(slots: &[Option<f64>]) -> Vec<Option<u64>> {
        slots.iter().map(|s| s.map(f64::to_bits)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn num_block_round_trips_bitwise(
            raw in prop::collection::vec(
                prop::option::of((0u8..4, -4096i64..4096, 0u64..u64::MAX)),
                0..700,
            )
        ) {
            let slots: Vec<Option<f64>> = raw
                .into_iter()
                .map(|s| s.map(|(k, i, r)| slot_value(k, i, r)))
                .collect();
            let block = NumBlock::encode(&slots);
            let mut decoded = Vec::new();
            block.decode_into(&mut decoded);
            prop_assert_eq!(bits(&decoded), bits(&slots));
            prop_assert!(block.bytes_encoded() <= block.bytes_plain().max(64));
        }

        #[test]
        fn code_block_round_trips(
            slots in prop::collection::vec(prop::option::of(0u32..12), 0..700)
        ) {
            let block = CodeBlock::encode(&slots);
            let mut decoded = Vec::new();
            block.decode_into(&mut decoded);
            prop_assert_eq!(decoded, slots);
        }

        #[test]
        fn dictionary_round_trips_and_is_input_order_invariant(
            labels in prop::collection::vec("[a-d]{0,3}", 0..60),
            rot in 0usize..59,
        ) {
            let dict = SortedDict::from_labels(labels.iter().map(String::as_str));
            // Round-trip: every label resolves to an id that resolves back.
            for label in &labels {
                let id = dict.id_of(label).expect("inserted label");
                prop_assert_eq!(dict.label(id), Some(label.as_str()));
            }
            // Ids are assigned in sorted label order.
            let sorted: Vec<&str> = dict.labels().iter().map(String::as_str).collect();
            let mut expect = sorted.clone();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(sorted, expect);
            // Input order cannot leak into the encoding.
            let mut rotated = labels.clone();
            if !rotated.is_empty() {
                let mid = rot % rotated.len();
                rotated.rotate_left(mid);
            }
            let dict2 = SortedDict::from_labels(rotated.iter().map(String::as_str));
            prop_assert_eq!(dict.labels(), dict2.labels());
        }

        #[test]
        fn zone_map_pruning_loses_no_match(
            raw in prop::collection::vec(
                prop::option::of((0u8..4, -4096i64..4096, 0u64..u64::MAX)),
                0..2600,
            ),
            lo in -5000.0f64..5000.0,
            width in 0.0f64..2000.0,
        ) {
            let slots: Vec<Option<f64>> = raw
                .into_iter()
                .map(|s| s.map(|(k, i, r)| slot_value(k, i, r)))
                .collect();
            let col = NumericColumn::from_slots(&slots);
            let hi = lo + width;
            let mut stats = ScanStats::default();
            let got = epc_columnar::kernels::num_range(&col, Some(lo), Some(hi), &mut stats);
            let naive: Vec<bool> = slots
                .iter()
                .map(|s| s.map(|v| v >= lo && v <= hi).unwrap_or(false))
                .collect();
            // Bit-equality with the naive filter: a skipped block that
            // contained a match would show up as a lost `true` here.
            prop_assert_eq!(got.to_bools(), naive);
            prop_assert_eq!(
                (stats.blocks_scanned + stats.blocks_skipped) as usize,
                col.blocks().len()
            );
        }

        #[test]
        fn bitmap_algebra_matches_naive(
            pair in prop::collection::vec((0u8..2, 0u8..2), 0..300)
        ) {
            let (a_bools, b_bools): (Vec<bool>, Vec<bool>) =
                pair.into_iter().map(|(x, y)| (x == 1, y == 1)).unzip();
            let a = Bitmap::from_bools(&a_bools);
            let b = Bitmap::from_bools(&b_bools);
            let zip = |f: fn(bool, bool) -> bool| -> Vec<bool> {
                a_bools.iter().zip(&b_bools).map(|(&x, &y)| f(x, y)).collect()
            };
            prop_assert_eq!(a.and(&b).to_bools(), zip(|x, y| x && y));
            prop_assert_eq!(a.or(&b).to_bools(), zip(|x, y| x || y));
            prop_assert_eq!(
                a.not().to_bools(),
                a_bools.iter().map(|&x| !x).collect::<Vec<_>>()
            );
            // ones() enumerates exactly the set bits, in order.
            let ones: Vec<usize> = a.ones().collect();
            let expect: Vec<usize> = a_bools
                .iter()
                .enumerate()
                .filter_map(|(i, &x)| x.then_some(i))
                .collect();
            prop_assert_eq!(ones, expect);
        }
    }
}
