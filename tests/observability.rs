//! Golden-trace observability tests (ISSUE 5): the logical event stream
//! produced by an observed pipeline run must be bitwise identical for any
//! thread budget, and must match the checked-in golden file.
//!
//! Under a `ManualClock` even the wall-clock fields are deterministic, so
//! the *full* trace (timestamps included) is also asserted identical
//! across thread budgets.
//!
//! Regenerate the golden file after an intentional trace-schema change:
//!
//! ```text
//! INDICE_UPDATE_GOLDEN=1 cargo test -p indice --test observability
//! ```

use epc_obs::Obs;
use epc_query::Stakeholder;
use epc_runtime::{ManualClock, RuntimeConfig};
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::{Indice, SupervisedOutput};

const GOLDEN: &str = include_str!("golden/observability_trace.jsonl");
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/observability_trace.jsonl"
);

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 700,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

fn engine_at(threads: usize) -> Indice {
    Indice::from_collection(collection(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads))
}

/// One observed run under a `ManualClock` advancing 7 ms per sample.
/// Returns (full jsonl, logical jsonl, metrics text, output).
fn observed_run(threads: usize) -> (String, String, String, SupervisedOutput) {
    let clock = ManualClock::advancing(7);
    let obs = Obs::new(&clock);
    let out = engine_at(threads).run_observed(Stakeholder::PublicAdministration, &obs);
    (
        obs.tracer().to_jsonl(),
        obs.tracer().logical_jsonl(),
        obs.metrics().expose_text(),
        out,
    )
}

#[test]
fn golden_trace_is_bitwise_identical_across_thread_budgets() {
    let (full_1, logical_1, metrics_1, out_1) = observed_run(1);
    assert!(matches!(
        out_1.outcome,
        indice::pipeline::RunOutcome::Complete | indice::pipeline::RunOutcome::Degraded(_)
    ));
    assert!(!logical_1.is_empty());

    if std::env::var_os("INDICE_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &logical_1).expect("writing golden trace");
    }

    for threads in [2usize, 8] {
        let (full, logical, metrics, out) = observed_run(threads);
        // Full stream: ManualClock makes even wall_ms thread-invariant.
        assert_eq!(full, full_1, "full trace diverged at threads = {threads}");
        assert_eq!(
            logical, logical_1,
            "logical trace diverged at threads = {threads}"
        );
        assert_eq!(
            metrics, metrics_1,
            "metrics diverged at threads = {threads}"
        );
        // And the pipeline products themselves stay identical.
        assert_eq!(out.artifacts, out_1.artifacts, "threads = {threads}");
    }

    // The checked-in golden file is the logical projection.
    assert_eq!(
        logical_1, GOLDEN,
        "logical trace no longer matches tests/golden/observability_trace.jsonl; \
         rerun with INDICE_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

#[test]
fn wall_time_is_present_in_full_and_absent_in_logical_stream() {
    let (full, logical, _, _) = observed_run(1);
    assert!(
        full.contains("\"wall_ms\""),
        "full stream carries wall time"
    );
    assert!(
        !logical.contains("\"wall_ms\""),
        "logical stream must exclude wall time"
    );
    // Every line carries a sequence number, dense from zero.
    for (i, line) in logical.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\": {i}, ")),
            "line {i} out of sequence: {line}"
        );
    }
}

#[test]
fn observed_run_records_every_layer() {
    let clock = ManualClock::advancing(3);
    let obs = Obs::new(&clock);
    let out = engine_at(2).run_observed(Stakeholder::PublicAdministration, &obs);
    assert!(out.outcome.produced_output());

    let trace = obs.tracer().to_jsonl();
    for name in [
        "stage:preprocess",
        "stage:analytics",
        "stage:dashboard",
        "preprocess:cleaning",
        "preprocess:dbscan",
        "preprocess:univariate",
        "analytics:correlation",
        "kmeans:elbow",
        "kmeans:round",
        "apriori:level",
        "dashboard:main",
        "dashboard:zoom",
    ] {
        assert!(trace.contains(&format!("\"name\": \"{name}\"")), "{name}");
    }

    let m = obs.metrics();
    assert!(m.counter("stage_preprocess_records_in") > 0);
    assert!(m.counter("stage_dashboard_records_out") > 0);
    assert!(m.counter("kmeans_iterations") > 0);
    assert!(m.counter("apriori_candidates") > 0);
    assert!(m.counter("rules_mined") > 0);
    assert!(m.counter("dashboard_markers_zoom") > 0);
    assert_eq!(
        m.gauge("kmeans_chosen_k"),
        out.analytics.as_ref().map(|a| a.chosen_k as i64)
    );
    let h = m.histogram("stage_records_out").expect("stage histogram");
    assert_eq!(h.count(), 3, "one observation per stage");
}

#[test]
fn observed_products_match_unobserved_run() {
    let engine = engine_at(2);
    let plain = engine.run_supervised(Stakeholder::PublicAdministration);
    let clock = ManualClock::advancing(5);
    let obs = Obs::new(&clock);
    let observed = engine.run_observed(Stakeholder::PublicAdministration, &obs);
    assert_eq!(plain.artifacts, observed.artifacts);
    assert_eq!(
        plain.analytics.as_ref().map(|a| a.chosen_k),
        observed.analytics.as_ref().map(|a| a.chosen_k)
    );
    assert_eq!(plain.quarantine.len(), observed.quarantine.len());
}

#[test]
fn durable_resume_counters_distinguish_hits_from_replays() {
    use indice::durable::DurableOptions;

    let dir = std::env::temp_dir().join(format!("indice_obs_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = engine_at(1);

    // Fresh run: everything replays, every stage commits checkpoints.
    let clock = ManualClock::advancing(2);
    let obs = Obs::new(&clock);
    let opts = DurableOptions::new(&dir).with_obs(&obs);
    let out = engine
        .run_durable(Stakeholder::PublicAdministration, &opts)
        .expect("durable run");
    assert!(out.outcome.produced_output());
    let m = obs.metrics();
    assert_eq!(m.counter("resume_replayed"), 3);
    assert_eq!(m.counter("resume_journal_hits"), 0);
    assert!(m.counter("checkpoint_files_total") >= 3);
    assert!(m.counter("checkpoint_bytes_total") > 0);

    // Resumed run: everything is a journal hit, nothing replays.
    let clock2 = ManualClock::advancing(2);
    let obs2 = Obs::new(&clock2);
    let opts2 = DurableOptions::new(&dir).resuming().with_obs(&obs2);
    let out2 = engine
        .run_durable(Stakeholder::PublicAdministration, &opts2)
        .expect("resumed run");
    assert!(out2.outcome.produced_output());
    let m2 = obs2.metrics();
    assert_eq!(m2.counter("resume_journal_hits"), 3);
    assert_eq!(m2.counter("resume_replayed"), 0);
    assert!(m2.counter("resume_rehydrated_bytes") > 0);
    assert!(obs2
        .tracer()
        .to_jsonl()
        .contains("\"name\": \"journal:hit\""));

    let _ = std::fs::remove_dir_all(&dir);
}
