//! Integration of the §2.1.1 cleaning algorithm against synthetic ground
//! truth: reconstruction accuracy, φ monotonicity, and the geocoder-quota
//! trade-off the paper describes.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_geo::address::Address;
use epc_geo::cleaning::{clean_addresses, AddressQuery, CleaningConfig};
use epc_geo::geocode::{Geocoder, QuotaGeocoder, SimulatedGeocoder};
use epc_geo::point::GeoPoint;
use epc_model::wellknown as wk;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};

fn noisy_collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 1_200,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 4,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(
        &mut c,
        &NoiseConfig {
            typo_rate: 0.3,
            abbreviation_rate: 0.2,
            zip_missing_rate: 0.1,
            zip_wrong_rate: 0.03,
            coord_missing_rate: 0.08,
            coord_wrong_rate: 0.06,
            univariate_outlier_rate: 0.0,
            multivariate_outlier_rate: 0.0,
            seed: 11,
        },
    );
    c
}

fn queries_of(c: &SyntheticCollection) -> Vec<AddressQuery> {
    let s = c.dataset.schema();
    let addr = s.require(wk::ADDRESS).unwrap();
    let hn = s.require(wk::HOUSE_NUMBER).unwrap();
    let zip = s.require(wk::ZIP_CODE).unwrap();
    let lat = s.require(wk::LATITUDE).unwrap();
    let lon = s.require(wk::LONGITUDE).unwrap();
    (0..c.dataset.n_rows())
        .map(|row| AddressQuery {
            id: row,
            address: Address {
                street: c.dataset.cat(row, addr).unwrap_or("").to_owned(),
                house_number: c.dataset.cat(row, hn).map(str::to_owned),
                zip: c.dataset.cat(row, zip).map(str::to_owned),
            },
            point: match (c.dataset.num(row, lat), c.dataset.num(row, lon)) {
                (Some(a), Some(b)) => Some(GeoPoint { lat: a, lon: b }),
                _ => None,
            },
        })
        .collect()
}

fn street_accuracy(cleaned: &[epc_geo::cleaning::CleanedAddress], c: &SyntheticCollection) -> f64 {
    let ok = cleaned
        .iter()
        .filter(|x| x.address.street == c.truth.streets[x.id])
        .count();
    ok as f64 / cleaned.len().max(1) as f64
}

#[test]
fn default_phi_reconstructs_most_streets() {
    let c = noisy_collection();
    let queries = queries_of(&c);
    let (cleaned, report) = clean_addresses(
        &queries,
        &c.city.street_map,
        None,
        &CleaningConfig::default(),
    );
    let acc = street_accuracy(&cleaned, &c);
    assert!(acc > 0.9, "street accuracy {acc}");
    assert_eq!(report.total, queries.len());
    assert!(report.by_reference as f64 > 0.9 * report.total as f64);
}

#[test]
fn coordinates_are_restored_close_to_truth() {
    let c = noisy_collection();
    let queries = queries_of(&c);
    let (cleaned, _) = clean_addresses(
        &queries,
        &c.city.street_map,
        None,
        &CleaningConfig::default(),
    );
    let mut errors_m = Vec::new();
    for x in &cleaned {
        if let Some(p) = x.point {
            errors_m.push(p.haversine_m(&c.truth.points[x.id]));
        }
    }
    let median = {
        let mut v = errors_m.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    // Nearest-civic interpolation keeps errors at street scale.
    assert!(median < 300.0, "median coordinate error {median} m");
}

#[test]
fn stricter_phi_resolves_fewer_by_reference() {
    let c = noisy_collection();
    let queries = queries_of(&c);
    let mut prev = usize::MAX;
    for phi in [0.7, 0.8, 0.9, 0.97] {
        let cfg = CleaningConfig {
            phi,
            ..CleaningConfig::default()
        };
        let (_, report) = clean_addresses(&queries, &c.city.street_map, None, &cfg);
        assert!(
            report.by_reference <= prev,
            "phi {phi}: {} > {prev}",
            report.by_reference
        );
        prev = report.by_reference;
    }
}

#[test]
fn geocoder_quota_rescues_unresolved_addresses() {
    let c = noisy_collection();
    let queries = queries_of(&c);
    // Very strict φ so the reference map misses the typo-heavy tail.
    let cfg = CleaningConfig {
        phi: 0.97,
        ..CleaningConfig::default()
    };
    let (_, without) = clean_addresses(&queries, &c.city.street_map, None, &cfg);
    assert!(
        without.unresolved > 0,
        "need unresolved addresses for the test"
    );

    let geocoder = QuotaGeocoder::new(
        SimulatedGeocoder::new(c.city.street_map.clone(), 0.55, 0.0),
        10_000,
    );
    let (_, with) = clean_addresses(&queries, &c.city.street_map, Some(&geocoder), &cfg);
    assert!(with.unresolved < without.unresolved);
    assert!(with.by_geocoder > 0);
    assert_eq!(with.geocoder_requests, geocoder.requests_made());
    // Quota respected: only unresolved-by-reference addresses hit the API.
    assert!(geocoder.requests_made() <= without.unresolved);
}

#[test]
fn abbreviated_streets_are_exact_matches_after_normalization() {
    let c = noisy_collection();
    let s = c.dataset.schema();
    let addr = s.require(wk::ADDRESS).unwrap();
    // Find an abbreviated, non-typo row.
    let row = (0..c.dataset.n_rows()).find(|&r| {
        let street = c.dataset.cat(r, addr).unwrap_or("");
        (street.starts_with("C.so ") || street.starts_with("V. "))
            && epc_geo::address::normalize_street(street)
                == epc_geo::address::normalize_street(&c.truth.streets[r])
    });
    let Some(row) = row else {
        return; // seed produced no such row; nothing to check
    };
    let queries = queries_of(&c);
    let (cleaned, _) = clean_addresses(
        &queries[row..=row],
        &c.city.street_map,
        None,
        &CleaningConfig::default(),
    );
    match cleaned[0].outcome {
        epc_geo::cleaning::CleaningOutcome::ResolvedByReference { similarity } => {
            assert_eq!(similarity, 1.0, "abbreviation must normalize to exact")
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(cleaned[0].address.street, c.truth.streets[row]);
}

#[test]
fn unresolved_never_invents_data() {
    let c = noisy_collection();
    let map = &c.city.street_map;
    let garbage = AddressQuery {
        id: 0,
        address: Address::new("zzz qqq xxx", Some("1"), None),
        point: None,
    };
    let (cleaned, report) = clean_addresses(
        std::slice::from_ref(&garbage),
        map,
        None,
        &CleaningConfig::default(),
    );
    assert_eq!(report.unresolved, 1);
    assert_eq!(cleaned[0].address, garbage.address);
    assert_eq!(cleaned[0].point, None);
    assert_eq!(cleaned[0].district, None);
}
