//! Fleet coordinator chaos suite (PR 7).
//!
//! The contract under test: a multi-city fleet run is a set of
//! *supervised, isolated* shards. Faults aimed at one city — a stage
//! kill, record corruption, even exhausting the city's whole retry
//! budget — must leave every other city's on-disk output **byte-
//! identical** to a fault-free run, at any thread count. A coordinator
//! that crashes between shard commits must resume from the fleet
//! journal, replay only the unfinished cities, and finish with a fleet
//! directory byte-identical to an uninterrupted run's.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_coord::{CoordCrash, FleetOutcome, RetryPolicy, ShardStatus};
use epc_faults::{CityFaultSpec, FleetFaults, StageKillSpec};
use epc_runtime::{ManualClock, RuntimeConfig};
use epc_synth::FleetConfig;
use indice::fleet::{run_fleet, FleetRunOptions, FleetRunOutput, CITIES_DIR};
use indice::IndiceError;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

/// A fresh, unique fleet directory under the system temp dir.
fn fleet_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indice-fleet-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT_DIR.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small 3-city plan (sizes stay test-friendly on one core).
fn plan() -> FleetConfig {
    FleetConfig {
        n_cities: 3,
        records_per_city: 300,
        seed: 41,
    }
}

fn city_id(index: usize) -> String {
    plan().city(index).id
}

/// Every file under `dir`, relative path → content bytes.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Runs a fleet with the given knobs, returning the output.
fn run_with(
    dir: &Path,
    threads: usize,
    resume: bool,
    faults: Option<&FleetFaults>,
    crash: Option<CoordCrash>,
    max_attempts: u32,
) -> Result<FleetRunOutput, IndiceError> {
    let clock = ManualClock::advancing(1_000);
    let mut opts = FleetRunOptions::new(dir, plan(), &clock);
    opts.resume = resume;
    opts.policy = RetryPolicy {
        max_attempts,
        ..RetryPolicy::default()
    };
    opts.faults = faults;
    opts.crash = crash;
    opts.runtime = RuntimeConfig::new(threads);
    run_fleet(&opts)
}

/// A fault-free baseline fleet at the given thread count.
fn baseline(tag: &str, threads: usize) -> (PathBuf, FleetRunOutput) {
    let dir = fleet_dir(tag);
    let out = run_with(&dir, threads, false, None, None, 2).expect("baseline fleet");
    assert!(matches!(out.result.outcome, FleetOutcome::Complete));
    (dir, out)
}

#[test]
fn clean_fleet_is_thread_invariant() {
    let (dir1, out) = baseline("clean-t1", 1);
    assert_eq!(out.result.shards.len(), 3);
    for shard in &out.result.shards {
        assert!(matches!(shard.status, ShardStatus::Committed));
        assert_eq!(shard.attempts, 1);
    }
    assert_eq!(out.metrics.counters.get("fleet_cities_committed"), Some(&3));
    let reference = tree(&dir1);
    for threads in [2, 8] {
        let (dir_n, _) = baseline(&format!("clean-t{threads}"), threads);
        assert_eq!(
            tree(&dir_n),
            reference,
            "fleet tree must be bitwise thread-invariant at {threads} threads"
        );
    }
}

#[test]
fn city_kill_on_attempt_one_recovers_within_budget() {
    let victim = city_id(1);
    let faults = FleetFaults::new(9).with_city(
        &victim,
        CityFaultSpec {
            kill: Some(StageKillSpec {
                stage: "preprocess".to_owned(),
                attempt: Some(1),
            }),
            ..CityFaultSpec::default()
        },
    );
    let dir = fleet_dir("kill-recover");
    let out = run_with(&dir, 2, false, Some(&faults), None, 2).expect("fleet");
    assert!(matches!(out.result.outcome, FleetOutcome::Complete));
    for shard in &out.result.shards {
        let expected = if shard.city == victim { 2 } else { 1 };
        assert_eq!(shard.attempts, expected, "{}", shard.city);
        assert!(matches!(shard.status, ShardStatus::Committed));
    }
    // The recovered attempt ran fresh, so even the victim's output is
    // byte-identical to a fault-free run's.
    let (base_dir, _) = baseline("kill-recover-base", 2);
    assert_eq!(
        tree(&dir.join(CITIES_DIR)),
        tree(&base_dir.join(CITIES_DIR)),
        "a recovered shard leaves no trace of its failed attempt"
    );
}

#[test]
fn city_kill_every_attempt_degrades_and_isolates() {
    let victim = city_id(1);
    let faults = FleetFaults::new(9).with_city(
        &victim,
        CityFaultSpec {
            kill: Some(StageKillSpec {
                stage: "preprocess".to_owned(),
                attempt: None,
            }),
            ..CityFaultSpec::default()
        },
    );
    let mut reference: Option<BTreeMap<String, Vec<u8>>> = None;
    for threads in THREAD_MATRIX {
        let dir = fleet_dir(&format!("kill-degrade-t{threads}"));
        let out = run_with(&dir, threads, false, Some(&faults), None, 2).expect("fleet");
        match &out.result.outcome {
            FleetOutcome::Degraded { failed_cities, .. } => {
                assert_eq!(failed_cities, std::slice::from_ref(&victim));
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(out.result.outcome.exit_code(), 3);
        assert_eq!(out.metrics.counters.get("fleet_cities_abandoned"), Some(&1));
        assert_eq!(out.metrics.counters.get("fleet_retries_total"), Some(&1));
        let victim_shard = out.result.shards.iter().find(|s| s.city == victim).unwrap();
        assert_eq!(victim_shard.attempts, 2, "budget exhausted");
        assert!(matches!(victim_shard.status, ShardStatus::Abandoned { .. }));
        // The dashboard carries an explicit unavailable panel.
        let html = fs::read_to_string(dir.join("fleet_dashboard.html")).unwrap();
        assert!(html.contains("city unavailable"), "{html}");

        // Isolation proof: every surviving city is byte-identical to the
        // fault-free baseline at the same thread count.
        let (base_dir, _) = baseline(&format!("kill-degrade-base-t{threads}"), threads);
        for index in [0usize, 2] {
            let id = city_id(index);
            assert_eq!(
                tree(&dir.join(CITIES_DIR).join(&id)),
                tree(&base_dir.join(CITIES_DIR).join(&id)),
                "city {id} must be untouched by city {victim}'s faults"
            );
        }
        // And the faulted fleet itself is thread-invariant.
        let full = tree(&dir);
        match &reference {
            None => reference = Some(full),
            Some(reference) => assert_eq!(&full, reference, "threads = {threads}"),
        }
    }
}

#[test]
fn city_corruption_is_isolated_to_its_city() {
    let victim = city_id(2);
    let faults = FleetFaults::new(5).with_city(
        &victim,
        CityFaultSpec {
            record_rate: 0.3,
            ..CityFaultSpec::default()
        },
    );
    for threads in THREAD_MATRIX {
        let dir = fleet_dir(&format!("corrupt-t{threads}"));
        let out = run_with(&dir, threads, false, Some(&faults), None, 2).expect("fleet");
        // Corruption is quarantined, not fatal: the shard still commits.
        assert!(matches!(out.result.outcome, FleetOutcome::Complete));
        let (base_dir, _) = baseline(&format!("corrupt-base-t{threads}"), threads);
        for index in [0usize, 1] {
            let id = city_id(index);
            assert_eq!(
                tree(&dir.join(CITIES_DIR).join(&id)),
                tree(&base_dir.join(CITIES_DIR).join(&id)),
                "city {id} must be untouched by city {victim}'s corruption"
            );
        }
        assert_ne!(
            tree(&dir.join(CITIES_DIR).join(&victim)),
            tree(&base_dir.join(CITIES_DIR).join(&victim)),
            "the corrupted city's outputs must actually differ"
        );
        let victim_shard = out.result.shards.iter().find(|s| s.city == victim).unwrap();
        assert_ne!(
            victim_shard.summary.get("quarantined").map(String::as_str),
            Some("0"),
            "corruption must show up in the victim's quarantine"
        );
    }
}

/// Runs the crash → resume loop for one crash point and asserts the
/// resumed fleet is byte-identical to an uninterrupted one, with the
/// journal-verified hit/replay split.
fn assert_crash_resume(tag: &str, crash: CoordCrash, expect_hits: &[usize], threads: usize) {
    let (base_dir, _) = baseline(&format!("{tag}-base"), threads);
    let dir = fleet_dir(tag);
    let err = run_with(&dir, threads, false, None, Some(crash), 2)
        .expect_err("injected coordinator crash must surface as an error");
    match err {
        IndiceError::CrashInjected { ref stage, .. } => assert_eq!(stage, "fleet"),
        other => panic!("expected CrashInjected, got {other:?}"),
    }

    let out = run_with(&dir, threads, true, None, None, 2).expect("resume");
    assert!(matches!(out.result.outcome, FleetOutcome::Complete));
    let hits: Vec<String> = expect_hits.iter().map(|&i| city_id(i)).collect();
    assert_eq!(out.result.journal_hits, hits, "journal-verified hit set");
    let replayed: Vec<String> = (0..3)
        .map(city_id)
        .filter(|id| !hits.contains(id))
        .collect();
    assert_eq!(out.result.replayed, replayed, "replay set");
    for shard in &out.result.shards {
        assert_eq!(
            shard.from_journal,
            hits.contains(&shard.city),
            "{}",
            shard.city
        );
    }
    assert_eq!(
        tree(&dir),
        tree(&base_dir),
        "resumed fleet must be byte-identical to an uninterrupted one"
    );
}

#[test]
fn coordinator_crash_between_shard_commits_resumes_byte_identically() {
    for threads in THREAD_MATRIX {
        assert_crash_resume(
            &format!("crash-after0-t{threads}"),
            CoordCrash::AfterCommit(0),
            &[0],
            threads,
        );
    }
}

#[test]
fn coordinator_crash_before_last_city_resumes_byte_identically() {
    assert_crash_resume("crash-before2", CoordCrash::BeforeCity(2), &[0, 1], 2);
}

#[test]
fn abandoned_city_replays_with_a_fresh_budget_on_resume() {
    let victim = city_id(0);
    // Kill `preprocess` — the one stage the shard cannot degrade around —
    // so the city exhausts its budget and is abandoned. (An `analytics`
    // kill would merely degrade the shard, which still commits.)
    let faults = FleetFaults::new(9).with_city(
        &victim,
        CityFaultSpec {
            kill: Some(StageKillSpec {
                stage: "preprocess".to_owned(),
                attempt: None,
            }),
            ..CityFaultSpec::default()
        },
    );
    let dir = fleet_dir("abandon-resume");
    let out = run_with(&dir, 2, false, Some(&faults), None, 2).expect("fleet");
    assert!(matches!(out.result.outcome, FleetOutcome::Degraded { .. }));

    // Resume without the fault plan: the journal fingerprint changes, so
    // *every* city replays (committed shards included) rather than
    // trusting results produced under a different fault plan.
    let out = run_with(&dir, 2, true, None, None, 2).expect("resume");
    assert!(matches!(out.result.outcome, FleetOutcome::Complete));
    assert!(out.result.journal_hits.is_empty());
    assert_eq!(out.result.replayed.len(), 3);

    // Resume *with* the same fault plan: committed shards are journal
    // hits; only the abandoned city replays (and fails again).
    let dir2 = fleet_dir("abandon-resume-same");
    let out = run_with(&dir2, 2, false, Some(&faults), None, 2).expect("fleet");
    assert!(matches!(out.result.outcome, FleetOutcome::Degraded { .. }));
    let out = run_with(&dir2, 2, true, Some(&faults), None, 2).expect("resume");
    assert!(matches!(out.result.outcome, FleetOutcome::Degraded { .. }));
    assert_eq!(out.result.journal_hits, vec![city_id(1), city_id(2)]);
    assert_eq!(out.result.replayed, vec![victim.clone()]);
    let victim_shard = out.result.shards.iter().find(|s| s.city == victim).unwrap();
    assert_eq!(
        victim_shard.attempts, 2,
        "replayed city gets a fresh budget"
    );
}

#[test]
fn merged_metrics_conserve_per_city_counters() {
    let (dir, out) = baseline("metrics-merge", 2);
    // The merged snapshot equals the sum of the per-city snapshots for
    // every counter (the conservation property of the metrics merge).
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for index in 0..3 {
        let text = fs::read_to_string(
            dir.join(CITIES_DIR)
                .join(city_id(index))
                .join("metrics.json"),
        )
        .unwrap();
        #[derive(serde::Deserialize)]
        struct CountersOnly {
            counters: BTreeMap<String, u64>,
        }
        let snapshot: CountersOnly = serde_json::from_str(&text).unwrap();
        for (name, v) in snapshot.counters {
            *summed.entry(name).or_default() += v;
        }
    }
    for (name, expected) in &summed {
        assert_eq!(
            out.metrics.counters.get(name),
            Some(expected),
            "counter {name} must be conserved across the merge"
        );
    }
    // Fleet-level counters ride on top.
    assert_eq!(out.metrics.counters.get("fleet_cities_total"), Some(&3));
    assert_eq!(out.metrics.counters.get("fleet_retries_total"), Some(&0));
}
