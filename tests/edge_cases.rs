//! Edge-case and failure-injection integration tests: the pipeline must
//! degrade gracefully — clear errors, never panics — on hostile inputs.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::{wellknown as wk, Dataset, Value};
use epc_query::Stakeholder;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::{AnalyticsConfig, IndiceConfig, KSelection};
use indice::engine::Indice;
use indice::IndiceError;

fn tiny_city() -> CityConfig {
    CityConfig {
        n_districts: 2,
        neighbourhoods_per_district: 2,
        streets_per_neighbourhood: 2,
        houses_per_street: 5,
        ..CityConfig::default()
    }
}

fn collection(n: usize) -> SyntheticCollection {
    EpcGenerator::new(SynthConfig {
        n_records: n,
        city: tiny_city(),
        ..SynthConfig::default()
    })
    .generate()
}

#[test]
fn minimal_collection_still_runs() {
    // Small but above every internal minimum (clustering needs complete
    // rows; elbow needs k_max < n).
    let c = collection(60);
    let engine = Indice::from_collection(
        c,
        IndiceConfig {
            building_category: None,
            analytics: AnalyticsConfig {
                k: KSelection::Elbow { k_min: 2, k_max: 5 },
                ..AnalyticsConfig::default()
            },
            ..IndiceConfig::default()
        },
    );
    let out = engine
        .run(Stakeholder::Citizen)
        .expect("small run succeeds");
    assert!(out.analytics.chosen_k >= 2);
}

#[test]
fn all_features_missing_is_a_clean_error() {
    let mut c = collection(100);
    let s = c.dataset.schema_arc();
    for attr in wk::CASE_STUDY_FEATURES {
        let id = s.require(attr).unwrap();
        for row in 0..c.dataset.n_rows() {
            c.dataset.set_value(row, id, Value::Missing).unwrap();
        }
    }
    let engine = Indice::from_collection(
        c,
        IndiceConfig {
            building_category: None,
            ..IndiceConfig::default()
        },
    );
    let err = engine.run(Stakeholder::Citizen).unwrap_err();
    assert!(
        matches!(err, IndiceError::Clustering(_)),
        "expected a clustering error, got {err}"
    );
}

#[test]
fn every_address_garbage_still_produces_a_dashboard() {
    let mut c = collection(120);
    let s = c.dataset.schema_arc();
    let addr = s.require(wk::ADDRESS).unwrap();
    for row in 0..c.dataset.n_rows() {
        c.dataset
            .set_value(row, addr, Value::cat(format!("zzz{row}qqq")))
            .unwrap();
    }
    let engine = Indice::from_collection(
        c,
        IndiceConfig {
            building_category: None,
            geocoder_quota: 0, // no rescue
            ..IndiceConfig::default()
        },
    );
    let out = engine.run(Stakeholder::Citizen).expect("run survives");
    // Nothing resolves, but coordinates were already valid, so maps and
    // analytics still work.
    assert_eq!(out.preprocess.cleaning.by_reference, 0);
    assert_eq!(
        out.preprocess.cleaning.unresolved,
        out.preprocess.cleaning.total
    );
    assert!(out.dashboard.n_panels() >= 3);
}

#[test]
fn constant_feature_does_not_break_clustering_or_correlation() {
    let mut c = collection(150);
    let s = c.dataset.schema_arc();
    let id = s.require(wk::ASPECT_RATIO).unwrap();
    for row in 0..c.dataset.n_rows() {
        c.dataset.set_value(row, id, Value::num(0.5)).unwrap();
    }
    let out = indice::analytics::analyze(
        &c.dataset,
        &IndiceConfig {
            building_category: None,
            ..IndiceConfig::default()
        },
    )
    .expect("constant feature tolerated");
    // Correlations with the constant feature are undefined, not crashes.
    let idx = out
        .correlation
        .names
        .iter()
        .position(|n| n == wk::ASPECT_RATIO)
        .unwrap();
    for j in 0..out.correlation.len() {
        if j != idx {
            assert!(out.correlation.get(idx, j).is_nan());
        }
    }
    assert!(out.chosen_k >= 2);
}

#[test]
fn extreme_noise_still_terminates() {
    let mut c = collection(200);
    apply_noise(
        &mut c,
        &NoiseConfig {
            typo_rate: 0.9,
            abbreviation_rate: 0.5,
            zip_missing_rate: 0.5,
            zip_wrong_rate: 0.3,
            coord_missing_rate: 0.4,
            coord_wrong_rate: 0.3,
            univariate_outlier_rate: 0.1,
            multivariate_outlier_rate: 0.05,
            seed: 3,
        },
    );
    let engine = Indice::from_collection(
        c,
        IndiceConfig {
            building_category: None,
            ..IndiceConfig::default()
        },
    );
    match engine.run(Stakeholder::PublicAdministration) {
        Ok(out) => {
            assert!(out.preprocess.dataset.n_rows() > 0);
        }
        Err(e) => {
            // Acceptable outcome on 90% corruption: a clean empty/clustering
            // error, never a panic.
            assert!(
                matches!(
                    e,
                    IndiceError::EmptyCollection(_) | IndiceError::Clustering(_)
                ),
                "unexpected error {e}"
            );
        }
    }
}

#[test]
fn fixed_k_larger_than_survivors_errors_cleanly() {
    let c = collection(40);
    let engine = Indice::from_collection(
        c,
        IndiceConfig {
            building_category: None,
            analytics: AnalyticsConfig {
                k: KSelection::Fixed(500),
                ..AnalyticsConfig::default()
            },
            ..IndiceConfig::default()
        },
    );
    let err = engine.run(Stakeholder::Citizen).unwrap_err();
    assert!(matches!(err, IndiceError::Clustering(_)), "{err}");
}

#[test]
fn autoconfig_advice_runs_end_to_end() {
    let mut c = collection(400);
    apply_noise(&mut c, &NoiseConfig::default());
    let advice = indice::autoconfig::suggest_config(
        &c.dataset,
        &IndiceConfig {
            building_category: None,
            ..IndiceConfig::default()
        },
    );
    let engine = Indice::from_collection(c, advice.config);
    let out = engine
        .run(Stakeholder::PublicAdministration)
        .expect("advised config runs");
    assert!(out.analytics.chosen_k >= 2);
}

#[test]
fn dataset_with_duplicated_rows_is_handled() {
    let base = collection(30);
    let mut ds = Dataset::new(base.dataset.schema_arc());
    for _ in 0..10 {
        ds.append(&base.dataset).unwrap();
    }
    assert_eq!(ds.n_rows(), 300);
    let out = indice::analytics::analyze(
        &ds,
        &IndiceConfig {
            building_category: None,
            ..IndiceConfig::default()
        },
    )
    .expect("duplicates tolerated");
    assert!(out.chosen_k >= 2);
}
