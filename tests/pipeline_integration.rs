//! End-to-end pipeline integration: all three stakeholders, determinism,
//! and serialization round-trips on a noisy mid-size collection.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_query::Stakeholder;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::Indice;

fn collection(n: usize, seed: u64) -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: n,
        seed,
        city: CityConfig {
            n_districts: 6,
            neighbourhoods_per_district: 3,
            streets_per_neighbourhood: 4,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

#[test]
fn every_stakeholder_gets_a_complete_run() {
    let engine = Indice::from_collection(collection(1_500, 1), IndiceConfig::default());
    for stakeholder in Stakeholder::ALL {
        let out = engine
            .run(stakeholder)
            .unwrap_or_else(|e| panic!("run failed for {}: {e}", stakeholder.name()));
        assert!(
            out.preprocess.dataset.n_rows() > 800,
            "{}",
            stakeholder.name()
        );
        assert!(out.analytics.chosen_k >= 2);
        assert!(out.dashboard.n_panels() >= 3);
        let html = out.dashboard.render_html();
        assert!(html.len() > 10_000, "dashboard should embed real content");
        assert!(html.contains(stakeholder.name()));
    }
}

#[test]
fn pipeline_is_deterministic() {
    let a = Indice::from_collection(collection(1_000, 7), IndiceConfig::default())
        .run(Stakeholder::PublicAdministration)
        .unwrap();
    let b = Indice::from_collection(collection(1_000, 7), IndiceConfig::default())
        .run(Stakeholder::PublicAdministration)
        .unwrap();
    assert_eq!(a.preprocess.removed_rows, b.preprocess.removed_rows);
    assert_eq!(a.analytics.chosen_k, b.analytics.chosen_k);
    assert_eq!(
        a.analytics.kmeans.assignments,
        b.analytics.kmeans.assignments
    );
    assert_eq!(a.analytics.rules.len(), b.analytics.rules.len());
    assert_eq!(a.dashboard.render_html(), b.dashboard.render_html());
}

#[test]
fn different_seeds_give_different_data_same_shape() {
    let a = collection(1_000, 1);
    let b = collection(1_000, 2);
    assert_ne!(a.dataset, b.dataset);
    assert_eq!(a.dataset.n_cols(), b.dataset.n_cols());
}

#[test]
fn cleaned_dataset_round_trips_through_csv() {
    let engine = Indice::from_collection(collection(600, 3), IndiceConfig::default());
    let out = engine.run(Stakeholder::Citizen).unwrap();
    let csv = epc_model::csv::to_csv(&out.preprocess.dataset);
    let back = epc_model::csv::from_csv(out.preprocess.dataset.schema_arc(), &csv).unwrap();
    assert_eq!(back.n_rows(), out.preprocess.dataset.n_rows());
    let s = back.schema();
    let eph = s.require(wk::EPH).unwrap();
    for row in (0..back.n_rows()).step_by(97) {
        assert_eq!(back.num(row, eph), out.preprocess.dataset.num(row, eph));
    }
}

#[test]
fn category_filter_keeps_only_e11() {
    let engine = Indice::from_collection(collection(1_200, 4), IndiceConfig::default());
    let out = engine.run(Stakeholder::PublicAdministration).unwrap();
    let ds = &out.preprocess.dataset;
    let cat_id = ds.schema().require(wk::BUILDING_CATEGORY).unwrap();
    for row in 0..ds.n_rows() {
        assert_eq!(ds.cat(row, cat_id), Some("E.1.1"));
    }
}

#[test]
fn removed_plus_kept_equals_selected() {
    let engine = Indice::from_collection(collection(900, 5), IndiceConfig::default());
    let out = engine.run(Stakeholder::PublicAdministration).unwrap();
    assert_eq!(
        out.preprocess.kept_rows.len() + out.preprocess.removed_rows.len(),
        out.preprocess.cleaning.total
    );
    assert_eq!(
        out.preprocess.kept_rows.len(),
        out.preprocess.dataset.n_rows()
    );
}
