//! Integration of the analytics stage against the synthetic generator's
//! latent structure: clusters must track building archetypes, rules must
//! recover the thermal-quality → consumption signal, and the correlation
//! screening must reproduce the Figure-3 verdict.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::wellknown as wk;
use epc_synth::archetype::ARCHETYPES;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use indice::analytics::analyze;
use indice::config::{AnalyticsConfig, IndiceConfig, KSelection};

fn collection() -> SyntheticCollection {
    EpcGenerator::new(SynthConfig {
        n_records: 3_000,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 4,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate()
}

#[test]
fn clusters_align_with_archetype_structure() {
    let c = collection();
    let cfg = IndiceConfig {
        analytics: AnalyticsConfig {
            k: KSelection::Fixed(ARCHETYPES.len()),
            ..AnalyticsConfig::default()
        },
        ..IndiceConfig::default()
    };
    let out = analyze(&c.dataset, &cfg).unwrap();

    // Measure cluster→archetype purity: each cluster's dominant archetype
    // share, weighted by cluster size. Random assignment would give ~1/6;
    // the blocks are broad and overlapping, so demand a clear improvement.
    let mut weighted_purity = 0.0;
    let mut total = 0usize;
    for cluster in 0..out.chosen_k {
        let mut counts = vec![0usize; ARCHETYPES.len()];
        for (i, &row) in out.feature_rows.iter().enumerate() {
            if out.kmeans.assignments[i] == cluster {
                counts[c.truth.archetypes[row]] += 1;
            }
        }
        let size: usize = counts.iter().sum();
        if size == 0 {
            continue;
        }
        let dominant = *counts.iter().max().unwrap();
        weighted_purity += dominant as f64;
        total += size;
    }
    let purity = weighted_purity / total as f64;
    assert!(purity > 0.4, "cluster purity {purity:.2} (chance ≈ 0.17)");
}

#[test]
fn elbow_k_lands_in_a_sane_range() {
    let c = collection();
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    // The latent structure has 6 archetypes with overlap; an elbow between
    // 2 and 8 is credible, outside it something is broken.
    assert!(
        (2..=8).contains(&out.chosen_k),
        "elbow K = {} (curve {:?})",
        out.chosen_k,
        out.sse_curve
    );
    // SSE decreases along the curve.
    for w in out.sse_curve.windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.05,
            "SSE should trend down: {:?}",
            out.sse_curve
        );
    }
}

#[test]
fn figure3_verdict_weak_pairwise_correlation() {
    let c = collection();
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    assert!(out.eligible);
    // And the matrix is a proper correlation matrix.
    let m = &out.correlation;
    for i in 0..m.len() {
        assert_eq!(m.get(i, i), 1.0);
        for j in 0..m.len() {
            let v = m.get(i, j);
            assert!(v.is_nan() || (-1.0..=1.0).contains(&v));
            assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
        }
    }
}

#[test]
fn rules_recover_the_injected_physics() {
    let c = collection();
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    // The generator's EPH law makes poor windows + poor efficiency imply
    // high consumption; the miner must surface that with lift > 1.
    let supporting = out
        .rules
        .iter()
        .filter(|r| {
            r.consequent.iter().any(|i| i == "eph=High")
                && r.antecedent.iter().any(|i| {
                    i == "u_windows=Very high" || i == "u_windows=High" || i == "eta_h=Low"
                })
        })
        .count();
    assert!(
        supporting > 0,
        "rules: {:?}",
        out.rules.iter().map(|r| r.display()).collect::<Vec<_>>()
    );
    for r in &out.rules {
        assert!(r.lift >= 1.1, "config demands lift ≥ 1.1, got {}", r.lift);
        assert!(r.support > 0.0 && r.support <= 1.0);
        assert!(r.confidence >= 0.6);
    }
}

#[test]
fn contradictory_rules_do_not_survive() {
    // "Good windows → high consumption" must not appear with high lift.
    let c = collection();
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    let contradiction = out.rules.iter().find(|r| {
        r.antecedent.iter().any(|i| i == "u_windows=Low")
            && r.antecedent.len() == 1
            && r.consequent.iter().any(|i| i == "eph=High")
    });
    assert!(
        contradiction.is_none(),
        "found {:?}",
        contradiction.map(|r| r.display())
    );
}

#[test]
fn cluster_mean_response_orders_with_centroid_quality() {
    let c = collection();
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    // Correlation between centroid Uw (index 2) and mean EPH across
    // clusters should be positive: worse windows → more consumption.
    let uw: Vec<f64> = out
        .cluster_summaries
        .iter()
        .map(|s| s.centroid[2])
        .collect();
    let eph: Vec<f64> = out
        .cluster_summaries
        .iter()
        .map(|s| s.mean_response.unwrap())
        .collect();
    let rho = epc_stats::correlation::pearson(&uw, &eph).unwrap();
    assert!(rho > 0.5, "cluster-level Uw↔EPH correlation {rho}");
}

#[test]
fn analytics_is_robust_to_missing_feature_values() {
    let mut c = collection();
    // Punch holes into a feature column.
    let id = c.dataset.schema().require(wk::U_WINDOWS).unwrap();
    for row in (0..c.dataset.n_rows()).step_by(5) {
        c.dataset
            .set_value(row, id, epc_model::Value::Missing)
            .unwrap();
    }
    let out = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    assert_eq!(
        out.feature_rows.len(),
        c.dataset.n_rows() - c.dataset.n_rows().div_ceil(5),
        "incomplete rows must be excluded from clustering"
    );
    assert!(out.chosen_k >= 2);
}
