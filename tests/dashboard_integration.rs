//! Integration of the dashboard stage: well-formed artifacts, zoom-level
//! behaviour of the cluster-marker maps (Figure 2), and panel completeness
//! (Figure 4).
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_model::{wellknown as wk, Granularity};
use epc_query::stakeholder::{default_report_spec, ReportSpec, Stakeholder};
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig};
use indice::analytics::{analyze, AnalyticsOutput};
use indice::config::IndiceConfig;
use indice::dashboard::{build_dashboard_with_spec, figure2_maps};

fn setup() -> (
    epc_model::Dataset,
    epc_geo::region::RegionHierarchy,
    AnalyticsOutput,
) {
    let c = EpcGenerator::new(SynthConfig {
        n_records: 1_500,
        city: CityConfig {
            n_districts: 6,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    let analytics = analyze(&c.dataset, &IndiceConfig::default()).unwrap();
    (c.dataset, c.city.hierarchy, analytics)
}

/// A light well-formedness check: every opening tag of the kinds we emit
/// has a matching closer, and the envelope is svg.
fn assert_svg_well_formed(svg: &str) {
    assert!(svg.starts_with("<svg"), "missing svg root");
    assert!(svg.trim_end().ends_with("</svg>"));
    for tag in ["text", "title"] {
        let opens = svg.matches(&format!("<{tag}")).count();
        let closes = svg.matches(&format!("</{tag}>")).count();
        assert_eq!(opens, closes, "unbalanced <{tag}>");
    }
    assert!(!svg.contains("NaN"), "NaN leaked into the SVG");
}

#[test]
fn figure2_zoom_series_aggregates_monotonically() {
    let (ds, hier, _) = setup();
    let maps = figure2_maps(&ds, &hier, wk::U_OPAQUE).unwrap();
    for svg in maps.values() {
        assert_svg_well_formed(svg);
    }
    // City-level markers aggregate more than district-level: fewer circles.
    let city_circles = maps["fig2_clustermarkers_city.svg"]
        .matches("<circle")
        .count();
    let district_circles = maps["fig2_clustermarkers_district.svg"]
        .matches("<circle")
        .count();
    assert!(
        city_circles < district_circles,
        "city {city_circles} vs district {district_circles}"
    );
    // Scatter shows every geolocated unit.
    let scatter_circles = maps["fig2_scatter_unit.svg"].matches("<circle").count();
    assert!(scatter_circles > district_circles * 3);
}

#[test]
fn figure4_dashboard_artifacts_parse() {
    let (ds, hier, analytics) = setup();
    let spec = default_report_spec(Stakeholder::PublicAdministration);
    let out = build_dashboard_with_spec(&ds, &hier, &analytics, &spec, 10).unwrap();
    for (name, content) in &out.artifacts {
        if name.ends_with(".svg") {
            assert_svg_well_formed(content);
        } else if name.ends_with(".geojson") {
            let v: serde_json::Value = serde_json::from_str(content)
                .unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
            assert_eq!(v["type"], "FeatureCollection", "{name}");
            assert!(
                !v["features"].as_array().unwrap().is_empty(),
                "{name} empty"
            );
        }
    }
    let html = out.dashboard.render_html();
    assert!(html.contains("</html>"));
    assert_eq!(
        html.matches("<section").count(),
        out.dashboard.n_panels(),
        "one section per panel"
    );
}

#[test]
fn marker_counts_total_the_certificates_at_every_level() {
    let (ds, hier, analytics) = setup();
    for level in Granularity::ALL {
        let spec = ReportSpec {
            granularity: level,
            ..default_report_spec(Stakeholder::PublicAdministration)
        };
        let out = build_dashboard_with_spec(&ds, &hier, &analytics, &spec, 10).unwrap();
        let geojson = out
            .artifacts
            .get(&format!("clustermarkers_{level}.geojson"))
            .unwrap();
        let v: serde_json::Value = serde_json::from_str(geojson).unwrap();
        let total: u64 = v["features"]
            .as_array()
            .unwrap()
            .iter()
            .map(|f| f["properties"]["count"].as_u64().unwrap())
            .sum();
        assert_eq!(total as usize, ds.n_rows(), "level {level}");
    }
}

#[test]
fn choropleth_covers_every_region_with_data() {
    let (ds, hier, analytics) = setup();
    let spec = default_report_spec(Stakeholder::Citizen); // neighbourhood level
    let out = build_dashboard_with_spec(&ds, &hier, &analytics, &spec, 10).unwrap();
    let geojson = out
        .artifacts
        .get("choropleth_neighbourhood.geojson")
        .unwrap();
    let v: serde_json::Value = serde_json::from_str(geojson).unwrap();
    let features = v["features"].as_array().unwrap();
    assert_eq!(features.len(), hier.neighbourhoods.len());
    // Every neighbourhood hosts certificates in this city, so every value
    // is non-null.
    for f in features {
        assert!(
            !f["properties"]["value"].is_null(),
            "{} has no value",
            f["properties"]["name"]
        );
    }
}

#[test]
fn rules_text_artifact_matches_rules() {
    let (ds, hier, analytics) = setup();
    let spec = default_report_spec(Stakeholder::PublicAdministration);
    let out = build_dashboard_with_spec(&ds, &hier, &analytics, &spec, 5).unwrap();
    let text = out.artifacts.get("rules.txt").unwrap();
    for r in analytics.rules.iter().take(3) {
        let first_item = &r.consequent[0];
        assert!(
            text.contains(first_item.as_str()),
            "rule item {first_item} missing from rules.txt"
        );
    }
}

#[test]
fn correlation_svg_has_one_cell_per_pair() {
    let (ds, hier, analytics) = setup();
    let spec = default_report_spec(Stakeholder::EnergyScientist);
    let out = build_dashboard_with_spec(&ds, &hier, &analytics, &spec, 10).unwrap();
    let svg = out.artifacts.get("correlation_matrix.svg").unwrap();
    let n = analytics.correlation.len();
    // n² cells + 1 background.
    assert_eq!(svg.matches("<rect").count(), n * n + 1);
}
