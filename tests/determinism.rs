//! Determinism suite: the full INDICE pipeline must produce bitwise
//! identical outputs for any thread budget. A run at `threads = 1` is the
//! reference; runs at 2 and 8 threads must match it exactly — artifacts,
//! rendered HTML, cluster assignments, SSE bits, and removed-row sets.

use epc_query::Stakeholder;
use epc_runtime::RuntimeConfig;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::{Indice, IndiceOutput};

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 1_600,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

fn run_at(threads: usize) -> IndiceOutput {
    let engine = Indice::from_collection(collection(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads));
    engine.run(Stakeholder::PublicAdministration).unwrap()
}

fn assert_outputs_identical(reference: &IndiceOutput, other: &IndiceOutput, threads: usize) {
    // Stage 1: cleaning and outlier removal.
    assert_eq!(
        reference.preprocess.kept_rows, other.preprocess.kept_rows,
        "kept rows differ at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.removed_rows, other.preprocess.removed_rows,
        "removed rows differ at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.cleaning, other.preprocess.cleaning,
        "cleaning report differs at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.multivariate_flagged, other.preprocess.multivariate_flagged,
        "DBSCAN flags differ at {threads} threads"
    );

    // Stage 2: clustering and rules, down to float bits.
    assert_eq!(
        reference.analytics.kmeans.assignments, other.analytics.kmeans.assignments,
        "cluster assignments differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.kmeans.sse.to_bits(),
        other.analytics.kmeans.sse.to_bits(),
        "SSE bits differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.kmeans.centroids, other.analytics.kmeans.centroids,
        "centroids differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.chosen_k, other.analytics.chosen_k,
        "chosen K differs at {threads} threads"
    );
    assert_eq!(
        reference.analytics.rules, other.analytics.rules,
        "association rules differ at {threads} threads"
    );

    // Stage 3: every artifact byte-for-byte, including drill-down pages.
    assert_eq!(
        reference.dashboard.render_html(),
        other.dashboard.render_html(),
        "dashboard HTML differs at {threads} threads"
    );
    let ref_names: Vec<&String> = reference.artifacts.keys().collect();
    let other_names: Vec<&String> = other.artifacts.keys().collect();
    assert_eq!(
        ref_names, other_names,
        "artifact set differs at {threads} threads"
    );
    for (name, content) in &reference.artifacts {
        assert_eq!(
            content, &other.artifacts[name],
            "artifact {name} differs at {threads} threads"
        );
    }
}

#[test]
fn pipeline_outputs_are_identical_across_thread_counts() {
    let reference = run_at(1);
    // The parallel paths really are exercised: the drill-down pages
    // produced by the coarse-grained zoom fan-out must be present.
    for level in epc_model::Granularity::ALL {
        assert!(reference
            .artifacts
            .contains_key(&format!("dashboard_{level}.html")));
    }
    for threads in [2, 8] {
        let parallel = run_at(threads);
        assert_outputs_identical(&reference, &parallel, threads);
    }
}
