//! Determinism suite: the full INDICE pipeline must produce bitwise
//! identical outputs for any thread budget. A run at `threads = 1` is the
//! reference; runs at 2 and 8 threads must match it exactly — artifacts,
//! rendered HTML, cluster assignments, SSE bits, and removed-row sets.
// Test/demo code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_query::Stakeholder;
use epc_runtime::RuntimeConfig;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::engine::{Indice, IndiceOutput};

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 1_600,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 10,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

fn run_at(threads: usize) -> IndiceOutput {
    let engine = Indice::from_collection(collection(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads));
    engine.run(Stakeholder::PublicAdministration).unwrap()
}

fn assert_outputs_identical(reference: &IndiceOutput, other: &IndiceOutput, threads: usize) {
    // Stage 1: cleaning and outlier removal.
    assert_eq!(
        reference.preprocess.kept_rows, other.preprocess.kept_rows,
        "kept rows differ at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.removed_rows, other.preprocess.removed_rows,
        "removed rows differ at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.cleaning, other.preprocess.cleaning,
        "cleaning report differs at {threads} threads"
    );
    assert_eq!(
        reference.preprocess.multivariate_flagged, other.preprocess.multivariate_flagged,
        "DBSCAN flags differ at {threads} threads"
    );

    // Stage 2: clustering and rules, down to float bits.
    assert_eq!(
        reference.analytics.kmeans.assignments, other.analytics.kmeans.assignments,
        "cluster assignments differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.kmeans.sse.to_bits(),
        other.analytics.kmeans.sse.to_bits(),
        "SSE bits differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.kmeans.centroids, other.analytics.kmeans.centroids,
        "centroids differ at {threads} threads"
    );
    assert_eq!(
        reference.analytics.chosen_k, other.analytics.chosen_k,
        "chosen K differs at {threads} threads"
    );
    assert_eq!(
        reference.analytics.rules, other.analytics.rules,
        "association rules differ at {threads} threads"
    );

    // Stage 3: every artifact byte-for-byte, including drill-down pages.
    assert_eq!(
        reference.dashboard.render_html(),
        other.dashboard.render_html(),
        "dashboard HTML differs at {threads} threads"
    );
    let ref_names: Vec<&String> = reference.artifacts.keys().collect();
    let other_names: Vec<&String> = other.artifacts.keys().collect();
    assert_eq!(
        ref_names, other_names,
        "artifact set differs at {threads} threads"
    );
    for (name, content) in &reference.artifacts {
        assert_eq!(
            content, &other.artifacts[name],
            "artifact {name} differs at {threads} threads"
        );
    }
}

mod fault_shuffle {
    //! Quarantine determinism under row shuffling: fault decisions key on
    //! stable record identities, so permuting the input rows (moving every
    //! fault to a different position) with a fixed fault seed must yield
    //! the identical quarantine set and the identical clean subset — and
    //! the analytics over that subset must stay bitwise identical across
    //! thread budgets.

    use super::*;
    use epc_faults::{Corruption, DeterministicInjector};
    use epc_model::{wellknown as wk, Dataset};
    use indice::engine::SupervisedOutput;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use std::sync::OnceLock;

    const FAULT_SEED: u64 = 0xFEED;

    fn small_collection() -> SyntheticCollection {
        let mut c = EpcGenerator::new(SynthConfig {
            n_records: 600,
            city: CityConfig {
                n_districts: 4,
                neighbourhoods_per_district: 2,
                streets_per_neighbourhood: 3,
                houses_per_street: 8,
                ..CityConfig::default()
            },
            ..SynthConfig::default()
        })
        .generate();
        apply_noise(&mut c, &NoiseConfig::default());
        c
    }

    fn injector() -> DeterministicInjector {
        DeterministicInjector::new(FAULT_SEED)
            .with_record_rate(0.15)
            .with_corruption(Corruption::NonFinite {
                attribute: wk::ASPECT_RATIO.to_owned(),
            })
            .with_geocode_rate(0.1)
    }

    /// Rebuilds `dataset` with its rows in `perm` order.
    fn permute_rows(dataset: &Dataset, perm: &[usize]) -> Dataset {
        let mut out = Dataset::new(dataset.schema_arc());
        for &row in perm {
            let mut record = out.empty_record();
            for (id, _) in dataset.schema().iter() {
                record
                    .set(id, dataset.value(row, id))
                    .expect("same schema, same ids");
            }
            out.push_record(record).expect("record matches schema");
        }
        out
    }

    /// Fisher–Yates driven by splitmix64 — deterministic per seed.
    fn permutation(n: usize, seed: u64) -> Vec<usize> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    fn run_supervised(dataset: Dataset, threads: usize) -> SupervisedOutput {
        let c = small_collection();
        let engine = indice::engine::Indice::new(
            dataset,
            c.city.street_map,
            c.city.hierarchy,
            IndiceConfig::default(),
        )
        .with_runtime(RuntimeConfig::new(threads));
        let inj = injector();
        engine.run_supervised_with_faults(Stakeholder::PublicAdministration, &inj)
    }

    /// The certificate ids surviving preprocessing — the clean subset.
    fn clean_subset(out: &SupervisedOutput) -> BTreeSet<String> {
        let cleaned = &out.preprocess.as_ref().expect("preprocess ran").dataset;
        let id = cleaned.schema().require(wk::CERTIFICATE_ID).expect("id");
        (0..cleaned.n_rows())
            .filter_map(|row| cleaned.cat(row, id).map(str::to_owned))
            .collect()
    }

    struct Baseline {
        quarantine_keys: Vec<String>,
        clean_subset: BTreeSet<String>,
    }

    fn baseline() -> &'static Baseline {
        static BASELINE: OnceLock<Baseline> = OnceLock::new();
        BASELINE.get_or_init(|| {
            let out = run_supervised(small_collection().dataset, 1);
            assert!(out.outcome.produced_output());
            assert!(!out.quarantine.is_empty(), "faults must actually land");
            Baseline {
                quarantine_keys: out
                    .quarantine
                    .keys()
                    .iter()
                    .map(|k| k.to_string())
                    .collect(),
                clean_subset: clean_subset(&out),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3 })]

        #[test]
        fn shuffled_fault_positions_keep_quarantine_and_clean_subset(
            shuffle_seed in 1u64..u64::MAX
        ) {
            let base = baseline();
            let c = small_collection();
            let perm = permutation(c.dataset.n_rows(), shuffle_seed);
            let shuffled = permute_rows(&c.dataset, &perm);

            let reference = run_supervised(shuffled.clone(), 1);
            prop_assert!(reference.outcome.produced_output());

            // Same faults hit the same records, wherever the rows moved.
            let keys: Vec<String> = reference
                .quarantine
                .keys()
                .iter()
                .map(|k| k.to_string())
                .collect();
            prop_assert_eq!(&keys, &base.quarantine_keys);
            prop_assert_eq!(&clean_subset(&reference), &base.clean_subset);

            // And the analytics over the clean subset stays bitwise
            // identical across thread budgets.
            for threads in [2, 8] {
                let other = run_supervised(shuffled.clone(), threads);
                let ra = reference.analytics.as_ref().expect("analytics ran");
                let oa = other.analytics.as_ref().expect("analytics ran");
                prop_assert_eq!(&ra.kmeans.assignments, &oa.kmeans.assignments);
                prop_assert_eq!(ra.kmeans.sse.to_bits(), oa.kmeans.sse.to_bits());
                prop_assert_eq!(ra.chosen_k, oa.chosen_k);
                prop_assert_eq!(&ra.rules, &oa.rules);
                prop_assert_eq!(
                    other.quarantine.keys().iter().map(|k| k.to_string()).collect::<Vec<_>>(),
                    keys.clone()
                );
            }
        }
    }
}

mod hash_order {
    //! Regression tests for the D3 sweep: result-producing modules must not
    //! let hash-map iteration order reach their outputs. Each test pins an
    //! order-invariance property that held only by accident (or not at all)
    //! when these paths were built on `std::collections::HashMap`.

    use epc_mining::apriori::{Apriori, TransactionSet};
    use epc_mining::matrix::Matrix;
    use epc_mining::naive_bayes::GaussianNb;
    use epc_stats::freq::frequency_table;
    use epc_viz::clustermarker::{cluster_markers, ClusterMarkerMap};
    use epc_viz::scale::GeoProjection;
    use std::collections::BTreeSet;

    #[test]
    fn frequency_table_is_input_order_invariant() {
        let labels = ["C", "A", "B", "A", "C", "A", "D", "B", "C", "A"];
        let reference = frequency_table(labels.iter().copied());
        let mut reversed = labels;
        reversed.reverse();
        assert_eq!(reference, frequency_table(reversed.iter().copied()));
        // Rotations exercise every first-appearance order of the labels.
        for rot in 1..labels.len() {
            let mut rotated = labels;
            rotated.rotate_left(rot);
            assert_eq!(reference, frequency_table(rotated.iter().copied()));
        }
    }

    /// Mines `transactions` and returns the frequent itemsets as
    /// `(sorted item names, count)` — an id-free, order-free fingerprint.
    fn mined_fingerprint(transactions: &[Vec<&str>]) -> BTreeSet<(Vec<String>, usize)> {
        let mut t = TransactionSet::new();
        for items in transactions {
            t.push(items);
        }
        let frequent = Apriori {
            min_support: 0.3,
            max_len: 3,
        }
        .mine(&t);
        frequent
            .iter()
            .map(|f| {
                let mut names = t.dict.resolve(&f.items);
                names.sort();
                (names, f.count)
            })
            .collect()
    }

    #[test]
    fn apriori_itemsets_are_transaction_order_invariant() {
        let transactions = vec![
            vec!["bread", "milk"],
            vec!["bread", "diapers", "beer", "eggs"],
            vec!["milk", "diapers", "beer", "cola"],
            vec!["bread", "milk", "diapers", "beer"],
            vec!["bread", "milk", "diapers", "cola"],
        ];
        let reference = mined_fingerprint(&transactions);
        assert!(!reference.is_empty());
        let mut reversed = transactions.clone();
        reversed.reverse();
        assert_eq!(reference, mined_fingerprint(&reversed));
        let mut rotated = transactions;
        rotated.rotate_left(2);
        assert_eq!(reference, mined_fingerprint(&rotated));
    }

    #[test]
    fn naive_bayes_class_order_is_independent_of_first_appearance() {
        // Each class's rows are identical, so per-class moments cannot
        // depend on row order — any difference between the two fits could
        // only come from class-grouping iteration order.
        let low = vec![1.0, 2.0];
        let high = vec![9.0, 8.0];
        let rows_a: Vec<Vec<f64>> = vec![low.clone(), low.clone(), high.clone(), high.clone()];
        let rows_b: Vec<Vec<f64>> = vec![high.clone(), high.clone(), low.clone(), low.clone()];
        let nb_a = GaussianNb::fit(&Matrix::from_rows(&rows_a), &["lo", "lo", "hi", "hi"]).unwrap();
        let nb_b = GaussianNb::fit(&Matrix::from_rows(&rows_b), &["hi", "hi", "lo", "lo"]).unwrap();
        assert_eq!(nb_a.classes(), nb_b.classes());
        let mut sorted = nb_a.classes().to_vec();
        sorted.sort();
        assert_eq!(nb_a.classes(), sorted.as_slice(), "classes must be sorted");
        for x in [&low, &high, &vec![5.0, 5.0]] {
            assert_eq!(nb_a.predict(x), nb_b.predict(x));
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&nb_a.log_joint(x)), bits(&nb_b.log_joint(x)));
        }
    }

    #[test]
    fn cluster_markers_are_repeatable_and_strictly_ordered() {
        use epc_geo::bbox::BoundingBox;
        use epc_geo::point::GeoPoint;
        use epc_model::Granularity;

        let points: Vec<(GeoPoint, Option<f64>)> = (0..400)
            .map(|i| {
                let a = ((i as u64 * 2654435761) % 997) as f64 / 997.0;
                let b = ((i as u64 * 40503 + 7) % 991) as f64 / 991.0;
                (
                    GeoPoint::new(45.0 + a * 0.08, 7.6 + b * 0.08),
                    Some(40.0 + (i % 150) as f64),
                )
            })
            .collect();
        let pts: Vec<GeoPoint> = points.iter().map(|(p, _)| *p).collect();
        let bounds = BoundingBox::from_points(&pts).unwrap();
        let proj = GeoProjection::fit(bounds, 760.0, 440.0, 12.0);
        let reference = cluster_markers(&points, &proj, 64.0);
        for _ in 0..3 {
            assert_eq!(reference, cluster_markers(&points, &proj, 64.0));
        }
        // Marker order is a total order: count desc, then lat, then lon —
        // no two adjacent markers may be order-ambiguous.
        for w in reference.windows(2) {
            assert!(
                w[0].count > w[1].count || (w[0].count == w[1].count && w[0].center != w[1].center),
                "ambiguous marker order"
            );
        }
        // The map-level wrapper is repeatable too.
        let mut map = ClusterMarkerMap::new("t", "v", Granularity::District);
        for (p, v) in &points {
            map.add_point(*p, *v);
        }
        assert_eq!(map.markers(), map.markers());
    }
}

#[test]
fn pipeline_outputs_are_identical_across_thread_counts() {
    let reference = run_at(1);
    // The parallel paths really are exercised: the drill-down pages
    // produced by the coarse-grained zoom fan-out must be present.
    for level in epc_model::Granularity::ALL {
        assert!(reference
            .artifacts
            .contains_key(&format!("dashboard_{level}.html")));
    }
    for threads in [2, 8] {
        let parallel = run_at(threads);
        assert_outputs_identical(&reference, &parallel, threads);
    }
}
