//! Incremental-ingest suite: generation-journaled micro-batches.
//!
//! The load-bearing contract (PR 9): ingesting N chunks with
//! `indice::generations::ingest` produces a `current/` directory
//! **byte-identical** to a one-shot durable run over the concatenated
//! input — at any thread count — and an ingest killed at any batch
//! boundary (before the commit, right after it, or mid-seal with a torn
//! delta) resumes to a run directory byte-identical to an uninterrupted
//! ingest's. A poisoned batch is abandoned without damaging sealed
//! generations, and `warm` K-means recompute is ε-equivalent to exact
//! mode (relative SSE difference bounded).
// Test code: panicking on malformed setup is the desired behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use epc_faults::IngestCrash;
use epc_model::value::Value;
use epc_model::wellknown as wk;
use epc_model::{Dataset, Record};
use epc_query::Stakeholder;
use epc_runtime::RuntimeConfig;
use epc_synth::city::CityConfig;
use epc_synth::epcgen::{EpcGenerator, SynthConfig, SyntheticCollection};
use epc_synth::noise::{apply_noise, NoiseConfig};
use indice::config::IndiceConfig;
use indice::durable::DurableOptions;
use indice::engine::Indice;
use indice::generations::{
    ingest, IngestBatch, IngestInputs, IngestOptions, IngestOutcome, RecomputeMode,
};
use indice::IndiceError;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn collection() -> SyntheticCollection {
    let mut c = EpcGenerator::new(SynthConfig {
        n_records: 600,
        city: CityConfig {
            n_districts: 4,
            neighbourhoods_per_district: 2,
            streets_per_neighbourhood: 3,
            houses_per_street: 8,
            ..CityConfig::default()
        },
        ..SynthConfig::default()
    })
    .generate();
    apply_noise(&mut c, &NoiseConfig::default());
    c
}

/// Splits `dataset` into `n` contiguous chunks (the last takes the
/// remainder).
fn split(dataset: &Dataset, n: usize) -> Vec<IngestBatch> {
    let rows = dataset.n_rows();
    let chunk = rows / n;
    (0..n)
        .map(|i| {
            let start = i * chunk;
            let end = if i == n - 1 { rows } else { start + chunk };
            let indices: Vec<usize> = (start..end).collect();
            IngestBatch::new(
                format!("chunk-{i}.csv"),
                dataset.select_rows(&indices).unwrap(),
            )
        })
        .collect()
}

static NEXT_DIR: AtomicUsize = AtomicUsize::new(0);

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "indice-ingest-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT_DIR.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file under `dir`, relative path → content bytes.
fn tree(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                out.insert(rel, fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn assert_trees_identical(a: &Path, b: &Path, context: &str) {
    let (ta, tb) = (tree(a), tree(b));
    assert_eq!(
        ta.keys().collect::<Vec<_>>(),
        tb.keys().collect::<Vec<_>>(),
        "{context}: file sets differ"
    );
    for (name, bytes) in &ta {
        assert_eq!(
            Some(bytes),
            tb.get(name),
            "{context}: {name} differs between runs"
        );
    }
}

fn inputs_at(c: &SyntheticCollection, threads: usize) -> IngestInputs<'_> {
    IngestInputs {
        street_map: &c.city.street_map,
        hierarchy: &c.city.hierarchy,
        config: IndiceConfig::default(),
        runtime: RuntimeConfig::new(threads),
    }
}

/// One-shot durable run over the full collection into a fresh dir;
/// returns the dir.
fn one_shot(c: &SyntheticCollection, threads: usize, tag: &str) -> PathBuf {
    let engine = Indice::from_collection(c.clone(), IndiceConfig::default())
        .with_runtime(RuntimeConfig::new(threads));
    let dir = run_dir(tag);
    let out = engine
        .run_durable(
            Stakeholder::PublicAdministration,
            &DurableOptions::new(&dir),
        )
        .expect("one-shot durable run");
    assert!(out.outcome.produced_output());
    dir
}

#[test]
fn chunked_ingest_is_byte_identical_to_one_shot_at_every_thread_count() {
    let c = collection();
    for threads in [1usize, 2, 8] {
        let shot = one_shot(&c, threads, "oneshot");
        let dir = run_dir("chunked");
        let batches = split(&c.dataset, 3);
        let out = ingest(
            &batches,
            inputs_at(&c, threads),
            Stakeholder::PublicAdministration,
            &IngestOptions::new(&dir),
        )
        .expect("chunked ingest");
        assert_eq!(out.entries.len(), 3);
        assert_eq!(out.processed.len(), 3);
        assert!(out.sealed_skipped.is_empty());
        assert_trees_identical(
            &shot,
            &dir.join("current"),
            &format!("threads={threads}: current/ vs one-shot"),
        );
        // The per-generation record accounting covers the whole input.
        let records_in: usize = out.entries.iter().map(|e| e.records_in).sum();
        let kept: usize = out.entries.iter().map(|e| e.records_kept).sum();
        assert_eq!(
            records_in,
            c.dataset.n_rows() - out.quarantined_total - records_dropped_by_selection(&c)
        );
        assert!(kept <= records_in);
        let _ = fs::remove_dir_all(&shot);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Rows the category filter drops before preprocessing (they are neither
/// quarantined nor counted as a batch's `records_in`).
fn records_dropped_by_selection(c: &SyntheticCollection) -> usize {
    let cat_id = c.dataset.schema().attr_id(wk::BUILDING_CATEGORY).unwrap();
    (0..c.dataset.n_rows())
        .filter(|&r| c.dataset.value(r, cat_id) != Value::Cat("E.1.1".to_owned()))
        .count()
}

#[test]
fn killed_ingest_resumes_byte_identical_at_every_crash_point() {
    let c = collection();
    let batches = split(&c.dataset, 3);

    // Reference: an uninterrupted ingest.
    let ref_dir = run_dir("uninterrupted");
    ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&ref_dir),
    )
    .expect("uninterrupted ingest");

    for spec in ["1:before", "1:after", "1:torn"] {
        let crash = IngestCrash::parse(spec).unwrap();
        let dir = run_dir("crashed");
        let died = ingest(
            &batches,
            inputs_at(&c, 2),
            Stakeholder::PublicAdministration,
            &IngestOptions::new(&dir).with_crash(&crash),
        );
        match died {
            Err(IndiceError::CrashInjected { stage, .. }) => {
                assert_eq!(stage, "ingest batch 1", "crash at {spec}")
            }
            other => panic!("{spec}: expected injected crash, got {other:?}"),
        }

        // Resume at a different thread count — outputs are
        // thread-invariant, so this must not change a byte.
        let resumed = ingest(
            &batches,
            inputs_at(&c, 1),
            Stakeholder::PublicAdministration,
            &IngestOptions::new(&dir).resuming(),
        )
        .expect("resumed ingest");
        assert_eq!(resumed.entries.len(), 3, "{spec}");
        match spec {
            // The sealed prefix survives; only unsealed batches replay.
            "1:before" => assert_eq!(resumed.sealed_skipped.len(), 1, "{spec}"),
            // Batch 1's commit landed before the crash.
            "1:after" => assert_eq!(resumed.sealed_skipped.len(), 2, "{spec}"),
            // The torn delta must be detected and batch 1 re-ingested.
            "1:torn" => {
                assert_eq!(resumed.sealed_skipped.len(), 1, "{spec}");
                assert!(
                    resumed
                        .resume_rejection
                        .as_deref()
                        .unwrap_or("")
                        .contains("generation 1"),
                    "{spec}: rejection should name the torn generation, got {:?}",
                    resumed.resume_rejection
                );
            }
            _ => unreachable!(),
        }
        assert_trees_identical(&ref_dir, &dir, &format!("crash {spec}: whole run dir"));
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

/// A batch whose records all miss the configured building category:
/// category selection leaves nothing, so the batch must be abandoned.
fn poison_batch(template: &Dataset) -> IngestBatch {
    let cat_id = template.schema().attr_id(wk::BUILDING_CATEGORY).unwrap();
    let mut poisoned = Dataset::new(template.schema_arc());
    for row in 0..template.n_rows().min(40) {
        let values: Vec<Value> = (0..template.schema().len())
            .map(|i| {
                let id = epc_model::AttrId(i as u32);
                if id == cat_id {
                    Value::Cat("E.9.9".to_owned())
                } else {
                    template.value(row, id)
                }
            })
            .collect();
        poisoned.push_record(Record::from_values(values)).unwrap();
    }
    IngestBatch::new("poison.csv", poisoned)
}

#[test]
fn poisoned_batch_is_abandoned_without_damaging_sealed_generations() {
    let c = collection();
    let mut batches = split(&c.dataset, 2);
    batches.insert(1, poison_batch(&c.dataset));

    let dir = run_dir("poisoned");
    let out = ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&dir),
    )
    .expect("ingest with poisoned batch");
    assert_eq!(out.entries.len(), 3);
    assert_eq!(
        out.entries[1].outcome,
        epc_ingest::GenerationOutcome::Abandoned
    );
    assert_eq!(out.entries[1].records_kept, 0);
    assert!(out.entries[1].checkpoints.is_empty());
    assert!(out.entries[1].reasons[0].contains("abandoned"));
    // Abandonment is a failure outcome: exit code 1.
    assert!(matches!(out.outcome, IngestOutcome::Failed(_)));
    assert_eq!(out.outcome.exit_code(), 1);
    // The abandoned batch contributes nothing: current/ is byte-identical
    // to ingesting only the healthy batches.
    let healthy_dir = run_dir("healthy");
    let healthy: Vec<IngestBatch> = vec![batches[0].clone(), batches[2].clone()];
    ingest(
        &healthy,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&healthy_dir),
    )
    .expect("healthy ingest");
    assert_trees_identical(
        &healthy_dir.join("current"),
        &dir.join("current"),
        "poisoned batch must not change cumulative artifacts",
    );
    // The sealed generation before the poison is untouched.
    let gen0 = dir.join("gens/gen-00000/clean.delta.json");
    let healthy_gen0 = healthy_dir.join("gens/gen-00000/clean.delta.json");
    assert_eq!(fs::read(&gen0).unwrap(), fs::read(&healthy_gen0).unwrap());
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&healthy_dir);
}

#[test]
fn appending_batches_to_a_sealed_run_skips_the_sealed_prefix() {
    let c = collection();
    let batches = split(&c.dataset, 3);

    let dir = run_dir("append");
    let first = ingest(
        &batches[..1],
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&dir),
    )
    .expect("initial ingest");
    assert_eq!(first.processed, vec!["chunk-0.csv"]);

    // Re-ingesting without resume must refuse the dirty directory.
    let refused = ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&dir),
    );
    assert!(
        matches!(refused, Err(IndiceError::Durability(ref msg)) if msg.contains("resume")),
        "expected a durability refusal, got {refused:?}"
    );

    let appended = ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&dir).resuming(),
    )
    .expect("appending ingest");
    assert_eq!(appended.sealed_skipped, vec!["chunk-0.csv"]);
    assert_eq!(appended.processed, vec!["chunk-1.csv", "chunk-2.csv"]);
    assert_eq!(appended.entries.len(), 3);

    // Identical to a one-shot durable run over everything.
    let shot = one_shot(&c, 2, "append-oneshot");
    assert_trees_identical(&shot, &dir.join("current"), "appended ingest vs one-shot");

    // Counter conservation: every current/ file was either written or
    // carried, and the manifest accounts for both.
    for entry in &appended.entries {
        assert_eq!(
            entry.artifacts_written + entry.artifacts_carried,
            entry.current.len(),
            "generation {} counters must cover the current file set",
            entry.seq
        );
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&shot);
}

#[test]
fn warm_recompute_is_epsilon_equivalent_to_exact() {
    let c = collection();
    let batches = split(&c.dataset, 2);

    let exact_dir = run_dir("exact");
    ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&exact_dir),
    )
    .expect("exact ingest");

    let warm_dir = run_dir("warm");
    let warm = ingest(
        &batches,
        inputs_at(&c, 2),
        Stakeholder::PublicAdministration,
        &IngestOptions::new(&warm_dir).with_recompute(RecomputeMode::Warm),
    )
    .expect("warm ingest");
    assert!(warm.entries.iter().all(|e| e.recompute == "warm"));

    let read_sse = |dir: &Path| -> f64 {
        let text = fs::read_to_string(dir.join("current/checkpoints/analytics.ckpt.json"))
            .expect("analytics checkpoint");
        indice::checkpoint::decode_analytics(&text)
            .expect("decode analytics")
            .kmeans
            .sse
    };
    let (exact_sse, warm_sse) = (read_sse(&exact_dir), read_sse(&warm_dir));
    let rel = (exact_sse - warm_sse).abs() / exact_sse.max(f64::MIN_POSITIVE);
    assert!(
        rel <= 0.05,
        "warm-start SSE {warm_sse} drifts {rel:.4} (> 5%) from exact {exact_sse}"
    );
    // Everything outside the analytics-derived artifacts is still exact:
    // the preprocess checkpoint must match byte-for-byte.
    assert_eq!(
        fs::read(exact_dir.join("current/checkpoints/preprocess.ckpt.json")).unwrap(),
        fs::read(warm_dir.join("current/checkpoints/preprocess.ckpt.json")).unwrap(),
        "warm mode must not perturb the preprocess state"
    );
    let _ = fs::remove_dir_all(&exact_dir);
    let _ = fs::remove_dir_all(&warm_dir);
}
